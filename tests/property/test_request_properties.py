"""Property-based tests for Request completion invariants.

The acceptance micro-protocols rely on completion being atomic first-wins
under arbitrary interleavings; these properties pin that down harder than
the unit tests' fixed schedules.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.core.request import Reply, Request


@given(
    winners=st.lists(
        st.one_of(
            st.tuples(st.just("complete"), st.integers()),
            st.tuples(st.just("fail"), st.text(max_size=10)),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_exactly_one_completion_wins(winners):
    """N concurrent completers: exactly one succeeds, and the observed
    outcome equals that winner's payload."""
    request = Request("obj", "op", [])
    barrier = threading.Barrier(len(winners))
    results = [None] * len(winners)

    def attempt(index, action, payload):
        barrier.wait()
        if action == "complete":
            results[index] = request.complete(payload)
        else:
            results[index] = request.fail(ValueError(payload))

    threads = [
        threading.Thread(target=attempt, args=(i, a, p))
        for i, (a, p) in enumerate(winners)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)

    assert sum(1 for r in results if r) == 1
    winner_index = results.index(True)
    action, payload = winners[winner_index]
    if action == "complete":
        assert request.wait(1.0) == payload
    else:
        try:
            request.wait(1.0)
            raise AssertionError("expected the winning failure to raise")
        except ValueError as exc:
            assert str(exc) == payload


@given(
    servers=st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=10, unique=True),
    failed=st.sets(st.integers(min_value=1, max_value=10)),
)
@settings(max_examples=100, deadline=None)
def test_reply_bookkeeping(servers, failed):
    request = Request("obj", "op", [])
    for server in servers:
        request.add_reply(Reply(server=server, value=server, failed=server in failed))
    replies = request.replies()
    assert set(replies) == set(servers)
    assert request.reply_count() == len(servers)
    for server in servers:
        assert replies[server].succeeded == (server not in failed)


@given(
    params=st.lists(
        st.one_of(st.integers(), st.text(max_size=10), st.floats(allow_nan=False)),
        max_size=6,
    ),
    piggyback=st.dictionaries(st.text(min_size=1, max_size=8), st.integers(), max_size=4),
)
@settings(max_examples=100, deadline=None)
def test_wire_roundtrip_preserves_identity(params, piggyback):
    request = Request("obj", "op", params, piggyback=piggyback)
    rebuilt = Request.from_wire(request.to_wire())
    assert rebuilt.request_id == request.request_id
    assert rebuilt.get_params() == params
    assert rebuilt.piggyback == piggyback
    # The rebuilt request is independent: completing it leaves the original open.
    rebuilt.complete(1)
    assert not request.completed
