"""Property tests for the v2 framing / batch-flush wire-bytes invariant.

The async engine's batcher coalesces outbound frames by pure concatenation,
and the incremental decoder is chunk-agnostic, so the load-bearing
invariants are algebraic:

- any grouping of frames into batches concatenates to exactly the bytes of
  the unbatched per-frame encoding (sender-side invariant);
- any re-chunking of that byte stream decodes to the identical
  ``(request_id, payload)`` sequence (receiver-side invariant);
- a real :class:`~repro.net.aio.FrameBatcher` driven through arbitrary
  interleavings of sends, idle flushes, linger expiries, and size-threshold
  crossings emits writes whose concatenation is again exactly the
  unbatched encoding — frames straddling flush boundaries included.

Together these make sender-side batching invisible to the receiver, which
is what lets the two engines interoperate bit-identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.aio import FrameBatcher
from repro.net.framing import FrameDecoder, encode_frame

frames_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.binary(max_size=200),
    ),
    min_size=0,
    max_size=20,
)


def _chunkify(data: bytes, cut_points: list[int]) -> list[bytes]:
    """Split ``data`` at the (normalized) cut points."""
    cuts = sorted({min(c, len(data)) for c in cut_points})
    chunks = []
    previous = 0
    for cut in cuts:
        chunks.append(data[previous:cut])
        previous = cut
    chunks.append(data[previous:])
    return chunks


@given(frames=frames_strategy, data=st.data())
def test_any_batch_grouping_is_byte_identical_to_unbatched(frames, data):
    unbatched = b"".join(encode_frame(rid, payload) for rid, payload in frames)
    # Partition the frame list into arbitrary consecutive batches.
    batches: list[bytes] = []
    index = 0
    while index < len(frames):
        size = data.draw(st.integers(min_value=1, max_value=len(frames) - index))
        group = frames[index : index + size]
        batches.append(b"".join(encode_frame(rid, p) for rid, p in group))
        index += size
    assert b"".join(batches) == unbatched


@given(frames=frames_strategy, data=st.data())
def test_any_rechunking_decodes_to_the_same_frames(frames, data):
    stream = b"".join(encode_frame(rid, payload) for rid, payload in frames)
    cut_points = data.draw(
        st.lists(st.integers(min_value=0, max_value=max(len(stream), 1)), max_size=30)
    )
    decoder = FrameDecoder()
    decoded: list[tuple[int, bytes]] = []
    for chunk in _chunkify(stream, cut_points):
        decoded.extend(decoder.feed(chunk))
    assert decoded == frames
    assert decoder.buffered == 0


@given(frames=frames_strategy)
def test_single_byte_feeding_decodes_identically(frames):
    stream = b"".join(encode_frame(rid, payload) for rid, payload in frames)
    decoder = FrameDecoder()
    decoded: list[tuple[int, bytes]] = []
    for i in range(len(stream)):
        decoded.extend(decoder.feed(stream[i : i + 1]))
    assert decoded == frames


class _FakeHandle:
    def __init__(self, loop, callback):
        self._loop = loop
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        self.cancelled = True
        if self in self._loop.ready:
            self._loop.ready.remove(self)
        if self in self._loop.timers:
            self._loop.timers.remove(self)


class _FakeLoop:
    """Just enough of an event loop to drive FrameBatcher deterministically."""

    def __init__(self):
        self.ready: list[_FakeHandle] = []
        self.timers: list[_FakeHandle] = []

    def call_soon(self, callback, *args):
        handle = _FakeHandle(self, lambda: callback(*args))
        self.ready.append(handle)
        return handle

    def call_later(self, _delay, callback, *args):
        handle = _FakeHandle(self, lambda: callback(*args))
        self.timers.append(handle)
        return handle

    def run_one(self, queue: list[_FakeHandle]) -> bool:
        if not queue:
            return False
        handle = queue.pop(0)
        if not handle.cancelled:
            handle.callback()
        return True

    def drain(self):
        while self.run_one(self.ready) or self.run_one(self.timers):
            pass


class _FakeTransport:
    def __init__(self):
        self.writes: list[bytes] = []

    def write(self, data):
        self.writes.append(bytes(data))


class _FakeRuntime:
    frames_out = 0
    flushes = 0
    bytes_out = 0


@settings(max_examples=60)
@given(
    frames=frames_strategy,
    max_bytes=st.integers(min_value=1, max_value=600),
    schedule=st.lists(st.sampled_from(["send", "idle", "timer"]), max_size=60),
)
def test_frame_batcher_interleavings_preserve_wire_bytes(frames, max_bytes, schedule):
    """Arbitrary send/idle-flush/linger interleavings → identical wire bytes.

    ``max_bytes`` small enough forces size-threshold flushes mid-batch, so
    frames straddle batch boundaries; running idle callbacks and linger
    timers at arbitrary points exercises every flush path.
    """
    loop = _FakeLoop()
    transport = _FakeTransport()
    runtime = _FakeRuntime()
    batcher = FrameBatcher(loop, transport, runtime, linger=0.0002, max_bytes=max_bytes)
    pending = list(frames)
    for action in schedule:
        if action == "send" and pending:
            rid, payload = pending.pop(0)
            batcher.send(rid, payload)
        elif action == "idle":
            loop.run_one(loop.ready)
        elif action == "timer":
            loop.run_one(loop.timers)
    for rid, payload in pending:  # send whatever the schedule didn't cover
        batcher.send(rid, payload)
    loop.drain()  # let every outstanding idle/linger callback fire

    wire = b"".join(transport.writes)
    assert wire == b"".join(encode_frame(rid, p) for rid, p in frames)
    # And the receiver reconstructs the exact frame sequence.
    decoder = FrameDecoder()
    decoded: list[tuple[int, bytes]] = []
    for chunk in transport.writes:
        decoded.extend(decoder.feed(chunk))
    assert decoded == frames
    # Accounting matches what actually hit the transport.
    assert runtime.frames_out == len(frames)
    assert runtime.bytes_out == len(wire)
    assert runtime.flushes == len(transport.writes)
