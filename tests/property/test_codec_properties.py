"""Property-based tests: both codecs round-trip arbitrary wire values."""

import math

from hypothesis import given, settings, strategies as st

from repro.serialization.cdr import cdr_dumps, cdr_loads
from repro.serialization.jser import jser_dumps, jser_loads

# Finite floats only: NaN breaks equality (covered by explicit tests).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=50),
    st.binary(max_size=50),
)

# Dict keys must be hashable wire values.
keys = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.text(max_size=20),
    st.booleans(),
)

wire_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(keys, children, max_size=5),
        st.tuples(children, children),
    ),
    max_leaves=25,
)


def normalize(value):
    """Tuples decode as tuples; everything else compares directly."""
    return value


@given(wire_values)
@settings(max_examples=200)
def test_cdr_roundtrip(value):
    assert cdr_loads(cdr_dumps(value)) == value


@given(wire_values)
@settings(max_examples=200)
def test_jser_roundtrip(value):
    assert jser_loads(jser_dumps(value)) == value


@given(wire_values)
@settings(max_examples=100)
def test_codecs_agree_on_equality(value):
    """Whatever one codec round-trips, the other round-trips identically."""
    assert cdr_loads(cdr_dumps(value)) == jser_loads(jser_dumps(value))


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
@settings(max_examples=200)
def test_jser_int64_zigzag(value):
    assert jser_loads(jser_dumps(value)) == value


@given(st.floats())
@settings(max_examples=200)
def test_double_bit_exactness(value):
    decoded_cdr = cdr_loads(cdr_dumps(value))
    decoded_jser = jser_loads(jser_dumps(value))
    if math.isnan(value):
        assert math.isnan(decoded_cdr) and math.isnan(decoded_jser)
    else:
        assert decoded_cdr == value and decoded_jser == value


@given(st.binary(max_size=200))
@settings(max_examples=100)
def test_bytes_exactness(value):
    assert cdr_loads(cdr_dumps(value)) == value
    assert jser_loads(jser_dumps(value)) == value


@given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=8))
@settings(max_examples=50)
def test_jser_aliasing_preserved(shape):
    """A list referenced N times decodes to one object referenced N times."""
    inner = ["shared"]
    outer = [inner for _ in shape]
    decoded = jser_loads(jser_dumps(outer))
    assert all(item is decoded[0] for item in decoded)
