"""Property-based tests for Cactus event-execution invariants.

Every invariant is checked against both dispatch executors (the compiled
fast path and the reference interpretation loop) — they must agree.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cactus.composite import CompositeProtocol

orders = st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=12)

both_executors = pytest.mark.parametrize("compiled", [True, False], ids=["compiled", "reference"])


@both_executors
@given(orders)
@settings(max_examples=100, deadline=None)
def test_handlers_execute_in_nondecreasing_order(compiled, order_values):
    """Whatever the bind sequence, execution order is sorted by order."""
    composite = CompositeProtocol("prop", compiled_dispatch=compiled)
    executed = []
    for order in order_values:
        composite.bind(
            "ev", lambda occ, o: executed.append(o), order=order, static_args=(order,)
        )
    composite.raise_event("ev")
    assert executed == sorted(order_values)
    composite.runtime.shutdown()


@both_executors
@given(orders, st.integers(min_value=0, max_value=100))
@settings(max_examples=100, deadline=None)
def test_halt_suppresses_exactly_later_orders(compiled, order_values, halt_at):
    """A halting handler at order H runs peers at H, suppresses > H."""
    composite = CompositeProtocol("prop", compiled_dispatch=compiled)
    executed = []

    def halting(occ):
        executed.append(("halt", halt_at))
        occ.halt()

    for order in order_values:
        composite.bind(
            "ev", lambda occ, o: executed.append(("plain", o)), order=order, static_args=(order,)
        )
    composite.bind("ev", halting, order=halt_at)
    composite.raise_event("ev")

    ran_orders = [o for kind, o in executed if kind == "plain"]
    # Everything strictly before the halter ran; nothing after it did...
    assert ran_orders == [o for o in sorted(order_values) if o <= halt_at]
    composite.runtime.shutdown()


@both_executors
@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_unbinding_removes_exactly_that_binding(compiled, names):
    composite = CompositeProtocol("prop", compiled_dispatch=compiled)
    executed = []
    bindings = [
        composite.bind("ev", lambda occ, n=n: executed.append(n)) for n in names
    ]
    bindings[0].unbind()
    composite.raise_event("ev")
    assert executed == names[1:]
    composite.runtime.shutdown()


@both_executors
@given(st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_one_activation_per_binding_per_raise(compiled, bind_count):
    """N bindings of the same handler run exactly N times per raise —
    the mechanism ActiveRep uses for per-replica activations."""
    composite = CompositeProtocol("prop", compiled_dispatch=compiled)
    activations = []

    def handler(occ, replica):
        activations.append(replica)

    for replica in range(1, bind_count + 1):
        composite.bind("ev", handler, static_args=(replica,))
    composite.raise_event("ev")
    composite.raise_event("ev")
    assert sorted(activations) == sorted(list(range(1, bind_count + 1)) * 2)
    composite.runtime.shutdown()
