"""Property tests for the overload-protection primitives.

Two families:

- :class:`RateLimiter` — under *arbitrary* interleavings of clock advances
  and acquisition attempts the bucket must never grant more than burst
  capacity plus what the refill rate allows, and a monotonic-clock
  regression must never mint tokens;
- :class:`LoadBalance` EWMA selection — the power-of-two-choices policy
  must converge onto a clearly faster replica yet never starve any member
  of a pool of equals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.extensions.load_balance import LoadBalance
from repro.qos.extensions.admission import RateLimiter
from repro.util.clock import VirtualClock

# One step of a rate-limiter schedule: advance the clock by `dt` then try
# to acquire `tokens`.
_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


class TestRateLimiterProperties:
    @given(
        rate=st.floats(min_value=0.1, max_value=100.0),
        capacity=st.floats(min_value=0.5, max_value=20.0),
        steps=_steps,
    )
    @settings(max_examples=200, deadline=None)
    def test_never_exceeds_burst_plus_refill(self, rate, capacity, steps):
        """Conservation: grants <= capacity + rate * elapsed, always."""
        clock = VirtualClock()
        limiter = RateLimiter(rate=rate, capacity=capacity, clock=clock)
        granted = 0.0
        elapsed = 0.0
        for dt, tokens in steps:
            clock.advance(dt)
            elapsed += dt
            if limiter.try_acquire(tokens):
                granted += tokens
            # The invariant holds at every step, not just at the end.
            assert granted <= capacity + rate * elapsed + 1e-6

    @given(
        rate=st.floats(min_value=0.1, max_value=100.0),
        capacity=st.floats(min_value=1.0, max_value=20.0),
        burst_attempts=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_instantaneous_burst_bounded_by_capacity(
        self, rate, capacity, burst_attempts
    ):
        """With the clock frozen, at most `capacity` tokens are granted."""
        limiter = RateLimiter(rate=rate, capacity=capacity, clock=VirtualClock())
        granted = sum(1 for _ in range(burst_attempts) if limiter.try_acquire())
        assert granted <= capacity + 1e-9
        # ... and the full burst is actually available, not under-granted.
        assert granted == min(burst_attempts, int(capacity))

    @given(
        rate=st.floats(min_value=0.5, max_value=50.0),
        wait=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_refill_rate_honoured(self, rate, wait):
        """After draining, exactly floor(rate*wait) whole tokens return."""
        capacity = max(1.0, rate * wait + 1.0)
        clock = VirtualClock()
        limiter = RateLimiter(rate=rate, capacity=capacity, clock=clock)
        while limiter.try_acquire():
            pass  # drain below one token
        leftover = limiter.available  # fractional remainder < 1.0
        assert leftover < 1.0
        clock.advance(wait)
        expected = min(capacity, leftover + rate * wait)
        granted = sum(1 for _ in range(int(capacity) + 2) if limiter.try_acquire())
        assert granted == int(expected)

    @given(
        regression=st.floats(min_value=0.1, max_value=100.0),
        rate=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_clock_regression_mints_no_tokens(self, regression, rate):
        """A backwards clock step is zero elapsed time, not free tokens."""
        clock = VirtualClock(start=200.0)
        limiter = RateLimiter(rate=rate, capacity=2.0, clock=clock)
        assert limiter.try_acquire() and limiter.try_acquire()
        before = limiter.available
        clock.advance(-regression)  # suspend/resume or virtual-clock rewind
        assert limiter.available <= before + 1e-9
        assert not limiter.try_acquire()
        # Catching back up to the pre-regression time is NOT elapsed time:
        # refill resumes only past the high-water mark.
        clock.advance(regression)
        assert not limiter.try_acquire()
        clock.advance(1.0 / rate + 1e-3)
        assert limiter.try_acquire()


class TestEwmaSelectionProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        fast=st.floats(min_value=0.001, max_value=0.01),
        slow_factor=st.floats(min_value=10.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_converges_to_faster_replica(self, seed, fast, slow_factor):
        """A clearly faster replica wins the large majority of picks."""
        balancer = LoadBalance(seed=seed)
        balancer.record_latency(1, fast)
        balancer.record_latency(2, fast * slow_factor)
        picks = [balancer.select([1, 2]) for _ in range(200)]
        # Power-of-two over two candidates compares the pair every time, so
        # with no outstanding work the faster replica wins every pick.
        assert picks.count(1) == 200

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        replicas=st.integers(min_value=2, max_value=8),
        latency=st.floats(min_value=0.001, max_value=0.1),
    )
    @settings(max_examples=100, deadline=None)
    def test_no_starvation_among_equals(self, seed, replicas, latency):
        """Equal replicas all receive traffic (random pair sampling)."""
        balancer = LoadBalance(seed=seed)
        candidates = list(range(1, replicas + 1))
        for server in candidates:
            balancer.record_latency(server, latency)
        picks = [balancer.select(candidates) for _ in range(120 * replicas)]
        assert set(picks) == set(candidates)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_outstanding_work_steers_away(self, seed):
        """Equal EWMAs but queued work: the idle replica is chosen."""
        balancer = LoadBalance(seed=seed)
        balancer.record_latency(1, 0.01)
        balancer.record_latency(2, 0.01)
        with balancer._lock:
            balancer._outstanding[1] = 5
        assert all(balancer.select([1, 2]) == 2 for _ in range(50))
