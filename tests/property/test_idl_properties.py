"""Property-based tests for the IDL pipeline and conformance checking."""

import keyword

from hypothesis import assume, given, settings, strategies as st

from repro.idl import compile_idl
from repro.idl.lexer import KEYWORDS
from repro.serialization.registry import TypeRegistry

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,12}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS and not keyword.iskeyword(s)
)

basic_types = st.sampled_from(
    ["boolean", "octet", "short", "long", "long long", "float", "double", "string", "any"]
)


@given(
    interface_name=identifiers,
    op_names=st.lists(identifiers, min_size=1, max_size=5, unique=True),
    param_types=st.lists(basic_types, min_size=0, max_size=4),
)
@settings(max_examples=100, deadline=None)
def test_generated_interfaces_compile(interface_name, op_names, param_types):
    """Any well-formed interface source compiles into matching metadata."""
    params = ", ".join(f"in {t} p{i}" for i, t in enumerate(param_types))
    operations = "\n".join(f"void {name}({params});" for name in op_names)
    source = f"interface {interface_name} {{ {operations} }};"
    compiled = compile_idl(source, TypeRegistry())
    interface = compiled.interface(interface_name)
    assert set(interface.operations) == set(op_names)
    for op in interface.operations.values():
        assert len(op.params) == len(param_types)


INT_RANGES = {
    "short": (-(2**15), 2**15 - 1),
    "long": (-(2**31), 2**31 - 1),
    "long long": (-(2**63), 2**63 - 1),
}


@given(
    kind=st.sampled_from(sorted(INT_RANGES)),
    value=st.integers(min_value=-(2**80), max_value=2**80),
)
@settings(max_examples=200, deadline=None)
def test_integer_conformance_matches_range(kind, value):
    compiled = compile_idl(f"interface T {{ void f(in {kind} x); }};", TypeRegistry())
    low, high = INT_RANGES[kind]
    conforms = compiled.conforms(
        compiled.interface("T").operation("f").params[0].type, value
    )
    assert conforms == (low <= value <= high)


@given(st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1), max_size=10))
@settings(max_examples=100, deadline=None)
def test_sequence_conformance(values):
    compiled = compile_idl(
        "interface T { void f(in sequence<long> xs); };", TypeRegistry()
    )
    seq_type = compiled.interface("T").operation("f").params[0].type
    assert compiled.conforms(seq_type, values)
    assert not compiled.conforms(seq_type, values + ["not an int"])


@given(st.text(max_size=30), st.floats(allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_struct_members_roundtrip_through_both_codecs(label, amount):
    registry = TypeRegistry()
    compiled = compile_idl(
        "struct Rec { string label; double amount; };", registry
    )
    rec = compiled.structs["Rec"](label=label, amount=amount)
    from repro.serialization.cdr import cdr_dumps, cdr_loads
    from repro.serialization.jser import jser_dumps, jser_loads

    assert cdr_loads(cdr_dumps(rec, registry), registry) == rec
    assert jser_loads(jser_dumps(rec, registry), registry) == rec
