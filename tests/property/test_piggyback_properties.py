"""Property tests: piggyback fidelity through the shared header codec.

The HTTP adapter ships piggyback entries as ``X-CQoS-*`` headers.  Headers
are case-folded and latin-1-constrained, which historically lost key case,
crashed on non-latin-1 keys, and stringified non-string keys.  The kernel's
:class:`~repro.core.platform.PiggybackCodec` must round-trip *any*
jser-marshallable key and value losslessly — through the codec alone and
through a real formatted-and-parsed HTTP request frame.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.platform import PIGGYBACK_CODEC
from repro.http.message import HttpRequest, format_request, parse_request

# Finite floats only: NaN breaks equality (as in the codec suites).
values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**70), max_value=2**70),
        st.floats(allow_nan=False, allow_infinity=True),
        st.text(max_size=40),
        st.binary(max_size=40),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)

# Keys: anything hashable and jser-marshallable — upper case, non-ASCII,
# non-string, whitespace, header-hostile separators.
keys = st.one_of(
    st.text(max_size=30),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.booleans(),
)

piggybacks = st.dictionaries(keys, values, max_size=6)


@given(piggybacks)
@settings(max_examples=200)
def test_codec_roundtrip(piggyback):
    headers = PIGGYBACK_CODEC.encode_headers(piggyback)
    assert PIGGYBACK_CODEC.decode_headers(headers) == piggyback


@given(piggybacks)
@settings(max_examples=200)
def test_roundtrip_through_http_wire_frame(piggyback):
    """Fidelity survives an actual formatted + parsed HTTP request —
    the transport that lowercases header names and encodes them latin-1."""
    request = HttpRequest(
        method="POST",
        path="/objects/acct/op",
        headers=PIGGYBACK_CODEC.encode_headers(piggyback),
        body=b"payload",
    )
    parsed = parse_request(format_request(request))
    assert parsed.piggyback() == piggyback
    assert parsed.body == b"payload"


@given(piggybacks)
@settings(max_examples=100)
def test_headers_are_latin1_and_casefold_safe(piggyback):
    """Every emitted header name/value is latin-1 encodable and invariant
    under the case folding real HTTP stacks apply."""
    for name, value in PIGGYBACK_CODEC.encode_headers(piggyback).items():
        name.encode("latin-1")
        value.encode("latin-1")
        assert name == name.lower()
        assert value == value.lower()


def test_wellknown_keys_keep_historical_wire_form():
    """Declared cqos_* keys stay in the pre-kernel byte-identical header
    form (no escaping) — wire compatibility with recorded chaos runs."""
    for key in PIGGYBACK_CODEC.declared_keys():
        headers = PIGGYBACK_CODEC.encode_headers({key: 1})
        assert list(headers) == [f"x-cqos-{key}"]
