"""Property-based tests for DES: round-trip, determinism, permutation."""

from hypothesis import given, settings, strategies as st

from repro.crypto.des import DesCipher

keys = st.binary(min_size=8, max_size=8)
blocks = st.binary(min_size=8, max_size=8)
payloads = st.binary(max_size=512)


@given(keys, blocks)
@settings(max_examples=100)
def test_block_roundtrip(key, block):
    cipher = DesCipher(key, mode="ECB")
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(keys, payloads)
@settings(max_examples=100)
def test_ecb_envelope_roundtrip(key, payload):
    cipher = DesCipher(key, mode="ECB")
    assert cipher.decrypt(cipher.encrypt(payload)) == payload


@given(keys, payloads)
@settings(max_examples=100)
def test_cbc_envelope_roundtrip(key, payload):
    cipher = DesCipher(key, mode="CBC")
    assert cipher.decrypt(cipher.encrypt(payload)) == payload


@given(keys, blocks)
@settings(max_examples=50)
def test_encryption_is_deterministic_per_block(key, block):
    first = DesCipher(key, mode="ECB").encrypt_block(block)
    second = DesCipher(key, mode="ECB").encrypt_block(block)
    assert first == second


@given(keys, blocks)
@settings(max_examples=50)
def test_block_encryption_is_a_permutation(key, block):
    """Distinct plaintexts map to distinct ciphertexts under one key."""
    cipher = DesCipher(key, mode="ECB")
    other = bytes(block[:-1]) + bytes([block[-1] ^ 0x01])
    assert cipher.encrypt_block(block) != cipher.encrypt_block(other)


@given(keys, keys, blocks)
@settings(max_examples=50)
def test_different_keys_usually_differ(key1, key2, block):
    """DES ignores parity bits; compare effective 56-bit keys."""

    def effective(key):
        return bytes(b & 0xFE for b in key)

    if effective(key1) == effective(key2):
        return
    ct1 = DesCipher(key1, mode="ECB").encrypt_block(block)
    ct2 = DesCipher(key2, mode="ECB").encrypt_block(block)
    # Not guaranteed by theory, but a collision here is ~2^-64.
    assert ct1 != ct2


@given(keys, payloads)
@settings(max_examples=50)
def test_ciphertext_length_is_padded_multiple(key, payload):
    ct = DesCipher(key, mode="ECB").encrypt(payload)
    assert len(ct) % 8 == 0
    assert len(ct) == (len(payload) // 8 + 1) * 8
