"""Property-based tests for the configuration text format and the builder."""

import keyword

from hypothesis import given, settings, strategies as st

from repro.cactus.config import MicroProtocolSpec, parse_config_text

names = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,15}", fullmatch=True)
param_keys = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
# Values that survive the text format's scalar parsing unambiguously.
param_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.booleans(),
    st.from_regex(r"[A-Za-z][A-Za-z0-9_\-]{0,10}", fullmatch=True).filter(
        lambda s: s.lower() not in ("true", "false") and not keyword.iskeyword(s)
    ),
)

specs = st.lists(
    st.builds(
        MicroProtocolSpec,
        name=names,
        params=st.dictionaries(param_keys, param_values, max_size=4),
    ),
    max_size=6,
)


def render(spec_list):
    lines = []
    for spec in spec_list:
        params = " ".join(f"{k}={v}" for k, v in spec.params.items())
        lines.append(f"{spec.name} {params}".strip())
    return "\n".join(lines)


@given(specs)
@settings(max_examples=200, deadline=None)
def test_text_format_roundtrip(spec_list):
    parsed = parse_config_text(render(spec_list))
    assert parsed == spec_list


@given(specs)
@settings(max_examples=100, deadline=None)
def test_wire_form_roundtrip(spec_list):
    rebuilt = [MicroProtocolSpec.from_wire(s.to_wire()) for s in spec_list]
    assert rebuilt == spec_list


@given(specs, st.text(alphabet=" \t", max_size=3), st.text(alphabet="# comment", max_size=8))
@settings(max_examples=100, deadline=None)
def test_whitespace_and_comments_ignored(spec_list, pad, comment):
    text = render(spec_list)
    noisy = "\n".join(
        pad + line + ("  #" + comment if comment else "") for line in text.splitlines()
    )
    assert parse_config_text(noisy) == spec_list
