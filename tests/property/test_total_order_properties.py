"""Property-based end-to-end invariant: total order means replica agreement.

For random concurrent workloads of non-commutative operations, all replicas
configured with TotalOrder must end with identical histories.  Deployments
are expensive, so the example budget is small but each example is a full
multi-client distributed run.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.core.request import Request
from repro.core.service import CqosDeployment
from repro.net.memory import InMemoryNetwork
from repro.qos import ActiveRep, TotalOrder

# Each client performs a random mix of non-commutative operations.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("set_balance"), st.floats(min_value=0, max_value=1000)),
        st.tuples(st.just("deposit"), st.floats(min_value=0, max_value=100)),
    ),
    min_size=1,
    max_size=4,
)

workloads = st.lists(operations, min_size=1, max_size=3)  # clients


@given(workload=workloads, platform=st.sampled_from(["corba", "rmi"]))
@settings(max_examples=8, deadline=None)
def test_replicas_agree_for_any_workload(workload, platform):
    network = InMemoryNetwork()
    deployment = CqosDeployment(
        network, platform=platform, compiled=bank_compiled(), request_timeout=20.0
    )
    try:
        skeletons = deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [TotalOrder()],
        )
        errors = []

        def run_client(ops):
            try:
                stub = deployment.client_stub(
                    "acct",
                    bank_interface(),
                    client_micro_protocols=lambda: [ActiveRep()],
                )
                for operation, amount in ops:
                    getattr(stub, operation)(amount)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=run_client, args=(ops,)) for ops in workload]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors

        def history(skeleton):
            return skeleton._platform.invoke_servant(Request("acct", "history", [1000]))

        # Wait out the replicas that are still executing (the client only
        # waits for the first reply).
        import time

        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            histories = [history(s) for s in skeletons]
            if histories[0] == histories[1] == histories[2]:
                break
            time.sleep(0.02)
        assert histories[0] == histories[1] == histories[2]
    finally:
        deployment.close()
