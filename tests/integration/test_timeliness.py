"""Integration tests for the timeliness micro-protocols (§3.4)."""

import threading
import time

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.qos import PrioritySched, QueuedSched, TimedSched
from repro.qos.timeliness import HIGH_PRIORITY, LOW_PRIORITY


def identity_policy(request):
    """The paper's policy: priority determined by client identity."""
    return HIGH_PRIORITY if request.client_id.startswith("high") else LOW_PRIORITY


class TestPrioritySched:
    def test_requests_complete(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [PrioritySched()],
            priority_policy=identity_policy,
        )
        stub = deployment.client_stub("acct", bank_interface(), client_id="high-1")
        stub.set_balance(1.0)
        assert stub.get_balance() == 1.0

    def test_piggybacked_priority_extension(self, deployment):
        """Priority can come from the stub, not only from client identity."""
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [PrioritySched()],
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), priority=HIGH_PRIORITY
        )
        stub.set_balance(2.0)
        assert stub.get_balance() == 2.0


class TestQueuedSched:
    def test_low_waits_for_active_high(self, deployment):
        """While a high request executes, a low request queues behind it."""
        gate = threading.Event()
        entered = threading.Event()

        class SlowAccount(BankAccount):
            def owner(self):
                entered.set()
                gate.wait(10.0)
                return super().owner()

        deployment.add_replicas(
            "acct",
            SlowAccount,
            bank_interface(),
            server_micro_protocols=lambda: [QueuedSched()],
            priority_policy=identity_policy,
        )
        high = deployment.client_stub("acct", bank_interface(), client_id="high-1")
        low = deployment.client_stub("acct", bank_interface(), client_id="low-1")

        order = []
        high_thread = threading.Thread(target=lambda: (high.owner(), order.append("high")))
        high_thread.start()
        assert entered.wait(10.0)  # the high request is inside the servant

        low_thread = threading.Thread(
            target=lambda: (low.get_balance(), order.append("low"))
        )
        low_thread.start()
        time.sleep(0.2)
        # The low request must still be queued (not completed).
        assert order == []
        gate.set()
        high_thread.join(10.0)
        low_thread.join(10.0)
        assert order == ["high", "low"]

    def test_low_proceeds_when_no_high_active(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [QueuedSched()],
            priority_policy=identity_policy,
        )
        low = deployment.client_stub("acct", bank_interface(), client_id="low-1")
        start = time.monotonic()
        assert low.get_balance() == 0.0
        assert time.monotonic() - start < 2.0

    def test_mixed_load_completes(self, deployment):
        deployment.add_replicas(
            "acct",
            lambda: BankAccount(work_loops=2000),
            bank_interface(),
            server_micro_protocols=lambda: [QueuedSched()],
            priority_policy=identity_policy,
        )
        errors = []

        def client(name, count):
            try:
                stub = deployment.client_stub("acct", bank_interface(), client_id=name)
                for _ in range(count):
                    stub.get_balance()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(f"high-{i}", 10)) for i in range(2)
        ] + [threading.Thread(target=client, args=(f"low-{i}", 10)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors


class TestTimedSched:
    def test_lows_released_in_quiet_windows(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                TimedSched(period=0.05, high_rate_threshold=2)
            ],
            priority_policy=identity_policy,
        )
        low = deployment.client_stub("acct", bank_interface(), client_id="low-1")
        # With no high traffic at all, lows trickle through via the ticks.
        for _ in range(5):
            assert low.get_balance() == 0.0

    def test_busy_window_delays_lows(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                TimedSched(period=0.2, high_rate_threshold=1)
            ],
            priority_policy=identity_policy,
        )
        high = deployment.client_stub("acct", bank_interface(), client_id="high-1")
        low = deployment.client_stub("acct", bank_interface(), client_id="low-1")
        # Saturate the current window with high arrivals, then let the tick
        # roll it into the "previous period" the release rule looks at.
        for _ in range(5):
            high.get_balance()
        time.sleep(0.25)
        start = time.monotonic()
        low.get_balance()
        elapsed = time.monotonic() - start
        # The low request was queued until a quiet window rolled over.
        assert elapsed > 0.05

    def test_service_differentiation_under_contention(self, deployment):
        """The Table 3 effect: highs see much lower latency than lows."""
        deployment.add_replicas(
            "acct",
            lambda: BankAccount(work_loops=15000),
            bank_interface(),
            server_micro_protocols=lambda: [
                TimedSched(period=0.05, high_rate_threshold=2)
            ],
            priority_policy=identity_policy,
        )
        latencies = {}

        def client(name, count):
            stub = deployment.client_stub("acct", bank_interface(), client_id=name)
            samples = []
            for _ in range(count):
                start = time.perf_counter()
                stub.get_balance()
                samples.append(time.perf_counter() - start)
            latencies[name] = sum(samples) / len(samples)

        threads = [
            threading.Thread(target=client, args=(f"high-{i}", 25)) for i in range(2)
        ] + [threading.Thread(target=client, args=(f"low-{i}", 25)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        high_avg = (latencies["high-0"] + latencies["high-1"]) / 2
        low_avg = (latencies["low-0"] + latencies["low-1"]) / 2
        assert low_avg > high_avg, (high_avg, low_avg)
