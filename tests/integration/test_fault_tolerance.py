"""Integration tests for the fault-tolerance micro-protocols (§3.2)."""

import threading

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.qos import (
    ActiveRep,
    FirstSuccess,
    MajorityVote,
    PassiveRep,
    PassiveRepServer,
    TotalOrder,
)
from repro.util.errors import ReproError, ServerFailedError


class TestActiveRep:
    def test_all_replicas_execute(self, deployment):
        skeletons = deployment.add_replicas(
            "acct", BankAccount, bank_interface(), replicas=3
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=lambda: [ActiveRep()]
        )
        stub.set_balance(50.0)
        # Every replica's servant must have applied the update.
        for skeleton in skeletons:
            balance = skeleton._platform.invoke_servant(
                _probe_request("get_balance")
            )
            assert balance == 50.0

    def test_survives_minority_crash(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
        )
        stub.set_balance(5.0)
        deployment.crash_replica("acct", 2)
        assert stub.get_balance() == 5.0

    def test_all_crashed_fails(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=2)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
        )
        stub.get_balance()
        deployment.crash_replica("acct", 1)
        deployment.crash_replica("acct", 2)
        with pytest.raises(ServerFailedError):
            stub.get_balance()


class TestAcceptance:
    def test_first_success_skips_failed_replica(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
        )
        deployment.crash_replica("acct", 1)
        assert stub.get_balance() == 0.0

    def test_majority_vote_agrees(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), MajorityVote()],
        )
        stub.set_balance(9.0)
        assert stub.get_balance() == 9.0

    def test_majority_vote_tolerates_one_crash(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), MajorityVote()],
        )
        stub.set_balance(4.0)
        deployment.crash_replica("acct", 3)
        assert stub.get_balance() == 4.0

    def test_majority_vote_fails_without_majority(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), MajorityVote()],
        )
        stub.get_balance()
        deployment.crash_replica("acct", 1)
        deployment.crash_replica("acct", 2)
        with pytest.raises(ReproError):
            stub.get_balance()

    def test_majority_vote_on_application_exception(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), MajorityVote()],
        )
        exc_cls = bank_compiled().exceptions["bank::InsufficientFunds"]
        with pytest.raises(exc_cls):
            stub.withdraw(1.0)  # all replicas raise identically -> majority


class TestPassiveRep:
    @staticmethod
    def passive_client():
        return [PassiveRep()]

    @staticmethod
    def passive_server():
        return [PassiveRepServer()]

    def test_backups_stay_consistent(self, deployment):
        skeletons = deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=self.passive_server,
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=self.passive_client
        )
        stub.set_balance(60.0)
        stub.deposit(6.0)
        for skeleton in skeletons:
            balance = skeleton._platform.invoke_servant(_probe_request("get_balance"))
            assert balance == 66.0

    def test_failover_to_backup(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=self.passive_server,
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=self.passive_client
        )
        stub.set_balance(30.0)
        deployment.crash_replica("acct", 1)
        assert stub.get_balance() == 30.0  # served by replica 2
        stub.deposit(1.0)
        deployment.crash_replica("acct", 2)
        assert stub.get_balance() == 31.0  # served by replica 3

    def test_all_replicas_failed(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=2,
            server_micro_protocols=self.passive_server,
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=self.passive_client
        )
        stub.get_balance()
        deployment.crash_replica("acct", 1)
        deployment.crash_replica("acct", 2)
        with pytest.raises(ServerFailedError):
            stub.get_balance()

    def test_duplicate_suppression(self, deployment, platform):
        """A forwarded request re-sent to a backup must not double-apply."""
        skeletons = deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=2,
            server_micro_protocols=self.passive_server,
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=self.passive_client
        )
        stub.deposit(10.0)
        # Manually replay the same request at the backup via the control
        # plane: the duplicate-suppression cache must answer from memory.
        backup = skeletons[1].cactus_server
        primary_platform = skeletons[0]._platform
        from repro.core.request import PB_FORWARDED, Request

        wire = {
            "request_id": _last_request_id(backup),
            "object_id": "acct",
            "operation": "deposit",
            "params": [10.0],
            "piggyback": {PB_FORWARDED: True},
        }
        primary_platform.peer_invoke(2, "forward", wire)
        balance = skeletons[1]._platform.invoke_servant(_probe_request("get_balance"))
        assert balance == 10.0  # not 20


class TestTotalOrder:
    def test_replicas_converge_under_concurrent_clients(self, deployment):
        skeletons = deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [TotalOrder()],
        )
        errors = []

        def worker(seed):
            try:
                stub = deployment.client_stub(
                    "acct",
                    bank_interface(),
                    client_micro_protocols=lambda: [ActiveRep()],
                )
                for i in range(5):
                    stub.set_balance(float(seed * 100 + i))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # With a total order, all replicas end in the same state even though
        # set_balance is not commutative.  (The client returns on the first
        # reply, so wait for the slower replicas to drain.)
        balances = _quiesce(
            skeletons, lambda s: s._platform.invoke_servant(_probe_request("get_balance"))
        )
        assert len(set(balances)) == 1, balances

    def test_histories_identical_across_replicas(self, deployment):
        skeletons = deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [TotalOrder()],
        )
        threads = []
        for seed in range(2):

            def worker(seed=seed):
                stub = deployment.client_stub(
                    "acct",
                    bank_interface(),
                    client_micro_protocols=lambda: [ActiveRep()],
                )
                for i in range(4):
                    stub.deposit(float(seed * 10 + i))

            threads.append(threading.Thread(target=worker))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        histories = _quiesce(
            skeletons,
            lambda s: s._platform.invoke_servant(_probe_request("history", 100)),
        )
        assert histories[0] == histories[1] == histories[2]

    def test_without_total_order_divergence_is_possible(self, deployment):
        """Control experiment: plain ActiveRep gives no ordering guarantee.

        We can't assert divergence (it's a race), only that the mechanism
        doesn't reject the configuration and the system still answers.
        """
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=lambda: [ActiveRep()]
        )
        stub.set_balance(1.0)
        assert stub.get_balance() == 1.0


def _quiesce(skeletons, probe, timeout=10.0):
    """Poll ``probe`` per replica until the answers agree (or timeout).

    The first-reply acceptance semantics let the client finish while slower
    replicas are still executing, so convergence checks must wait.
    """
    import time

    deadline = time.monotonic() + timeout
    values = [probe(s) for s in skeletons]
    while time.monotonic() < deadline:
        if all(v == values[0] for v in values):
            return values
        time.sleep(0.02)
        values = [probe(s) for s in skeletons]
    return values


def _probe_request(operation, *args):
    from repro.core.request import Request

    return Request("acct", operation, list(args))


def _last_request_id(cactus_server):
    from repro.qos.fault_tolerance.passive import SHARED_SEEN

    seen = cactus_server.shared.get(SHARED_SEEN)
    return next(reversed(seen))
