"""Regression tests: schedulers + TotalOrder re-dispatch interaction.

A request that passed scheduler admission, took a sequence number, and
parked in TotalOrder gets re-dispatched through ``readyToInvoke`` when its
turn comes.  The scheduler must recognize it as already admitted — sending
it back to the queue deadlocks both protocols (the ordering waits on a
sequence number that sits in the scheduler queue).  This reproduces the
paper's §3.4 conflict discussion and pins the fix (sticky admission).
"""

import threading

import pytest

from repro.core.events import EV_READY_TO_INVOKE
from repro.core.request import PB_CLIENT_ID, Request
from repro.core.server import CactusServer
from repro.qos import QueuedSched, TimedSched, TotalOrder
from repro.qos.timeliness import HIGH_PRIORITY, LOW_PRIORITY
from repro.qos.timeliness.common import ATTR_ADMITTED
from tests.unit.test_core_components import FakeServerPlatform


def policy(request):
    return HIGH_PRIORITY if request.client_id.startswith("high") else LOW_PRIORITY


@pytest.mark.parametrize("scheduler_factory", [TimedSched, QueuedSched])
def test_admitted_requests_pass_scheduler_on_redispatch(scheduler_factory):
    platform = FakeServerPlatform()
    server = CactusServer.with_base(
        platform,
        [scheduler_factory()],
        priority_policy=policy,
        request_timeout=5.0,
    )
    try:
        request = Request("obj", "echo", ["x"], piggyback={PB_CLIENT_ID: "low-1"})
        # First pass: admitted (idle scheduler).
        assert server.cactus_invoke(request) == "x"
        assert request.attributes.get(ATTR_ADMITTED)
        # Simulate a TotalOrder-style re-dispatch of an admitted request:
        # it must reach the servant again, never the scheduler queue.
        request2 = Request("obj", "echo", ["y"], piggyback={PB_CLIENT_ID: "low-1"})
        request2.attributes[ATTR_ADMITTED] = True
        server.raise_event(EV_READY_TO_INVOKE, request2)
        assert request2.wait(5.0) == "y"
    finally:
        server.shutdown()
        server.runtime.shutdown()


def test_timed_sched_with_total_order_under_mixed_load(deployment):
    """End-to-end regression: the exact deadlock scenario — TimedSched at
    the coordinator, TotalOrder everywhere, mixed-priority concurrency."""
    from repro.apps.bank import BankAccount, bank_interface
    from repro.qos import ActiveRep

    deployment.add_replicas(
        "acct",
        BankAccount,
        bank_interface(),
        replicas=3,
        server_micro_protocols=lambda: [
            TotalOrder(),
            TimedSched(period=0.01, high_rate_threshold=1),
        ],
        priority_policy=policy,
    )
    errors = []

    def client(name, count):
        try:
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_id=name,
                client_micro_protocols=lambda: [ActiveRep()],
            )
            for _ in range(count):
                stub.deposit(1.0)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=("high-a", 10)),
        threading.Thread(target=client, args=("high-b", 10)),
        threading.Thread(target=client, args=("low-a", 10)),
        threading.Thread(target=client, args=("low-b", 10)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=90)
    assert not any(t.is_alive() for t in threads), "mixed load deadlocked"
    assert not errors, errors[:3]
