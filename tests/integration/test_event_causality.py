"""Figure 3 reproduction: the observed event causal graph.

The paper's Figure 3 draws arrows between the Cactus client/server events
("an arrow from ev1 to ev2 indicates that some micro-protocol that
processes ev1 raises ev2").  We trace real invocations and check that the
observed raise-edges are exactly the figure's edges.
"""

import threading
import time

from repro.apps.bank import BankAccount, bank_interface
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_INVOKE_RETURN,
    EV_INVOKE_SUCCESS,
    EV_NEW_REQUEST,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_INVOKE,
    EV_READY_TO_SEND,
    EV_REQUEST_RETURNED,
    FIGURE3_CLIENT_EDGES,
    FIGURE3_SERVER_EDGES,
)
from repro.qos import QueuedSched
from repro.qos.timeliness import HIGH_PRIORITY, LOW_PRIORITY


def identity_policy(request):
    return HIGH_PRIORITY if request.client_id.startswith("high") else LOW_PRIORITY


class TestFigure3:
    def test_base_configuration_edges(self, deployment):
        """Base micro-protocols exercise all Figure 3 edges except the
        requestReturned edge (raised only by the differentiation protocols)
        and the failure edge (no failures occur)."""
        skeletons = deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        client = stub.cactus_client
        server = skeletons[0].cactus_server
        client.enable_tracing()
        server.enable_tracing()
        stub.set_balance(5.0)
        stub.get_balance()
        assert client.trace_edges() == {
            (EV_NEW_REQUEST, EV_READY_TO_SEND),
            (EV_READY_TO_SEND, EV_INVOKE_SUCCESS),
        }
        assert server.trace_edges() == {
            (EV_NEW_SERVER_REQUEST, EV_READY_TO_INVOKE),
            (EV_READY_TO_INVOKE, EV_INVOKE_RETURN),
        }

    def test_failure_edge(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        client = stub.cactus_client
        stub.get_balance()  # bind first
        client.enable_tracing()
        deployment.crash_replica("acct", 1)
        try:
            stub.get_balance()
        except Exception:  # noqa: BLE001 - the failure is the point
            pass
        assert (EV_READY_TO_SEND, EV_INVOKE_FAILURE) in client.trace_edges()

    def test_full_figure3_edge_set(self, deployment):
        """With QueuedSched installed, every Figure 3 edge is observable.

        The requestReturned edge needs a queued low-priority request being
        woken by a completing high-priority one.
        """
        gate = threading.Event()
        entered = threading.Event()

        class SlowAccount(BankAccount):
            def owner(self):
                entered.set()
                gate.wait(10.0)
                return super().owner()

        skeletons = deployment.add_replicas(
            "acct",
            SlowAccount,
            bank_interface(),
            server_micro_protocols=lambda: [QueuedSched()],
            priority_policy=identity_policy,
        )
        server = skeletons[0].cactus_server
        high = deployment.client_stub("acct", bank_interface(), client_id="high-1")
        low = deployment.client_stub("acct", bank_interface(), client_id="low-1")
        client = low.cactus_client

        client.enable_tracing()
        server.enable_tracing()

        high_thread = threading.Thread(target=high.owner)
        high_thread.start()
        assert entered.wait(10.0)
        low_thread = threading.Thread(target=low.get_balance)
        low_thread.start()
        time.sleep(0.2)  # let the low request reach the queue
        gate.set()
        high_thread.join(10.0)
        low_thread.join(10.0)

        observed_client = client.trace_edges()
        observed_server = server.trace_edges()
        expected_client = FIGURE3_CLIENT_EDGES - {(EV_READY_TO_SEND, EV_INVOKE_FAILURE)}
        assert expected_client <= observed_client
        assert FIGURE3_SERVER_EDGES <= observed_server
        # And nothing outside the figure's vocabulary appears.
        figure_events = {
            EV_NEW_REQUEST,
            EV_READY_TO_SEND,
            EV_INVOKE_SUCCESS,
            EV_INVOKE_FAILURE,
            EV_NEW_SERVER_REQUEST,
            EV_READY_TO_INVOKE,
            EV_INVOKE_RETURN,
            EV_REQUEST_RETURNED,
        }
        for src, dst in observed_client | observed_server:
            assert src in figure_events and dst in figure_events
