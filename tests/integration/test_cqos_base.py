"""Integration tests for the CQoS interception ladder (Table 1's rungs).

Each rung of the paper's overhead ladder must be *functional*, not just
measurable: original platform, +CQoS stub (pass-through), +CQoS skeleton
(pass-through), +Cactus server, +Cactus client.
"""

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface


class TestLadder:
    def test_rung0_original_platform(self, deployment):
        deployment.deploy_plain_replica("acct", BankAccount(balance=1.0), bank_interface())
        stub = deployment.plain_stub("acct", bank_interface())
        stub.set_balance(10.0)
        assert stub.get_balance() == 10.0

    def test_rung1_cqos_stub_passthrough(self, deployment):
        # CQoS stub targets the *original* servant (no skeleton).
        deployment.deploy_plain_replica("acct", BankAccount(), bank_interface())
        stub = deployment.client_stub("acct", bank_interface(), with_cactus_client=False)
        stub.set_balance(11.0)
        assert stub.get_balance() == 11.0
        assert stub.cactus_client is None

    def test_rung2_cqos_skeleton_passthrough(self, deployment):
        deployment.add_replicas(
            "acct", BankAccount, bank_interface(), server_micro_protocols=None
        )
        stub = deployment.client_stub("acct", bank_interface(), with_cactus_client=False)
        stub.set_balance(12.0)
        assert stub.get_balance() == 12.0

    def test_rung3_cactus_server(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface(), with_cactus_client=False)
        stub.set_balance(13.0)
        assert stub.get_balance() == 13.0

    def test_rung4_full_cqos(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        stub.set_balance(14.0)
        assert stub.get_balance() == 14.0
        assert stub.cactus_client is not None


class TestTransparency:
    def test_stub_interface_matches_original(self, deployment):
        """The CQoS stub exposes exactly the original application interface."""
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        for operation in bank_interface().operations:
            assert callable(getattr(stub, operation)), operation

    def test_application_exceptions_cross_full_stack(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        exc_cls = bank_compiled().exceptions["bank::InsufficientFunds"]
        with pytest.raises(exc_cls) as excinfo:
            stub.withdraw(5.0)
        assert excinfo.value.available == 0.0

    def test_arity_errors_are_local(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        with pytest.raises(TypeError):
            stub.set_balance()

    def test_compound_values_cross_stack(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        stub.deposit(5.0)
        stub.withdraw(2.0)
        history = stub.history(10)
        assert [h["kind"] for h in history] == ["deposit", "withdraw"]

    def test_pending_requests_tracked(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        assert stub.pending_requests() == []
        stub.get_balance()
        assert stub.pending_requests() == []  # drained after completion

    def test_multiple_objects_independent(self, deployment):
        deployment.add_replicas("a1", lambda: BankAccount(balance=1.0), bank_interface())
        deployment.add_replicas("a2", lambda: BankAccount(balance=2.0), bank_interface())
        stub1 = deployment.client_stub("a1", bank_interface())
        stub2 = deployment.client_stub("a2", bank_interface())
        stub1.set_balance(100.0)
        assert stub2.get_balance() == 2.0

    def test_concurrent_clients_one_server(self, deployment):
        import threading

        deployment.add_replicas("acct", BankAccount, bank_interface())
        errors = []

        def worker(i):
            try:
                stub = deployment.client_stub("acct", bank_interface())
                for _ in range(10):
                    stub.deposit(1.0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        checker = deployment.client_stub("acct", bank_interface())
        assert checker.get_balance() == 40.0


class TestAsyncExtension:
    def test_cactus_request_async(self, deployment, bank_iface):
        from repro.core.request import Request

        deployment.add_replicas("acct", BankAccount, bank_iface)
        stub = deployment.client_stub("acct", bank_iface)
        client = stub.cactus_client
        request = Request("acct", "deposit", [7.0])
        client.cactus_request_async(request)
        assert request.wait(10.0) == 7.0
