"""Integration tests for the composed overload-protection stack.

Covers the cross-cutting behaviours no single protocol's unit tests can:
per-key invalidation deltas ferried between clients on the reply leg,
stale-while-shedding serving, RetryBackoff honouring the server's
Retry-After hint, per-class token buckets shedding the low classes first,
deadline-aware admission shedding doomed work, and the slot-release
regression (a request faulting between admission and invokeReturn must
still free its concurrency slot) under a chaos-wrapped network.
"""

import threading
import time

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.cactus.composite import MicroProtocol
from repro.cactus.events import ORDER_EARLY
from repro.core.events import EV_READY_TO_INVOKE
from repro.core.service import CqosDeployment
from repro.net.chaos import ChaosNetwork
from repro.net.memory import InMemoryNetwork
from repro.qos import RetryBackoff
from repro.qos.extensions import (
    AdmissionControl,
    AdmissionRejectedError,
    CacheInvalidator,
    ClientCache,
)
from repro.qos.fault_tolerance.deadline import DeadlineBudget
from repro.util.errors import DeadlineExceededError
from repro.qos.timeliness import HIGH_PRIORITY, LOW_PRIORITY
from repro.qos.timeliness.common import HIGH_PRIORITY_THRESHOLD

READS = ["get_balance", "owner"]
#: Bank reads from the *server's* perspective (history is read-only too —
#: leaving it out would make every history() call bump the epoch).
SERVER_READS = ["get_balance", "owner", "history"]
INVALIDATES = {
    "deposit": ["get_balance"],
    "withdraw": ["get_balance"],
    "set_balance": ["get_balance"],
}


class TestCoherentInvalidation:
    def test_other_clients_write_reaches_cache_via_piggyback(
        self, deployment, network
    ):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                CacheInvalidator(read_operations=SERVER_READS, invalidates=INVALIDATES)
            ],
        )
        reader = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ClientCache(read_operations=READS)],
        )
        writer = deployment.client_stub("acct", bank_interface())
        reader.set_balance(5.0)
        assert reader.get_balance() == 5.0  # cached (ttl=0: never expires)
        assert reader.owner() == "alice"  # cached
        writer.deposit(1.0)  # bumps the server's invalidation epoch
        # Any later server round-trip ferries the delta back to the reader;
        # history() is uncached on the client but read-only on the server.
        reader.history(1)
        # get_balance was invalidated per-key -> fresh read sees the write.
        assert reader.get_balance() == 6.0
        # ... while owner survived the delta: served locally, zero messages.
        before = network.message_count
        assert reader.owner() == "alice"
        assert network.message_count == before

    def test_own_write_invalidates_only_mapped_reads(self, deployment, network):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                CacheInvalidator(read_operations=SERVER_READS, invalidates=INVALIDATES)
            ],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ClientCache(read_operations=READS)],
        )
        assert stub.get_balance() == 0.0
        assert stub.owner() == "alice"
        stub.deposit(2.5)  # reply carries delta: invalidate get_balance only
        before = network.message_count
        assert stub.owner() == "alice"  # still a cache hit
        assert network.message_count == before
        assert stub.get_balance() == 2.5  # invalidated -> real read
        assert network.message_count > before
        cache: ClientCache = stub.cactus_client.micro_protocol("ClientCache")
        assert cache.hits >= 1

    def test_without_invalidator_writes_clear_everything(self, deployment, network):
        """The historical all-or-nothing fallback still applies."""
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ClientCache(read_operations=READS)],
        )
        assert stub.get_balance() == 0.0
        assert stub.owner() == "alice"
        stub.deposit(1.0)  # no server half -> legacy full clear
        before = network.message_count
        stub.owner()
        assert network.message_count > before  # cache was fully cleared


class TestStaleWhileShedding:
    def test_expired_entry_served_when_server_sheds(self, deployment):
        gate = threading.Event()
        entered = threading.Event()

        class Slow(BankAccount):
            def history(self, count):
                entered.set()
                gate.wait(10.0)
                return super().history(count)

        deployment.add_replicas(
            "acct",
            Slow,
            bank_interface(),
            server_micro_protocols=lambda: [
                AdmissionControl(max_concurrent=1, exempt_high_priority=False)
            ],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                ClientCache(
                    read_operations=["get_balance"],
                    ttl=0.01,
                    stale_while_shedding=True,
                )
            ],
        )
        stub.set_balance(7.0)
        assert stub.get_balance() == 7.0  # primes the cache
        time.sleep(0.05)  # entry expires
        blocker = deployment.client_stub("acct", bank_interface())
        thread = threading.Thread(target=lambda: blocker.history(1))
        thread.start()
        assert entered.wait(10.0)
        try:
            # Refresh is shed by admission control; the expired entry is
            # served instead of the rejection.
            assert stub.get_balance() == 7.0
            cache: ClientCache = stub.cactus_client.micro_protocol("ClientCache")
            assert cache.stale_serves == 1
        finally:
            gate.set()
            thread.join(10.0)

    def test_without_flag_the_rejection_propagates(self, deployment):
        gate = threading.Event()
        entered = threading.Event()

        class Slow(BankAccount):
            def history(self, count):
                entered.set()
                gate.wait(10.0)
                return super().history(count)

        deployment.add_replicas(
            "acct",
            Slow,
            bank_interface(),
            server_micro_protocols=lambda: [
                AdmissionControl(max_concurrent=1, exempt_high_priority=False)
            ],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                ClientCache(read_operations=["get_balance"], ttl=0.01)
            ],
        )
        stub.get_balance()
        time.sleep(0.05)
        blocker = deployment.client_stub("acct", bank_interface())
        thread = threading.Thread(target=lambda: blocker.history(1))
        thread.start()
        assert entered.wait(10.0)
        try:
            with pytest.raises(AdmissionRejectedError):
                stub.get_balance()
        finally:
            gate.set()
            thread.join(10.0)


class TestRetryAfterHint:
    def test_backoff_client_rides_out_the_shed(self, deployment):
        gate = threading.Event()
        entered = threading.Event()

        class Slow(BankAccount):
            def history(self, count):
                entered.set()
                gate.wait(10.0)
                return super().history(count)

        deployment.add_replicas(
            "acct",
            Slow,
            bank_interface(),
            server_micro_protocols=lambda: [
                AdmissionControl(max_concurrent=1, exempt_high_priority=False)
            ],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                RetryBackoff(max_attempts=6, base_delay=0.01, max_delay=0.2, seed=7)
            ],
        )
        blocker = deployment.client_stub("acct", bank_interface())
        thread = threading.Thread(target=lambda: blocker.history(1))
        thread.start()
        assert entered.wait(10.0)
        # Free the slot shortly; the client should shed, back off at least
        # the server's hinted delay, then succeed on a retry.
        releaser = threading.Timer(0.1, gate.set)
        releaser.start()
        try:
            assert stub.get_balance() == 0.0
            retry: RetryBackoff = stub.cactus_client.micro_protocol("RetryBackoff")
            assert retry.stats().get("shed_backoffs", 0) >= 1
        finally:
            gate.set()
            releaser.cancel()
            thread.join(10.0)

    def test_rejection_carries_positive_retry_after(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                AdmissionControl(
                    max_rate=0.001, burst=0.5, exempt_high_priority=False
                )
            ],
        )
        stub = deployment.client_stub("acct", bank_interface())
        with pytest.raises(AdmissionRejectedError) as excinfo:
            stub.get_balance()
        # The hint survives the wire (rehydrated from the message text).
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after > 0


class TestPerClassShedding:
    def test_low_class_sheds_first(self, deployment):
        def policy(request):
            return HIGH_PRIORITY if request.client_id == "vip" else LOW_PRIORITY

        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                AdmissionControl(
                    class_rates={
                        HIGH_PRIORITY_THRESHOLD: (1000.0, 50.0),
                        0: (1e-9, 1e-9),
                    },
                    exempt_high_priority=False,
                )
            ],
            priority_policy=policy,
        )
        vip = deployment.client_stub("acct", bank_interface(), client_id="vip")
        pleb = deployment.client_stub("acct", bank_interface(), client_id="pleb")
        # The high class keeps its reserved throughput...
        for _ in range(5):
            assert vip.get_balance() == 0.0
        # ... while the low class's empty bucket sheds immediately.
        with pytest.raises(AdmissionRejectedError, match="rate budget"):
            pleb.get_balance()


class TestDeadlineAwareShedding:
    def test_doomed_request_shed_before_taking_a_slot(self, deployment):
        class Slow(BankAccount):
            def owner(self):
                time.sleep(0.1)
                return super().owner()

        admission = AdmissionControl(exempt_high_priority=False)
        deployment.add_replicas(
            "acct",
            Slow,
            bank_interface(),
            server_micro_protocols=lambda: [admission],
        )
        warm = deployment.client_stub("acct", bank_interface())
        warm.owner()  # service-time EWMA learns ~0.1s
        assert admission.service_time_ewma() > 0.05
        doomed = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [DeadlineBudget(budget=0.01)],
        )
        # Remaining budget (~10ms) < observed EWMA (~100ms): shed up front.
        with pytest.raises(AdmissionRejectedError, match="deadline budget"):
            doomed.owner()
        assert admission.stats().get("shed_deadline", 0) >= 1
        # The shed consumed no slot and charged no service-time sample.
        assert admission.in_flight() == 0

    def test_sheds_decay_inflated_ewma_until_probe_admitted(self, deployment):
        """Regression: the service-time EWMA only refreshes from *admitted*
        requests, so an estimate inflated past every client's budget during
        a surge would shed deadline-carrying traffic forever.  Each
        deadline shed must decay the estimate until a probe gets through
        and re-measures the (now recovered) server."""

        class Moody(BankAccount):
            slow = True

            def owner(self):
                if Moody.slow:
                    time.sleep(0.12)
                return super().owner()

        admission = AdmissionControl(exempt_high_priority=False)
        deployment.add_replicas(
            "acct",
            Moody,
            bank_interface(),
            server_micro_protocols=lambda: [admission],
        )
        warm = deployment.client_stub("acct", bank_interface())
        warm.owner()  # EWMA learns ~0.12s — above the budget below
        inflated = admission.service_time_ewma()
        assert inflated > 0.1
        Moody.slow = False  # the overload drained; the server is fast again
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [DeadlineBudget(budget=0.05)],
        )
        sheds = 0
        for _ in range(200):
            try:
                assert stub.owner() == "alice"
                break
            except AdmissionRejectedError:
                sheds += 1
        else:
            pytest.fail("admission never recovered from the inflated EWMA")
        assert sheds >= 1  # the stale estimate did shed at first...
        assert admission.service_time_ewma() < inflated  # ...then re-learned


class TestLateReplyRejected:
    def test_success_past_deadline_becomes_failure(self, deployment):
        class Slow(BankAccount):
            def owner(self):
                time.sleep(0.15)
                return super().owner()

        # No server-side shedding: the servant happily serves a late reply;
        # the client-side budget must refuse to deliver it.
        deployment.add_replicas("acct", Slow, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [DeadlineBudget(budget=0.05)],
        )
        with pytest.raises(DeadlineExceededError, match="after its deadline"):
            stub.owner()


class _CrashMidInvoke(MicroProtocol):
    """Chaos helper: the transport dies after admission, before dispatch."""

    name = "CrashMidInvoke"

    def __init__(self, crashes: int):
        super().__init__()
        self.remaining = crashes

    def start(self):
        self.bind(EV_READY_TO_INVOKE, self.maybe_crash, order=ORDER_EARLY)

    def maybe_crash(self, occurrence):
        from repro.util.errors import CommunicationError

        with self.shared.lock:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        raise CommunicationError("transport crashed mid-invoke (injected)")


class TestSlotReleaseUnderFaults:
    """Satellite regression: a fault between admission and invokeReturn
    must release the concurrency slot (historically it leaked, and the
    server rejected everything forever after max_concurrent faults)."""

    def test_faulted_requests_release_their_slots(self):
        network = ChaosNetwork(InMemoryNetwork())
        deployment = CqosDeployment(
            network, platform="rmi", compiled=bank_compiled(), request_timeout=10.0
        )
        admission = AdmissionControl(max_concurrent=1, exempt_high_priority=False)
        try:
            deployment.add_replicas(
                "acct",
                BankAccount,
                bank_interface(),
                server_micro_protocols=lambda: [admission, _CrashMidInvoke(crashes=3)],
            )
            stub = deployment.client_stub("acct", bank_interface())
            for _ in range(3):
                with pytest.raises(Exception):
                    stub.get_balance()
                # The faulted request freed its slot on the way out.
                assert admission.in_flight() == 0
            # With max_concurrent=1, a single leaked slot would shed this:
            assert stub.get_balance() == 0.0
            assert admission.stats().get("shed_concurrency", 0) == 0
        finally:
            deployment.close()
