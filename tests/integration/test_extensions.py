"""Tests for the extensions beyond the paper's prototype.

Each extension is something the paper names as future work or an easy
addition: failure detection, request logging + recovery, total-order
coordinator failover, and dynamic (rBoot-style) client configuration.
"""

import time

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.cactus.config import MicroProtocolSpec
from repro.core.client import SHARED_FAILED_SERVERS
from repro.qos import ActiveRep, FirstSuccess, PassiveRep, PassiveRepServer, TotalOrder
from repro.qos.fault_tolerance import FailureDetector, RequestLog, replay_log


class TestFailureDetector:
    def test_detects_crash_and_recovery(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=2)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [FailureDetector(period=0.05)],
        )
        client = stub.cactus_client
        detector: FailureDetector = client.micro_protocol("FailureDetector")
        assert detector.probe_now() == set()
        deployment.crash_replica("acct", 2)
        assert detector.probe_now() == {2}
        assert client.shared.get(SHARED_FAILED_SERVERS) == {2}
        deployment.recover_replica("acct", 2)
        assert detector.probe_now() == set()

    def test_periodic_probing_updates_view(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=2)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [FailureDetector(period=0.05)],
        )
        client = stub.cactus_client
        deployment.crash_replica("acct", 1)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if client.shared.get(SHARED_FAILED_SERVERS) == {1}:
                break
            time.sleep(0.02)
        assert client.shared.get(SHARED_FAILED_SERVERS) == {1}

    def test_proactive_failover_with_passive_rep(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=2,
            server_micro_protocols=lambda: [PassiveRepServer()],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [PassiveRep(), FailureDetector(period=0.05)],
        )
        stub.set_balance(8.0)
        deployment.crash_replica("acct", 1)
        stub.cactus_client.micro_protocol("FailureDetector").probe_now()
        # The next request goes straight to replica 2; no failed attempt.
        assert stub.get_balance() == 8.0


class TestRequestLogRecovery:
    def test_log_and_replay(self, deployment):
        store = []
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [RequestLog(store=store)],
        )
        stub = deployment.client_stub("acct", bank_interface())
        stub.set_balance(10.0)
        stub.deposit(5.0)
        stub.get_balance()  # read: not logged
        assert len(store) == 2

        # Recover onto a brand-new replica of the same object.
        recovered = deployment.add_replicas(
            "acct2",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [RequestLog(store=[])],
        )[0]
        count = replay_log(store, recovered.cactus_server)
        assert count == 2
        from repro.core.request import Request

        balance = recovered._platform.invoke_servant(Request("acct2", "get_balance", []))
        assert balance == 15.0

    def test_file_log_store(self, deployment, tmp_path):
        from repro.qos.fault_tolerance.logging_recovery import FileLogStore

        store = FileLogStore(str(tmp_path / "requests.log"))
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [RequestLog(store=store)],
        )
        stub = deployment.client_stub("acct", bank_interface())
        stub.deposit(1.0)
        stub.deposit(2.0)
        entries = list(store)
        assert [e["operation"] for e in entries] == ["deposit", "deposit"]


class TestTotalOrderFailover:
    def test_sequencer_failover(self, deployment):
        """Crash the coordinator; the lowest live replica takes over."""
        skeletons = deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [TotalOrder(order_timeout=0.2)],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
        )
        stub.set_balance(1.0)
        deployment.crash_replica("acct", 1)
        # Requests still complete: replica 2 becomes the sequencer after
        # the order-timeout probe discovers replica 1 dead.
        stub.deposit(2.0)
        assert stub.get_balance() == 3.0
        assert skeletons[1].cactus_server.micro_protocol("TotalOrder").sequencer == 2


class TestDynamicClientConfiguration:
    def test_client_config_from_service(self, deployment, network):
        """The client's micro-protocols come from a configuration service."""
        from repro.cactus.dynamic import ConfigurationService, RBoot

        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        service = ConfigurationService(network)
        try:
            # ClientBase itself comes from the deployment's with_base
            # wrapping; the service defines only the QoS configuration.
            service.define(
                "alice",
                "acct",
                [MicroProtocolSpec("ActiveRep"), MicroProtocolSpec("FirstSuccess")],
            )
            source = ConfigurationService.source(
                network, "dyn-client", "config-service", "alice", "acct"
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [RBoot(source)],
            )
            client = stub.cactus_client
            # RBoot loaded the real configuration at creation time.
            names = client.micro_protocol_names()
            assert "ActiveRep" in names and "FirstSuccess" in names
            stub.set_balance(6.0)
            assert stub.get_balance() == 6.0
        finally:
            service.close()
