"""Integration tests for the auction application over CQoS.

The auction servant's order-sensitivity makes it the sharpest correctness
probe for total ordering: without it, concurrent bidding wars genuinely
diverge replicas; with it, they must not.
"""

import threading
import time

import pytest

from repro.apps.auction import AuctionHouse, auction_compiled, auction_interface
from repro.core.request import Request
from repro.core.service import CqosDeployment
from repro.qos import ActiveRep, FirstSuccess, TotalOrder


@pytest.fixture
def auction_deployment(network, platform):
    deployment = CqosDeployment(
        network, platform=platform, compiled=auction_compiled(), request_timeout=20.0
    )
    yield deployment
    deployment.close()


def probe(skeleton, operation, *args):
    return skeleton._platform.invoke_servant(Request("house", operation, list(args)))


class TestAuctionSemantics:
    def test_bidding_rules(self, auction_deployment):
        auction_deployment.add_replicas("house", AuctionHouse, auction_interface())
        stub = auction_deployment.client_stub("house", auction_interface())
        stub.open_auction("vase", 50.0)
        exceptions = auction_compiled().exceptions

        with pytest.raises(exceptions["auction::BidTooLow"]) as excinfo:
            stub.place_bid("vase", "alice", 10.0)
        assert excinfo.value.minimum == 50.0

        assert stub.place_bid("vase", "alice", 50.0) == 50.0
        with pytest.raises(exceptions["auction::BidTooLow"]):
            stub.place_bid("vase", "bob", 50.5)  # below increment
        assert stub.place_bid("vase", "bob", 51.0) == 51.0
        assert stub.leader("vase") == ["bob", 51.0]

        assert stub.close_auction("vase") == "bob"
        with pytest.raises(exceptions["auction::AuctionClosed"]):
            stub.place_bid("vase", "carol", 99.0)
        with pytest.raises(exceptions["auction::NoSuchAuction"]):
            stub.leader("ghost")
        assert stub.auctions_open() == 0

    def test_history_records_accepted_bids_only(self, auction_deployment):
        auction_deployment.add_replicas("house", AuctionHouse, auction_interface())
        stub = auction_deployment.client_stub("house", auction_interface())
        stub.open_auction("book", 1.0)
        stub.place_bid("book", "a", 1.0)
        try:
            stub.place_bid("book", "b", 1.2)  # below increment: rejected
        except Exception:
            pass
        stub.place_bid("book", "b", 3.0)
        history = stub.bid_history("book")
        assert [h["bidder"] for h in history] == ["a", "b"]


class TestAuctionReplication:
    def test_concurrent_bidders_converge_with_total_order(self, auction_deployment):
        skeletons = auction_deployment.add_replicas(
            "house",
            AuctionHouse,
            auction_interface(),
            replicas=3,
            server_micro_protocols=lambda: [TotalOrder()],
        )
        admin = auction_deployment.client_stub(
            "house",
            auction_interface(),
            client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
        )
        admin.open_auction("lot", 10.0)
        errors = []

        def bidder(name, start):
            try:
                stub = auction_deployment.client_stub(
                    "house",
                    auction_interface(),
                    client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
                )
                for i in range(8):
                    try:
                        stub.place_bid("lot", name, start + i * 5.0)
                    except Exception as exc:  # noqa: BLE001
                        if type(exc).__name__ != "BidTooLow":
                            raise
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=bidder, args=(name, base))
            for name, base in (("alice", 10.0), ("bob", 12.0), ("carol", 11.0))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
        assert not errors, errors[:3]

        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            histories = [probe(s, "bid_history", "lot") for s in skeletons]
            if histories[0] == histories[1] == histories[2]:
                break
            time.sleep(0.02)
        assert histories[0] == histories[1] == histories[2]
        leaders = {tuple(probe(s, "leader", "lot") or ()) for s in skeletons}
        assert len(leaders) == 1
