"""Cross-platform contract suite for the invocation kernel.

One parameterized suite asserting *identical observable behavior* of the
Cactus QoS interface across all three platform adapters (CORBA, RMI, HTTP):
bind/rebind semantics, ``server_status`` transitions, piggyback round-trip
fidelity (including non-ASCII keys and non-string values), the control
ping, and the shared fault taxonomy.  Any behavioral divergence between
adapters is a kernel regression — the paper's portability claim, made
executable.
"""

from __future__ import annotations

import pytest

from repro.core.platform import (
    ACTION_DROP_BINDING,
    ACTION_KEEP,
    ACTION_MARK_FAILED,
    InvocationObserver,
    fault_action,
)
from repro.core.request import PB_REQUEST_ID, Request
from repro.util.errors import (
    BindError,
    CircuitOpenError,
    CommunicationError,
    DeadlineExceededError,
    InvocationError,
    MarshalError,
    ServerFailedError,
    TimeoutError_,
    is_retryable,
)
from tests.conftest import make_account

REPLICAS = 2


class RecordingObserver(InvocationObserver):
    """Captures every kernel hook it sees, in order."""

    def __init__(self):
        self.events: list[tuple] = []

    def __getattribute__(self, name):
        if name.startswith("on_"):
            events = object.__getattribute__(self, "events")
            return lambda *args: events.append((name, *args))
        return object.__getattribute__(self, name)


@pytest.fixture
def server_observer():
    return RecordingObserver()


@pytest.fixture
def contract(deployment, bank_iface, server_observer):
    """Two intercepted replicas + a pass-through client platform."""
    deployment.add_replicas(
        "acct",
        make_account(),
        bank_iface,
        replicas=REPLICAS,
        server_micro_protocols=None,
        observers=[server_observer],
    )
    stub = deployment.client_stub("acct", bank_iface, with_cactus_client=False)
    return deployment, stub, stub._platform


def make_request(operation: str, params: list, piggyback: dict | None = None) -> Request:
    request = Request(
        object_id="acct", operation=operation, params=params, piggyback=dict(piggyback or {})
    )
    request.piggyback.setdefault(PB_REQUEST_ID, request.request_id)
    return request


# -- replica discovery and binding ------------------------------------------


def test_num_servers_counts_registered_replicas(contract):
    _, _, platform = contract
    assert platform.num_servers() == REPLICAS


def test_bind_unknown_replica_raises_bind_error(contract):
    """Every platform's 'name not bound' surfaces as the same BindError."""
    _, _, platform = contract
    with pytest.raises(BindError):
        platform.bind(99)


def test_bind_is_idempotent_and_lazy(contract):
    _, _, platform = contract
    platform.bind(1)
    platform.bind(1)  # second bind is a no-op, not an error
    assert platform.server_status(1)


def test_invoke_through_each_replica(contract):
    _, _, platform = contract
    for replica in range(1, REPLICAS + 1):
        platform.bind(replica)
        request = make_request("set_balance", [10.0 * replica])
        platform.invoke_server(replica, request)
        reply = platform.invoke_server(replica, make_request("get_balance", []))
        assert reply == 10.0 * replica


# -- server_status transitions ----------------------------------------------


def test_status_starts_up_and_marks_failed_on_crash(contract):
    deployment, _, platform = contract
    assert platform.server_status(1)
    deployment.crash_replica("acct", 1)
    with pytest.raises(ServerFailedError):
        platform.invoke_server(1, make_request("get_balance", []))
    # The crash was observed: local knowledge now reports the replica down.
    assert not platform.server_status(1)
    # Other replicas are unaffected.
    assert platform.server_status(2)


def test_rebind_clears_failure_mark_after_recovery(contract):
    deployment, _, platform = contract
    deployment.crash_replica("acct", 1)
    with pytest.raises(ServerFailedError):
        platform.invoke_server(1, make_request("get_balance", []))
    assert not platform.server_status(1)
    deployment.recover_replica("acct", 1)
    # "the bind() operation can also be used to rebind to a failed server
    # after it has recovered."
    platform.bind(1)
    assert platform.server_status(1)
    assert platform.invoke_server(1, make_request("get_balance", [])) == 0.0


# -- control ping -------------------------------------------------------------


def test_probe_true_while_up_false_after_crash(contract):
    deployment, _, platform = contract
    assert platform.probe(1)
    deployment.crash_replica("acct", 1)
    assert not platform.probe(1)
    assert not platform.server_status(1)  # probe failure marks the replica
    deployment.recover_replica("acct", 1)
    platform.bind(1)
    assert platform.probe(1)


def test_probe_unresolvable_replica_is_false_not_raise(contract):
    _, _, platform = contract
    assert not platform.probe(99)
    assert not platform.server_status(99)


# -- piggyback round-trip -----------------------------------------------------

AWKWARD_PIGGYBACK = {
    "plain": "value",
    "non_ascii_value": "héllo → мир ✓",
    "integer": 42,
    "floaty": 2.5,
    "binary": b"\x00\xff\xfe",
    "nested": {"list": [1, "two", 3.0], "flag": True},
    "clé-à-accents": "non-ascii key",  # breaks latin-1 header names
    "Mixed.Case_Key": "case must survive",  # breaks case-folding transports
    7: "non-string key",
}


def test_piggyback_round_trips_identically(contract, server_observer):
    """The skeleton sees byte-for-byte the piggyback the client attached —
    including non-ASCII keys/values, ints, bytes, and nested structures —
    on every platform."""
    _, _, platform = contract
    platform.bind(1)
    request = make_request("get_balance", [], piggyback=dict(AWKWARD_PIGGYBACK))
    platform.invoke_server(1, request)
    contexts = [
        event[3] for event in server_observer.events if event[0] == "on_skeleton_receive"
    ]
    assert contexts, "server observer saw no skeleton receive"
    seen = contexts[-1]
    for key, value in AWKWARD_PIGGYBACK.items():
        assert seen[key] == value, f"piggyback entry {key!r} did not survive"
    assert seen[PB_REQUEST_ID] == request.request_id


def test_request_identity_preserved_across_interception(contract, server_observer):
    """Replica-side abstract requests are rebuilt under the client's id."""
    _, _, platform = contract
    platform.bind(1)
    request = make_request("get_balance", [])
    platform.invoke_server(1, request)
    servant_requests = [
        event[1] for event in server_observer.events if event[0] == "on_servant_invoke"
    ]
    assert servant_requests and servant_requests[-1].request_id == request.request_id


# -- error taxonomy -----------------------------------------------------------


def test_application_exception_does_not_mark_replica(contract):
    """An application (IDL) exception is an outcome, not a platform fault."""
    deployment, stub, platform = contract
    platform.bind(1)
    with pytest.raises(Exception) as excinfo:
        platform.invoke_server(1, make_request("withdraw", [1000.0]))
    assert not isinstance(excinfo.value, CommunicationError)
    assert platform.server_status(1)  # binding untouched


def test_fault_taxonomy_matches_is_retryable():
    """fault_action() and is_retryable() agree on the CommunicationError
    taxonomy: crashes mark the replica, transients only drop the binding."""
    crash = ServerFailedError("host down")
    assert fault_action(crash) == ACTION_MARK_FAILED
    assert not is_retryable(crash)
    for transient in (
        CommunicationError("reset"),
        TimeoutError_("slow"),
        DeadlineExceededError("spent"),
        CircuitOpenError("open"),
    ):
        assert fault_action(transient) == ACTION_DROP_BINDING
    for outcome in (
        InvocationError("App", "boom"),
        MarshalError("bad bytes"),
        ValueError("not a platform fault"),
        None,
    ):
        assert fault_action(outcome) == ACTION_KEEP


def test_stub_and_wire_observers_fire_in_order(deployment, bank_iface):
    """Client-side hooks thread stub → wire on every platform."""
    observer = RecordingObserver()
    deployment.add_replicas(
        "acct", make_account(), bank_iface, replicas=1, server_micro_protocols=None
    )
    stub = deployment.client_stub(
        "acct", bank_iface, with_cactus_client=False, observers=[observer]
    )
    stub.set_balance(5.0)
    assert stub.get_balance() == 5.0
    hooks = [name for name, *_ in observer.events]
    assert hooks == [
        "on_stub_request", "on_wire_send", "on_wire_reply", "on_stub_complete",
    ] * 2
    # Completion hook reports success (no error).
    final = observer.events[-1]
    assert final[0] == "on_stub_complete" and final[2] is None
