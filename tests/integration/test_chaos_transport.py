"""The existing failover suites, re-run over chaos-wrapped real TCP.

The in-memory failover tests inject faults through the network fixture's
``set_loss``/``partition``/``crash`` surface.  :class:`ChaosNetwork` gives
:class:`TcpNetwork` the same surface, so the suites run unchanged over real
kernel sockets by overriding the ``network`` fixture and subclassing — every
inherited test exercises loss, partitions, crashes and failover with actual
connection resets and reconnects underneath.

Marked ``chaos`` so CI can schedule these separately from tier-1.
"""

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.core.service import CqosDeployment
from repro.net.chaos import ChaosNetwork, FaultPlan
from repro.net.tcp import TcpNetwork
from repro.qos import Retransmit, RetryBackoff

from tests.integration import test_failure_injection as _failure_injection
from tests.integration import test_fault_tolerance as _fault_tolerance

pytestmark = pytest.mark.chaos


@pytest.fixture
def network():
    """Chaos-wrapped TCP instead of the in-memory network (no faults until
    a test injects them through the parity API)."""
    net = ChaosNetwork(TcpNetwork())
    yield net
    net.close()


@pytest.fixture(params=["corba", "rmi"])
def platform(request):
    return request.param


@pytest.fixture
def deployment(network, platform, compiled_bank):
    dep = CqosDeployment(
        network, platform=platform, compiled=compiled_bank, request_timeout=15.0
    )
    yield dep
    dep.close()


# -- the in-memory failover suites, inherited verbatim ----------------------

class TestCrashRecoveryOverChaosTcp(_failure_injection.TestCrashRecovery):
    pass


class TestMessageLossOverChaosTcp(_failure_injection.TestMessageLoss):
    pass


class TestPartitionsOverChaosTcp(_failure_injection.TestPartitions):
    pass


class TestActiveRepOverChaosTcp(_fault_tolerance.TestActiveRep):
    def test_all_replicas_execute(self, deployment):
        """Re-written with a bounded wait: the first reply completes the
        request while the other replicas' invocations are still crossing the
        real TCP wire, so the all-replicas-applied check must poll."""
        import time

        skeletons = deployment.add_replicas(
            "acct", BankAccount, bank_interface(), replicas=3
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [_fault_tolerance.ActiveRep()],
        )
        stub.set_balance(50.0)
        deadline = time.monotonic() + 5.0
        probe = _fault_tolerance._probe_request
        while True:
            balances = [
                skeleton._platform.invoke_servant(probe("get_balance"))
                for skeleton in skeletons
            ]
            if all(balance == 50.0 for balance in balances):
                break
            assert time.monotonic() < deadline, f"replicas diverged: {balances}"
            time.sleep(0.01)


class TestAcceptanceOverChaosTcp(_fault_tolerance.TestAcceptance):
    pass


class TestPassiveRepOverChaosTcp(_fault_tolerance.TestPassiveRep):
    pass


# -- chaos-plan-specific coverage -------------------------------------------

class TestFaultPlanOverTcp:
    def test_retry_protocols_ride_out_a_seeded_plan(self, deployment, network):
        """A seeded lossy/laggy plan is absorbed by the retry protocol."""
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                RetryBackoff(max_attempts=8, base_delay=0.002, max_delay=0.02, seed=3)
            ],
        )
        stub.set_balance(9.0)  # warm up fault-free
        network.set_plan(
            FaultPlan(
                seed=2024,
                loss=0.15,
                latency=0.001,
                jitter=0.002,
                exempt_hosts=frozenset({"naming", "rmi-registry"}),
            )
        )
        for _ in range(15):
            assert stub.get_balance() == 9.0
        assert network.stats()["lost"] > 0  # the plan actually injected

    def test_legacy_retransmit_also_survives_chaos_tcp(self, deployment, network):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [Retransmit(max_attempts=30)],
        )
        stub.set_balance(1.5)
        network.set_plan(
            FaultPlan(
                seed=5,
                loss=0.2,
                exempt_hosts=frozenset({"naming", "rmi-registry"}),
            )
        )
        for _ in range(10):
            assert stub.get_balance() == 1.5

    def test_scheduled_crash_recover_cycle(self, deployment, network):
        """A FaultPlan schedule drives the deployment's crash injection."""
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                RetryBackoff(max_attempts=4, base_delay=0.01, jitter=False)
            ],
        )
        stub.set_balance(7.0)
        host = deployment._replica_hosts[("acct", 1)]
        network.set_plan(
            FaultPlan(seed=0, schedule=((0.0, "crash", host), (0.3, "recover", host)))
        )
        network.start()
        with pytest.raises(Exception):
            stub.get_balance()  # the scheduled crash has fired
        import time

        time.sleep(0.35)  # let the scheduled recovery come due
        stub._platform.bind(1)  # the paper's rebind-after-recovery step
        assert stub.get_balance() == 7.0
        stats = network.stats()
        assert stats["crashes"] == 1 and stats["recoveries"] == 1
