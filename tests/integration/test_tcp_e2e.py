"""End-to-end CQoS over real loopback TCP sockets.

The same deployments as the in-memory tests, but every message crosses the
kernel's TCP stack — the closest this reproduction gets to the paper's
actual cluster wiring.
"""

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.core.service import CqosDeployment
from repro.net.tcp import TcpNetwork
from repro.qos import (
    ActiveRep,
    DesPrivacy,
    DesPrivacyServer,
    MajorityVote,
    PassiveRep,
    PassiveRepServer,
    TotalOrder,
)

KEY = "0123456789abcdef"


@pytest.fixture(params=["corba", "rmi"])
def tcp_deployment(request):
    net = TcpNetwork()
    dep = CqosDeployment(
        net, platform=request.param, compiled=bank_compiled(), request_timeout=15.0
    )
    yield dep
    dep.close()


class TestTcpEndToEnd:
    def test_base_pipeline(self, tcp_deployment):
        tcp_deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = tcp_deployment.client_stub("acct", bank_interface())
        stub.set_balance(12.5)
        assert stub.get_balance() == 12.5

    def test_replication_with_total_order(self, tcp_deployment):
        tcp_deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [TotalOrder()],
        )
        stub = tcp_deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), MajorityVote()],
        )
        stub.set_balance(5.0)
        for _ in range(3):
            stub.deposit(1.0)
        assert stub.get_balance() == 8.0

    def test_passive_failover_over_real_sockets(self, tcp_deployment):
        tcp_deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=2,
            server_micro_protocols=lambda: [PassiveRepServer()],
        )
        stub = tcp_deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=lambda: [PassiveRep()]
        )
        stub.set_balance(42.0)
        tcp_deployment.crash_replica("acct", 1)
        assert stub.get_balance() == 42.0

    def test_privacy_over_real_sockets(self, tcp_deployment):
        tcp_deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [DesPrivacyServer(key_hex=KEY)],
        )
        stub = tcp_deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [DesPrivacy(key_hex=KEY)],
        )
        stub.set_balance(3.25)
        assert stub.get_balance() == 3.25
