"""Integration tests for the RMI-like platform (no CQoS involved)."""

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.net.memory import InMemoryNetwork
from repro.rmi import (
    RmiRuntime,
    make_rmi_stub_class,
    registry_client,
    start_registry,
)
from repro.util.errors import BindError, CommunicationError, InvocationError


@pytest.fixture
def world():
    net = InMemoryNetwork()
    compiled = bank_compiled()
    registry_runtime = RmiRuntime(net, "rmi-registry", compiled).start()
    start_registry(registry_runtime)
    server = RmiRuntime(net, "server", compiled).start()
    client = RmiRuntime(net, "client", compiled)
    yield net, server, client
    for runtime in (registry_runtime, server, client):
        runtime.shutdown()
    net.close()


class TestTypedExport:
    def test_stub_invocations(self, world):
        _, server, client = world
        ref = server.export(BankAccount(balance=5.0), bank_interface())
        stub = make_rmi_stub_class(bank_interface())(client, ref)
        assert stub.get_balance() == 5.0
        assert stub.deposit(5.0) == 10.0

    def test_remote_exception(self, world):
        _, server, client = world
        ref = server.export(BankAccount(), bank_interface())
        stub = make_rmi_stub_class(bank_interface())(client, ref)
        with pytest.raises(bank_compiled().exceptions["bank::InsufficientFunds"]):
            stub.withdraw(1.0)

    def test_unknown_method(self, world):
        _, server, client = world
        ref = server.export(BankAccount(), bank_interface())
        with pytest.raises(InvocationError):
            client.call(ref, "no_such_method", [])

    def test_unknown_object(self, world):
        _, server, client = world
        ref = server.export(BankAccount(), bank_interface())
        ref.object_id = "ghost"
        with pytest.raises(InvocationError, match="BindError"):
            client.call(ref, "get_balance", [])

    def test_unexport(self, world):
        _, server, client = world
        ref = server.export(BankAccount(), bank_interface())
        server.unexport(ref)
        with pytest.raises(InvocationError):
            client.call(ref, "get_balance", [])

    def test_duplicate_object_id_rejected(self, world):
        _, server, _ = world
        server.export(BankAccount(), bank_interface(), object_id="same")
        with pytest.raises(BindError):
            server.export(BankAccount(), bank_interface(), object_id="same")


class TestGenericExport:
    def test_generic_invoke_with_context(self, world):
        _, server, client = world

        class Generic:
            def invoke(self, method, arguments, context):
                return {"m": method, "a": arguments, "c": context}

        ref = server.export_generic(Generic())
        result = client.call(ref, "op", [1], context={"prio": 8})
        assert result == {"m": "op", "a": [1], "c": {"prio": 8}}

    def test_non_generic_object_rejected(self, world):
        _, server, _ = world
        with pytest.raises(BindError, match="invoke"):
            server.export_generic(object())


class TestRegistry:
    def test_bind_lookup_list_unbind(self, world):
        _, server, client = world
        ref = server.export(BankAccount(), bank_interface())
        registry = registry_client(client)
        registry.bind("bank/1", ref)
        assert registry.lookup("bank/1") == ref
        assert registry.list("bank/") == ["bank/1"]
        registry.unbind("bank/1")
        with pytest.raises(InvocationError):
            registry.lookup("bank/1")

    def test_double_bind_rejected_rebind_allowed(self, world):
        _, server, client = world
        ref = server.export(BankAccount(), bank_interface())
        registry = registry_client(client)
        registry.bind("n", ref)
        with pytest.raises(InvocationError):
            registry.bind("n", ref)
        registry.rebind("n", ref)

    def test_remote_ref_identity_survives_wire(self, world):
        _, server, client = world
        ref = server.export(BankAccount(), bank_interface(), object_id="acct-9")
        registry = registry_client(client)
        registry.bind("k", ref)
        looked = registry.lookup("k")
        assert looked == ref and looked is not ref


class TestFailures:
    def test_crashed_server(self, world):
        net, server, client = world
        ref = server.export(BankAccount(), bank_interface())
        net.crash("server")
        with pytest.raises(CommunicationError):
            client.call(ref, "get_balance", [])
        net.recover("server")
        assert client.call(ref, "get_balance", []) == 0.0
