"""Scatter-gather fan-out: differential, policy, and chaos coverage (PR 10).

Three layers:

- **differential** — the futures-based fan-out must put byte-identical
  frames on the wire as the blocking per-replica send it replaced, and the
  default ``all`` policy must raise the historical Cactus event sequence
  (one readyToSend and one invoke event per replica, base resultReturner
  completing from the first reply);
- **policy over real TCP** — quorum(2-of-3) completes without waiting on a
  slow straggler on *both* execution engines;
- **chaos** — crash and partition of the straggler mid-gather: the quorum
  still answers, every live replica applies exactly once, no lost replies.
"""

import time

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.cactus.composite import MicroProtocol
from repro.cactus.events import ORDER_FIRST
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_INVOKE_SUCCESS,
    EV_READY_TO_SEND,
)
from repro.core.request import Request
from repro.core.service import CqosDeployment
from repro.net.chaos import ChaosNetwork, FaultPlan
from repro.net.memory import InMemoryNetwork
from repro.net.tcp import TcpNetwork
from repro.qos import ActiveRep, PassiveRep, PassiveRepServer


class RecordingNetwork(InMemoryNetwork):
    """In-memory network that records every delivered request frame."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.frames: list[tuple[str, bytes]] = []
        self._recording = False

    def start_capture(self) -> None:
        self.frames = []
        self._recording = True

    def stop_capture(self) -> dict[str, list[bytes]]:
        self._recording = False
        by_host: dict[str, list[bytes]] = {}
        for address, data in self.frames:
            by_host.setdefault(address.split("/")[0], []).append(data)
        return by_host

    def _register(self, address, handler):
        def recording(data, _handler=handler, _address=address):
            if self._recording:
                self.frames.append((_address, bytes(data)))
            return _handler(data)

        super()._register(address, recording)


@pytest.fixture
def network():
    net = RecordingNetwork()
    yield net
    net.close()


class FanoutProbe(MicroProtocol):
    """Records the per-replica event stream at ORDER_FIRST (never halted)."""

    name = "FanoutProbe"

    def __init__(self):
        super().__init__()
        self.sends: list[int] = []
        self.successes: list[int] = []
        self.failures: list[int] = []

    def start(self) -> None:
        self.bind(EV_READY_TO_SEND, self.on_send, order=ORDER_FIRST)
        self.bind(EV_INVOKE_SUCCESS, self.on_success, order=ORDER_FIRST)
        self.bind(EV_INVOKE_FAILURE, self.on_failure, order=ORDER_FIRST)

    def on_send(self, occurrence) -> None:
        self.sends.append(occurrence.args[1])

    def on_success(self, occurrence) -> None:
        self.successes.append(occurrence.args[1])

    def on_failure(self, occurrence) -> None:
        self.failures.append(occurrence.args[1])


def _poll(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestWireDifferential:
    def test_async_sends_are_byte_identical_to_blocking_sends(
        self, platform, compiled_bank
    ):
        """``invoke_server_async`` must put exactly the frames on the wire
        that the blocking ``invoke_server`` it replaced would have sent.
        Middleware encoders carry per-connection state (GIOP message ids),
        so the differential drives two identically-constructed deployments
        — one per path — and compares their full frame streams."""

        def run_pass(pipelined: bool):
            network = RecordingNetwork()
            deployment = CqosDeployment(
                network, platform=platform, compiled=compiled_bank, request_timeout=10.0
            )
            try:
                deployment.add_replicas(
                    "acct", BankAccount, bank_interface(), replicas=3
                )
                stub = deployment.client_stub("acct", bank_interface())
                client_platform = stub._platform
                for server in (1, 2, 3):
                    client_platform.bind(server)  # warm outside the capture
                request = Request("acct", "get_balance", [])
                request.request_id = "diff-req-1"  # identical both passes
                network.start_capture()
                if pipelined:
                    values = [
                        client_platform.invoke_server_async(s, request).result(
                            timeout=5.0
                        )
                        for s in (1, 2, 3)
                    ]
                else:
                    values = [
                        client_platform.invoke_server(s, request) for s in (1, 2, 3)
                    ]
                return values, network.stop_capture()
            finally:
                deployment.close()

        sync_values, sync_frames = run_pass(pipelined=False)
        async_values, async_frames = run_pass(pipelined=True)
        assert sync_values == async_values == [0.0, 0.0, 0.0]
        assert set(sync_frames) == set(async_frames)
        for host, frames in sync_frames.items():
            assert async_frames[host] == frames, host

    def test_default_policy_preserves_event_semantics(self, deployment):
        """Under ``all`` (the default): one readyToSend per replica, one
        invoke event per reply, result from the first — the paper's
        ActiveRep observable behaviour, now over the pipelined fan-out."""
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        probe = FanoutProbe()
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), probe],
        )
        stub.set_balance(25.0)
        assert sorted(probe.sends) == [1, 2, 3]
        # The request completes on the first reply; the rest still gather.
        assert _poll(lambda: len(probe.successes) + len(probe.failures) == 3)
        assert probe.failures == []
        assert sorted(probe.successes) == [1, 2, 3]
        assert stub.get_balance() == 25.0


class SlowBank(BankAccount):
    """A replica servant that straggles on every operation."""

    def __init__(self, delay: float):
        super().__init__()
        self._delay = delay

    def get_balance(self) -> float:
        time.sleep(self._delay)
        return super().get_balance()

    def deposit(self, amount: float) -> float:
        time.sleep(self._delay)
        return super().deposit(amount)


def _straggler_factory(delay: float, straggler_replica: int = 3):
    built = [0]

    def factory():
        built[0] += 1
        if built[0] == straggler_replica:
            return SlowBank(delay)
        return BankAccount()

    return factory


def _servant_balance(skeleton) -> float:
    return skeleton._platform.invoke_servant(Request("acct", "get_balance", []))


class TestQuorumOverTcp:
    STRAGGLE_S = 1.5

    @pytest.mark.parametrize("engine", ["threaded", "async"])
    def test_quorum_two_of_three_returns_before_straggler(self, engine):
        deployment = CqosDeployment.over_tcp(
            "rmi", bank_compiled(), engine=engine, request_timeout=10.0
        )
        try:
            deployment.add_replicas(
                "acct",
                _straggler_factory(self.STRAGGLE_S),
                bank_interface(),
                replicas=3,
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [ActiveRep(gather_policy="quorum:2")],
            )
            started = time.monotonic()
            assert stub.get_balance() == 0.0
            elapsed = time.monotonic() - started
            assert elapsed < self.STRAGGLE_S, (
                f"quorum waited on the straggler: {elapsed:.2f}s"
            )
        finally:
            deployment.close()


@pytest.mark.chaos
class TestChaosFanout:
    STRAGGLE_S = 1.5

    def _deploy(self):
        network = ChaosNetwork(TcpNetwork(), FaultPlan(seed=10))
        deployment = CqosDeployment(
            network, platform="rmi", compiled=bank_compiled(), request_timeout=15.0
        )
        return network, deployment

    def test_straggler_crash_mid_gather_exactly_once(self):
        network, deployment = self._deploy()
        try:
            skeletons = deployment.add_replicas(
                "acct",
                _straggler_factory(self.STRAGGLE_S),
                bank_interface(),
                replicas=3,
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [ActiveRep(gather_policy="quorum:2")],
            )
            started = time.monotonic()
            stub.deposit(5.0)
            assert time.monotonic() - started < self.STRAGGLE_S
            # The straggler's branch is still in flight (abandoned locally);
            # crash its host before the reply can ever arrive.
            deployment.crash_replica("acct", 3)
            # Exactly-once on every live replica: 5.0, not 0.0 and not 10.0.
            assert _servant_balance(skeletons[0]) == 5.0
            assert _servant_balance(skeletons[1]) == 5.0
            # The quorum keeps answering with the straggler crashed: its
            # branch fails fast instead of blocking the gather.
            started = time.monotonic()
            assert stub.get_balance() == 5.0
            assert time.monotonic() - started < self.STRAGGLE_S
            deployment.recover_replica("acct", 3)
            stub.deposit(1.0)
            assert _servant_balance(skeletons[0]) == 6.0
            assert _servant_balance(skeletons[1]) == 6.0
        finally:
            deployment.close()

    def test_straggler_partition_mid_gather_heals(self):
        network, deployment = self._deploy()
        try:
            skeletons = deployment.add_replicas(
                "acct",
                _straggler_factory(self.STRAGGLE_S),
                bank_interface(),
                replicas=3,
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [ActiveRep(gather_policy="quorum:2")],
            )
            stub.deposit(2.0)  # warm bindings; straggler branch abandoned
            straggler_host = deployment.replica_host_name("acct", 3)
            network.partition([[straggler_host]])
            started = time.monotonic()
            stub.deposit(2.0)
            assert time.monotonic() - started < self.STRAGGLE_S
            assert _servant_balance(skeletons[0]) == 4.0
            assert _servant_balance(skeletons[1]) == 4.0
            network.heal()
            assert stub.get_balance() == 4.0
        finally:
            deployment.close()

    def test_passive_forwarding_skips_crashed_backup(self):
        network, deployment = self._deploy()
        try:
            skeletons = deployment.add_replicas(
                "acct",
                BankAccount,
                bank_interface(),
                replicas=3,
                server_micro_protocols=lambda: [PassiveRepServer()],
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [PassiveRep()],
            )
            stub.deposit(3.0)  # warm: primary executes, backups forwarded
            assert _poll(lambda: _servant_balance(skeletons[1]) == 3.0)
            assert _poll(lambda: _servant_balance(skeletons[2]) == 3.0)
            deployment.crash_replica("acct", 2)
            # The scattered forward to the crashed backup fails (swallowed:
            # recovery repairs it); the reply must NOT be lost on it.
            stub.deposit(4.0)
            assert _servant_balance(skeletons[0]) == 7.0  # primary, once
            assert _poll(lambda: _servant_balance(skeletons[2]) == 7.0)
        finally:
            deployment.close()
