"""Failure-injection tests: crashes, recovery, message loss, partitions."""

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.qos import ActiveRep, FirstSuccess, PassiveRep, PassiveRepServer, Retransmit
from repro.util.errors import CommunicationError, ServerFailedError


class TestCrashRecovery:
    def test_rebind_after_recovery(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        stub.set_balance(5.0)
        deployment.crash_replica("acct", 1)
        with pytest.raises(Exception):
            stub.get_balance()
        deployment.recover_replica("acct", 1)
        # The platform's bind() clears failure knowledge on retry paths; a
        # fresh call must succeed again (in-memory servers keep state).
        platform = stub._platform
        platform.bind(1)
        assert stub.get_balance() == 5.0

    def test_passive_rep_survives_primary_crash_mid_sequence(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [PassiveRepServer()],
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=lambda: [PassiveRep()]
        )
        for i in range(3):
            stub.deposit(1.0)
        deployment.crash_replica("acct", 1)
        for i in range(3):
            stub.deposit(1.0)
        assert stub.get_balance() == 6.0


class TestMessageLoss:
    def test_retransmit_recovers_from_loss(self, deployment, network):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [Retransmit(max_attempts=50)],
        )
        stub.set_balance(1.0)  # bind and warm up without loss
        network.set_loss(0.3, seed=7)
        try:
            for _ in range(10):
                assert stub.get_balance() == 1.0
        finally:
            network.set_loss(0.0)

    def test_without_retransmit_loss_surfaces(self, deployment, network):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        stub.set_balance(1.0)
        network.set_loss(1.0, seed=3)
        try:
            with pytest.raises(CommunicationError):
                stub.get_balance()
        finally:
            network.set_loss(0.0)

    def test_retransmit_gives_up_after_max_attempts(self, deployment, network):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [Retransmit(max_attempts=3)],
        )
        stub.set_balance(1.0)
        network.set_loss(1.0, seed=5)
        try:
            with pytest.raises(CommunicationError):
                stub.get_balance()
        finally:
            network.set_loss(0.0)

    def test_retransmit_does_not_retry_crashed_host(self, deployment, network):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=2)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                Retransmit(max_attempts=5),
                ActiveRep(),
                FirstSuccess(),
            ],
        )
        stub.set_balance(2.0)
        deployment.crash_replica("acct", 1)
        # ServerFailedError is not transient: failover logic (FirstSuccess
        # accepting replica 2) must answer promptly, not retry replica 1.
        assert stub.get_balance() == 2.0


class TestPartitions:
    def test_client_partitioned_from_servers(self, deployment, network):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct", bank_interface(), host_name="isolated-client"
        )
        stub.set_balance(3.0)
        network.partition([["isolated-client"], ["acct-server-1", "naming", "rmi-registry"]])
        with pytest.raises(CommunicationError):
            stub.get_balance()
        network.heal()
        assert stub.get_balance() == 3.0

    def test_active_rep_with_partitioned_minority(self, deployment, network):
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
            host_name="the-client",
        )
        stub.set_balance(4.0)
        # Cut replica 3 off from everyone else.
        network.partition(
            [
                ["the-client", "acct-server-1", "acct-server-2", "naming", "rmi-registry"],
                ["acct-server-3"],
            ]
        )
        assert stub.get_balance() == 4.0
        network.heal()
