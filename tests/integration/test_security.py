"""Integration tests for the security micro-protocols (§3.3)."""

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.qos import (
    AccessControl,
    ActiveRep,
    DesPrivacy,
    DesPrivacyServer,
    MajorityVote,
    SignedIntegrity,
    SignedIntegrityServer,
)
from repro.util.errors import IntegrityError, InvocationError

KEY = "0123456789abcdef"
OTHER_KEY = "fedcba9876543210"


class TestPrivacy:
    def test_roundtrip(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [DesPrivacyServer(key_hex=KEY)],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [DesPrivacy(key_hex=KEY)],
        )
        stub.set_balance(123.5)
        assert stub.get_balance() == 123.5

    def test_parameters_are_actually_encrypted(self, deployment, network):
        """Tap the network: the plaintext amount must not appear on the wire."""
        captured = []
        original = type(network)._deliver

        def tap(self, source, address, data):
            captured.append(bytes(data))
            return original(self, source, address, data)

        type(network)._deliver = tap
        try:
            deployment.add_replicas(
                "acct",
                BankAccount,
                bank_interface(),
                server_micro_protocols=lambda: [DesPrivacyServer(key_hex=KEY)],
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [DesPrivacy(key_hex=KEY)],
            )
            captured.clear()
            secret = 31337.25
            stub.set_balance(secret)
            import struct

            plain_double = struct.pack(">d", secret)
            assert not any(plain_double in frame for frame in captured)
        finally:
            type(network)._deliver = original

    def test_wrong_server_key_fails(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [DesPrivacyServer(key_hex=OTHER_KEY)],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [DesPrivacy(key_hex=KEY)],
        )
        with pytest.raises(Exception):
            stub.set_balance(1.0)

    def test_privacy_with_replication(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [DesPrivacyServer(key_hex=KEY)],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                ActiveRep(),
                MajorityVote(),
                DesPrivacy(key_hex=KEY),
            ],
        )
        stub.set_balance(9.75)
        assert stub.get_balance() == 9.75

    def test_unencrypted_client_against_privacy_server(self, deployment):
        """A client without DesPrivacy still works: the flag is absent."""
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [DesPrivacyServer(key_hex=KEY)],
        )
        stub = deployment.client_stub("acct", bank_interface())
        stub.set_balance(2.0)
        assert stub.get_balance() == 2.0


class TestIntegrity:
    def test_roundtrip(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [SignedIntegrityServer(key_hex=KEY)],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [SignedIntegrity(key_hex=KEY)],
        )
        stub.set_balance(7.0)
        assert stub.get_balance() == 7.0

    def test_unsigned_request_rejected(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [SignedIntegrityServer(key_hex=KEY)],
        )
        stub = deployment.client_stub("acct", bank_interface())  # no signing
        with pytest.raises((IntegrityError, InvocationError)):
            stub.set_balance(1.0)

    def test_wrong_key_rejected(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [SignedIntegrityServer(key_hex=KEY)],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [SignedIntegrity(key_hex=OTHER_KEY)],
        )
        with pytest.raises((IntegrityError, InvocationError)):
            stub.set_balance(1.0)

    def test_rejected_before_servant_runs(self, deployment):
        account = BankAccount()
        deployment.add_replicas(
            "acct",
            lambda: account,
            bank_interface(),
            server_micro_protocols=lambda: [SignedIntegrityServer(key_hex=KEY)],
        )
        stub = deployment.client_stub("acct", bank_interface())
        with pytest.raises((IntegrityError, InvocationError)):
            stub.set_balance(999.0)
        assert account.get_balance() == 0.0


class TestPrivacyPlusIntegrity:
    def test_layering(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                DesPrivacyServer(key_hex=KEY),
                SignedIntegrityServer(key_hex=KEY),
            ],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                DesPrivacy(key_hex=KEY),
                SignedIntegrity(key_hex=KEY),
            ],
        )
        stub.set_balance(55.5)
        assert stub.get_balance() == 55.5
        assert stub.deposit(4.5) == 60.0


class TestAccessControl:
    def acl_server(self):
        return [
            AccessControl(
                acl={"set_balance": ["boss"], "withdraw": ["boss", "teller"]},
                default_allow=True,
            )
        ]

    def test_allowed_client(self, deployment):
        deployment.add_replicas(
            "acct", BankAccount, bank_interface(), server_micro_protocols=self.acl_server
        )
        stub = deployment.client_stub("acct", bank_interface(), client_id="boss")
        stub.set_balance(10.0)
        assert stub.get_balance() == 10.0

    def test_denied_client(self, deployment):
        account = BankAccount()
        deployment.add_replicas(
            "acct",
            lambda: account,
            bank_interface(),
            server_micro_protocols=self.acl_server,
        )
        stub = deployment.client_stub("acct", bank_interface(), client_id="teller")
        with pytest.raises(InvocationError, match="AccessDenied"):
            stub.set_balance(10.0)
        assert account.get_balance() == 0.0  # servant untouched
        assert stub.get_balance() == 0.0  # default-allow operation still works

    def test_default_deny(self, deployment):
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [AccessControl(default_allow=False)],
        )
        stub = deployment.client_stub("acct", bank_interface(), client_id="anyone")
        with pytest.raises(InvocationError, match="AccessDenied"):
            stub.get_balance()
