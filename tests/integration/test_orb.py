"""Integration tests for the CORBA-like ORB (no CQoS involved)."""

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.net.memory import InMemoryNetwork
from repro.orb import (
    DynamicImplementation,
    Orb,
    make_static_stub_class,
    start_naming_service,
)
from repro.orb.naming import naming_client
from repro.util.errors import BindError, InvocationError


@pytest.fixture
def world():
    net = InMemoryNetwork()
    compiled = bank_compiled()
    naming_orb = Orb(net, "naming", compiled).start()
    start_naming_service(naming_orb)
    server_orb = Orb(net, "server", compiled).start()
    client_orb = Orb(net, "client", compiled)
    yield net, server_orb, client_orb
    for orb in (naming_orb, server_orb, client_orb):
        orb.shutdown()
    net.close()


def activate_account(server_orb, balance=0.0):
    poa = server_orb.create_poa("bank_poa")
    return poa.activate_object(
        "acct", BankAccount(balance=balance), interface=bank_interface()
    )


class TestStaticPath:
    def test_stub_invocations(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb, balance=10.0)
        stub = make_static_stub_class(bank_interface())(client_orb, ior)
        assert stub.get_balance() == 10.0
        stub.set_balance(25.0)
        assert stub.deposit(5.0) == 30.0
        assert stub.owner() == "alice"

    def test_user_exception_crosses_wire(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb)
        stub = make_static_stub_class(bank_interface())(client_orb, ior)
        exc_cls = bank_compiled().exceptions["bank::InsufficientFunds"]
        with pytest.raises(exc_cls) as excinfo:
            stub.withdraw(100.0)
        assert excinfo.value.requested == 100.0

    def test_system_exception_for_bad_types(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb)
        ref = client_orb.get_object(ior)
        # history() returns a list; passing a bogus arg type dies server-side.
        with pytest.raises(InvocationError):
            ref.invoke_op("set_balance", [1, 2, 3])  # wrong arity

    def test_unknown_object_key(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb)
        from repro.orb.ior import IOR

        bogus = IOR(ior.type_id, ior.address, "bank_poa|ghost")
        with pytest.raises(InvocationError, match="BindError"):
            client_orb.get_object(bogus).invoke_op("get_balance", [])


class TestDii:
    def test_dii_invocation(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb, balance=3.0)
        ref = client_orb.get_object(ior)
        request = ref._create_request("deposit")
        request.add_arg(2.0)
        request.invoke()
        assert request.return_value() == 5.0

    def test_dii_stores_exception(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb)
        ref = client_orb.get_object(ior)
        request = ref._create_request("withdraw").add_arg(9.9)
        request.invoke()
        assert request.exception() is not None
        with pytest.raises(Exception):
            request.return_value()

    def test_dii_conformance_check(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb)
        ref = client_orb.get_object(ior)
        from repro.util.errors import MarshalError

        request = ref._create_request("set_balance").add_arg("not a double")
        with pytest.raises(MarshalError):
            request.invoke()


class TestDsi:
    def test_dynamic_servant_sees_everything(self, world):
        _, server_orb, client_orb = world

        class Sink(DynamicImplementation):
            def __init__(self):
                self.seen = []

            def invoke(self, server_request):
                self.seen.append(
                    (server_request.operation, server_request.arguments(), server_request.context())
                )
                server_request.set_result("ack")

        sink = Sink()
        poa = server_orb.create_poa("dsi_poa")
        ior = poa.activate_object("sink", sink)
        ref = client_orb.get_object(ior)
        assert ref.invoke_op("anything_at_all", [1, 2], {"ctx": True}) == "ack"
        assert sink.seen == [("anything_at_all", [1, 2], {"ctx": True})]

    def test_incomplete_dsi_request_is_error(self, world):
        _, server_orb, client_orb = world

        class Lazy(DynamicImplementation):
            def invoke(self, server_request):
                pass  # never completes

        poa = server_orb.create_poa("lazy_poa")
        ior = poa.activate_object("lazy", Lazy())
        with pytest.raises(InvocationError, match="IncompleteRequest"):
            client_orb.get_object(ior).invoke_op("x", [])


class TestNaming:
    def test_bind_resolve_unbind(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb)
        naming = naming_client(client_orb)
        naming.bind("bank/acct", server_orb.object_to_string(ior))
        resolved = client_orb.string_to_object(naming.resolve("bank/acct"))
        assert resolved.invoke_op("get_balance", []) == 0.0
        assert naming.list_names("bank/") == ["bank/acct"]
        naming.unbind("bank/acct")
        assert naming.list_names("") == []

    def test_double_bind_rejected(self, world):
        _, server_orb, client_orb = world
        ior_text = server_orb.object_to_string(activate_account(server_orb))
        naming = naming_client(client_orb)
        naming.bind("x", ior_text)
        from repro.orb.naming import naming_idl

        with pytest.raises(naming_idl().exceptions["cos::AlreadyBound"]):
            naming.bind("x", ior_text)
        naming.rebind("x", ior_text)  # rebind always allowed

    def test_resolve_missing(self, world):
        _, _, client_orb = world
        from repro.orb.naming import naming_idl

        with pytest.raises(naming_idl().exceptions["cos::NotFound"]):
            naming_client(client_orb).resolve("ghost")


class TestLifecycle:
    def test_oneway_does_not_block_on_servant(self, world):
        import threading
        import time

        _, server_orb, client_orb = world
        gate = threading.Event()

        class Slow(DynamicImplementation):
            def invoke(self, server_request):
                gate.wait(5.0)
                server_request.set_result(None)

        poa = server_orb.create_poa("slow_poa")
        ior = poa.activate_object("slow", Slow())
        ref = client_orb.get_object(ior)
        start = time.monotonic()
        client_orb.invoke(ior, "fire", [], {}, response_expected=False)
        elapsed = time.monotonic() - start
        gate.set()
        assert elapsed < 1.0

    def test_deactivate(self, world):
        _, server_orb, client_orb = world
        ior = activate_account(server_orb)
        poa = server_orb.find_poa("bank_poa")
        poa.deactivate_object("acct")
        with pytest.raises(InvocationError):
            client_orb.get_object(ior).invoke_op("get_balance", [])

    def test_duplicate_poa_rejected(self, world):
        _, server_orb, _ = world
        server_orb.create_poa("p")
        with pytest.raises(Exception):
            server_orb.create_poa("p")

    def test_duplicate_activation_rejected(self, world):
        _, server_orb, _ = world
        activate_account(server_orb)
        poa = server_orb.find_poa("bank_poa")
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            poa.activate_object("acct", BankAccount(), interface=bank_interface())
