"""Stress: sustained mixed workloads across composed attributes.

Shorter than a real soak but long enough to shake out ordering races,
pool exhaustion, and cleanup leaks: concurrent clients, full attribute
stack, and a mid-run replica crash.
"""

import threading

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.qos import (
    ActiveRep,
    DesPrivacy,
    DesPrivacyServer,
    FirstSuccess,
    SignedIntegrity,
    SignedIntegrityServer,
    TotalOrder,
)
from repro.core.request import Request

KEY = "0123456789abcdef"


def security_client():
    return [DesPrivacy(key_hex=KEY), SignedIntegrity(key_hex=KEY)]


class TestStress:
    def test_sustained_full_stack_load(self, deployment):
        """3 replicas x total order x privacy x integrity, 4 concurrent
        clients, 25 operations each; replicas must converge."""
        skeletons = deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [
                TotalOrder(),
                DesPrivacyServer(key_hex=KEY),
                SignedIntegrityServer(key_hex=KEY),
            ],
        )
        errors = []

        def worker(seed):
            try:
                stub = deployment.client_stub(
                    "acct",
                    bank_interface(),
                    client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()]
                    + security_client(),
                )
                for i in range(25):
                    if i % 5 == 0:
                        stub.set_balance(float(seed * 1000 + i))
                    else:
                        stub.deposit(1.0)
                    stub.get_balance()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors[:3]

        import time

        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            balances = [
                s._platform.invoke_servant(Request("acct", "get_balance", []))
                for s in skeletons
            ]
            if len(set(balances)) == 1:
                break
            time.sleep(0.05)
        assert len(set(balances)) == 1, balances

    def test_crash_during_load(self, deployment):
        """A replica dies mid-run; FirstSuccess clients never notice."""
        deployment.add_replicas(
            "acct", BankAccount, bank_interface(), replicas=3
        )
        errors = []
        progressed = threading.Event()

        def worker():
            try:
                stub = deployment.client_stub(
                    "acct",
                    bank_interface(),
                    client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
                )
                for i in range(40):
                    stub.deposit(1.0)
                    if i == 10:
                        progressed.set()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        assert progressed.wait(60)
        deployment.crash_replica("acct", 2)
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors[:3]

    def test_repeated_deploy_teardown(self, network, platform, compiled_bank):
        """Deployment construction/destruction must not leak registrations."""
        from repro.core.service import CqosDeployment
        from repro.net.memory import InMemoryNetwork

        for _ in range(5):
            net = InMemoryNetwork()
            deployment = CqosDeployment(
                net, platform=platform, compiled=compiled_bank, request_timeout=10.0
            )
            deployment.add_replicas("acct", BankAccount, bank_interface())
            stub = deployment.client_stub("acct", bank_interface())
            stub.set_balance(1.0)
            assert stub.get_balance() == 1.0
            deployment.close()
