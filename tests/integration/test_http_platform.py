"""Integration tests for the HTTP platform itself (no CQoS involved)."""

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.http import (
    HttpClient,
    HttpObjectServer,
    HttpRegistryClient,
    start_http_registry,
)
from repro.http.client import make_http_stub_class
from repro.http.message import (
    HttpRequest,
    HttpResponse,
    format_request,
    format_response,
    parse_request,
    parse_response,
    piggyback_headers,
)
from repro.net.memory import InMemoryNetwork
from repro.util.errors import InvocationError, MarshalError


class TestWireFormat:
    def test_request_roundtrip(self):
        request = HttpRequest(
            method="POST",
            path="/objects/acct/deposit",
            headers={"x-test": "1"},
            body=b"\x00\x01binary",
        )
        decoded = parse_request(format_request(request))
        assert decoded.method == "POST"
        assert decoded.path == "/objects/acct/deposit"
        assert decoded.headers["x-test"] == "1"
        assert decoded.body == b"\x00\x01binary"

    def test_response_roundtrip(self):
        response = HttpResponse(status=200, body=b"payload")
        decoded = parse_response(format_response(response))
        assert decoded.status == 200 and decoded.body == b"payload"

    def test_piggyback_headers_roundtrip(self):
        piggyback = {"cqos_priority": 8, "cqos_client": "alice", "blob": b"\xff"}
        request = HttpRequest("POST", "/x", headers=piggyback_headers(piggyback))
        assert parse_request(format_request(request)).piggyback() == piggyback

    def test_content_length_enforced(self):
        frame = format_request(HttpRequest("POST", "/x", body=b"12345"))
        with pytest.raises(MarshalError, match="content-length"):
            parse_request(frame[:-1])

    def test_malformed_request_line(self):
        with pytest.raises(MarshalError):
            parse_request(b"GARBAGE\r\ncontent-length: 0\r\n\r\n")

    def test_missing_terminator(self):
        with pytest.raises(MarshalError, match="terminator"):
            parse_request(b"POST /x HTTP/1.0\r\nfoo: bar")


@pytest.fixture
def http_world():
    net = InMemoryNetwork()
    compiled = bank_compiled()
    registry_server = HttpObjectServer(net, "http-registry", compiled).start()
    registry = start_http_registry(registry_server)
    server = HttpObjectServer(net, "server", compiled).start()
    client = HttpClient(net, "client")
    registry_client = HttpRegistryClient(client)
    yield net, server, client, registry_client
    client.close()
    server.shutdown()
    registry_server.shutdown()
    net.close()


class TestObjectServer:
    def test_typed_mount_and_stub(self, http_world):
        _, server, client, _ = http_world
        server.mount("acct", BankAccount(balance=4.0), bank_interface())
        stub = make_http_stub_class(bank_interface())(client, server.endpoint_address, "acct")
        assert stub.get_balance() == 4.0
        assert stub.deposit(1.0) == 5.0

    def test_application_exception(self, http_world):
        _, server, client, _ = http_world
        server.mount("acct", BankAccount(), bank_interface())
        stub = make_http_stub_class(bank_interface())(client, server.endpoint_address, "acct")
        with pytest.raises(bank_compiled().exceptions["bank::InsufficientFunds"]):
            stub.withdraw(1.0)

    def test_unknown_object_404(self, http_world):
        _, server, client, _ = http_world
        with pytest.raises(InvocationError, match="NotFound"):
            client.post(server.endpoint_address, "ghost", "op", [])

    def test_unknown_operation_500(self, http_world):
        _, server, client, _ = http_world
        server.mount("acct", BankAccount(), bank_interface())
        with pytest.raises(InvocationError):
            client.post(server.endpoint_address, "acct", "no_such_op", [])

    def test_generic_mount_sees_context(self, http_world):
        _, server, client, _ = http_world

        class Generic:
            def invoke(self, method, arguments, context):
                return {"m": method, "a": arguments, "c": context}

        server.mount_generic("gen", Generic())
        out = client.post(
            server.endpoint_address, "gen", "whatever", [1], piggyback={"p": 2}
        )
        assert out == {"m": "whatever", "a": [1], "c": {"p": 2}}

    def test_duplicate_mount_rejected(self, http_world):
        _, server, _, _ = http_world
        server.mount("acct", BankAccount(), bank_interface())
        from repro.util.errors import BindError

        with pytest.raises(BindError):
            server.mount("acct", BankAccount(), bank_interface())


class TestHttpRegistry:
    def test_bind_lookup_list(self, http_world):
        _, server, _, registry = http_world
        registry.bind("acct/replica-1", server.endpoint_address, "acct")
        assert registry.lookup("acct/replica-1") == (server.endpoint_address, "acct")
        assert registry.list("acct/") == ["acct/replica-1"]
        registry.unbind("acct/replica-1")
        with pytest.raises(InvocationError):
            registry.lookup("acct/replica-1")

    def test_double_bind(self, http_world):
        _, server, _, registry = http_world
        registry.bind("n", server.endpoint_address, "a")
        with pytest.raises(InvocationError):
            registry.bind("n", server.endpoint_address, "a")
        registry.rebind("n", server.endpoint_address, "b")
        assert registry.lookup("n")[1] == "b"
