"""End-to-end smoke of the configuration matrix (paper §3.5).

The unit tests enumerate and validate all 192 combinations; here a
representative sample actually *runs*: every fault-tolerance combination,
with and without the full security bundle and a timeliness protocol, on
both platforms — the paper's claim that the attribute families compose "in
any combination", executed.
"""

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.cactus.config import build_micro_protocols, MicroProtocolSpec
from repro.qos.combinations import (
    FT_COMBINATIONS,
    CLIENT_SIDE,
    SERVER_SIDE,
    Combination,
    validate_configuration,
)
from repro.qos.timeliness import HIGH_PRIORITY

KEY = "0123456789abcdef"

#: Parameters for protocols that require them.
PROTOCOL_PARAMS = {
    "DesPrivacy": {"key_hex": KEY},
    "DesPrivacyServer": {"key_hex": KEY},
    "SignedIntegrity": {"key_hex": KEY},
    "SignedIntegrityServer": {"key_hex": KEY},
    "TimedSched": {"period": 0.05, "high_rate_threshold": 100},  # permissive
}

SAMPLE = [
    Combination(ft, security, timeliness)
    for ft in ("none", *FT_COMBINATIONS)
    for security, timeliness in (
        ((), None),
        (("privacy", "integrity", "access"), "priority"),
        (("integrity",), "queued"),
    )
]


def _build(names):
    specs = [MicroProtocolSpec(name, PROTOCOL_PARAMS.get(name, {})) for name in names]
    return build_micro_protocols(specs)


@pytest.mark.parametrize("combo", SAMPLE, ids=[c.label() for c in SAMPLE])
def test_combination_runs(deployment, combo):
    client_names = combo.client_protocols()
    server_names = combo.server_protocols()
    validate_configuration(client_names, server_names)

    replicas = 3 if combo.fault_tolerance != "none" else 1
    deployment.add_replicas(
        "acct",
        BankAccount,
        bank_interface(),
        replicas=replicas,
        server_micro_protocols=(lambda: _build(server_names)) if server_names else "with_base",
        priority_policy=lambda request: HIGH_PRIORITY,
    )
    stub = deployment.client_stub(
        "acct",
        bank_interface(),
        client_micro_protocols=(lambda: _build(client_names)) if client_names else "with_base",
        client_id="matrix-client",
    )
    stub.set_balance(10.0)
    stub.deposit(2.5)
    assert stub.get_balance() == 12.5
