"""Sharded object space end-to-end (PR 8): routing, rebalancing, chaos.

The fast half runs on every platform (CORBA / RMI / HTTP share the routing
kernel); the chaos-marked half injects crashes and partitions during live
rebalancing and proves the zero-drop, exactly-once discipline with the
passive-replication QoS stack composed on top of the ring.
"""

from __future__ import annotations

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.core.routing import Placement
from repro.core.skeleton import CONTROL_OPERATION
from repro.util.errors import ShardMovedError


@pytest.fixture
def bank_iface():
    return bank_interface()


def make_space(deployment, groups=None, **kwargs):
    return deployment.shard_space(groups or {"a": 1, "b": 1}, **kwargs)


def place_objects(space, iface, count=6, prefix="obj"):
    ids = [f"{prefix}-{k}" for k in range(count)]
    for oid in ids:
        space.add_object(oid, BankAccount, iface)
    return ids


class TestShardSpace:
    def test_objects_route_and_serve(self, deployment, bank_iface):
        space = make_space(deployment)
        ids = place_objects(space, bank_iface, count=4)
        for i, oid in enumerate(ids):
            stub = space.client_stub(oid, bank_iface)
            stub.set_balance(float(i * 10))
            assert stub.get_balance() == float(i * 10)
        # Every object landed on exactly one live member of the fleet.
        view = space.view()
        for oid in ids:
            assigns = view.assignments(oid)
            assert len(assigns) == 1
            assert assigns[0][1] in view.members()

    def test_add_group_live_and_stale_stub_survives(self, deployment, bank_iface):
        space = make_space(deployment)
        ids = place_objects(space, bank_iface)
        stubs = {oid: space.client_stub(oid, bank_iface) for oid in ids}
        for i, oid in enumerate(ids):
            stubs[oid].set_balance(float(i))
        before = space.view()

        space.add_group("c", 1)

        after = space.view()
        assert after.version == before.version + 1
        moved = [
            oid for oid in ids if before.assignments(oid) != after.assignments(oid)
        ]
        assert moved, "adding a group should capture some arcs"
        # The STALE stubs (bound before the rebalance) keep working: a
        # retired mount answers ShardMovedError, the kernel re-resolves,
        # and state moved with the servant.
        for i, oid in enumerate(ids):
            assert stubs[oid].get_balance() == float(i)

    def test_client_view_version_is_monotonic(self, deployment, bank_iface):
        space = make_space(deployment)
        (oid,) = place_objects(space, bank_iface, count=1)
        router = space.client_router()
        stub = deployment.client_stub(oid, bank_iface, router=router)
        versions = []
        stub.set_balance(1.0)
        versions.append(router.view().version)
        space.add_group("c", 1)
        stub.set_balance(2.0)  # pulls the delta via reply piggyback
        versions.append(router.view().version)
        space.add_group("d", 1)
        assert stub.get_balance() == 2.0
        versions.append(router.view().version)
        assert versions == sorted(versions)
        assert versions[-1] == space.view().version

    def test_retired_mounts_reject_stale_invocations(self, deployment, bank_iface):
        space = make_space(deployment)
        ids = place_objects(space, bank_iface)
        space.add_group("c", 1)
        retired = [m for mounts in space._retired.values() for m in mounts]
        assert retired, "the group add should have retired at least one mount"
        for mount in retired:
            assert mount.skeleton.retired
            # A stale-view invocation reaching the old owner must NOT
            # execute: the wire-safe redirect error comes back instead.
            with pytest.raises(ShardMovedError):
                mount.skeleton.handle_invocation("get_balance", [], {})
            # The control plane stays reachable on retired mounts (the
            # failure detector may still be probing them).
            assert mount.skeleton.handle_invocation(
                CONTROL_OPERATION, ["ping", 0, {}], {}
            ) is True

    def test_remove_group_moves_objects_clockwise(self, deployment, bank_iface):
        space = make_space(deployment, groups={"a": 1, "b": 1, "c": 1})
        ids = place_objects(space, bank_iface)
        stubs = {oid: space.client_stub(oid, bank_iface) for oid in ids}
        for i, oid in enumerate(ids):
            stubs[oid].set_balance(float(i + 100))
        space.remove_group("b")
        view = space.view()
        assert all(group.name != "b" for group in view.groups)
        for i, oid in enumerate(ids):
            assert view.assignments(oid)[0][1] in view.members()
            assert stubs[oid].get_balance() == float(i + 100)

    def test_set_placement_scales_replication_live(self, deployment, bank_iface):
        space = make_space(deployment, groups={"a": 1, "b": 1, "c": 1})
        (oid,) = place_objects(space, bank_iface, count=1)
        stub = space.client_stub(oid, bank_iface)
        stub.set_balance(7.0)
        space.set_placement(
            oid, Placement(replication_factor=2, policy="spread")
        )
        view = space.view()
        assigns = view.assignments(oid)
        assert [logical for logical, _ in assigns] == [1, 2]
        assert len({member for _, member in assigns}) == 2
        # Fresh stub sees two replicas; the moved/copied primary kept state.
        fresh = space.client_stub(oid, bank_iface)
        assert fresh.get_balance() == 7.0
        assert stub.get_balance() == 7.0

    def test_membership_change_and_reinstatement(self, deployment, bank_iface):
        space = make_space(deployment, groups={"a": 1, "b": 1, "c": 1})
        oid = "obj-0"
        # Two replicas kept consistent by primary->backup forwarding, so a
        # membership-driven failover serves the same state.
        space.add_object(
            oid,
            BankAccount,
            bank_iface,
            placement=Placement(replication_factor=2, policy="spread"),
            server_micro_protocols=["PassiveRepServer"],
        )
        router = space.client_router()
        stub = deployment.client_stub(oid, bank_iface, router=router)
        stub.set_balance(3.0)

        primary_logical, primary_member = space.view().assignments(oid)[0]
        v_before = space.view().version
        space.apply_membership_change({primary_member})
        assert space.view().version == v_before + 1

        # The next invocation pulls the membership delta; the client view
        # then excludes the failed member's logical replica.
        assert stub.get_balance() == 3.0
        assert router.view().version == space.view().version
        assert primary_logical not in router.live_replicas(oid)

        # Recovery: the detector reports the member healthy again; the
        # primary is reinstated through the ring with no remount.
        space.apply_membership_change(set())
        assert stub.get_balance() == 3.0
        assert primary_logical in router.live_replicas(oid)
        assert router.view().version == space.view().version


@pytest.mark.chaos
class TestShardChaos:
    """Crash + partition during rebalance: nothing lost, nothing doubled."""

    @pytest.fixture
    def chaos_deployment(self, network, compiled_bank):
        from repro.core.service import CqosDeployment

        dep = CqosDeployment(
            network, platform="rmi", compiled=compiled_bank, request_timeout=10.0
        )
        yield dep
        dep.close()

    def _replicated_object(self, space, iface, oid):
        space.add_object(
            oid,
            BankAccount,
            iface,
            placement=Placement(replication_factor=2, policy="spread"),
            server_micro_protocols=["PassiveRepServer"],
        )

    def test_primary_crash_mid_traffic_is_exactly_once(
        self, chaos_deployment, bank_iface
    ):
        space = make_space(chaos_deployment, groups={"a": 1, "b": 1, "c": 1})
        oid = "acct-crash"
        self._replicated_object(space, bank_iface, oid)
        stub = space.client_stub(
            oid, bank_iface, client_micro_protocols=["PassiveRep"]
        )
        deposits = 0
        for _ in range(10):
            stub.deposit(1.0)
            deposits += 1
        _, primary_member = space.view().assignments(oid)[0]
        space.crash_member(primary_member)
        for _ in range(10):
            stub.deposit(1.0)  # fails over to the forwarded-to backup
            deposits += 1
        # Forwarding kept the backup consistent; duplicate suppression kept
        # retried requests from double-applying: the balance is exact.
        assert stub.get_balance() == float(deposits)

    def test_partition_during_rebalance_drops_nothing(
        self, chaos_deployment, bank_iface, network
    ):
        space = make_space(chaos_deployment, groups={"a": 1, "b": 1, "c": 1})
        oid = "acct-part"
        self._replicated_object(space, bank_iface, oid)
        stub = space.client_stub(
            oid, bank_iface, client_micro_protocols=["PassiveRep"]
        )
        versions = []

        def deposit_batch(n):
            for _ in range(n):
                stub.deposit(1.0)
            versions.append(space.view().version)

        deposit_batch(8)
        # Rebalance while the backup is partitioned away: primary-side
        # forwards to it are lost (repair is recovery's job), but not one
        # client request is.
        _, backup_member = space.view().assignments(oid)[1]
        network.partition([[space.member_host(backup_member)]])
        space.add_group("d", 1)
        deposit_batch(8)
        network.heal()
        deposit_batch(8)
        assert stub.get_balance() == 24.0
        assert versions == sorted(versions)
        assert space.view().version >= 2

    def test_crash_during_rebalance_with_plain_clients(
        self, chaos_deployment, bank_iface
    ):
        """Crashing a member that hosts none of the traffic mid-rebalance
        must not disturb the handoff of the objects that do move."""
        space = make_space(chaos_deployment, groups={"a": 1, "b": 1})
        ids = place_objects(space, bank_iface, count=6, prefix="acct")
        stubs = {oid: space.client_stub(oid, bank_iface) for oid in ids}
        issued = {oid: 0 for oid in ids}
        for oid in ids:
            stubs[oid].deposit(1.0)
            issued[oid] += 1
        space.add_group("c", 1)
        # Crash a member no surviving assignment points at (if any).
        view = space.view()
        used = {member for oid in ids for _, member in view.assignments(oid)}
        idle = [m for m in view.members() if m not in used]
        if idle:
            space.crash_member(idle[0])
        for oid in ids:
            stubs[oid].deposit(1.0)
            issued[oid] += 1
        for oid in ids:
            assert stubs[oid].get_balance() == float(issued[oid])
