"""Integration tests for the extension micro-protocols package."""

import threading
import time

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.qos.extensions import AdmissionControl, ClientCache, LoadBalance, LoadReporter
from repro.qos.extensions.admission import AdmissionRejectedError, RateLimiter
from repro.qos.timeliness import HIGH_PRIORITY, LOW_PRIORITY
from repro.util.clock import VirtualClock


class TestLoadBalance:
    def test_spreads_across_replicas(self, deployment):
        counters = []

        class CountingAccount(BankAccount):
            def __init__(self):
                super().__init__()
                self.calls = 0
                counters.append(self)

            def get_balance(self):
                self.calls += 1
                return super().get_balance()

        deployment.add_replicas(
            "acct",
            CountingAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [LoadReporter()],
        )
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [LoadBalance(poll_interval=10.0)],
        )
        for _ in range(30):
            stub.get_balance()
        # The optimistic counter spreads a burst: every replica sees work.
        assert all(account.calls > 0 for account in counters), [
            account.calls for account in counters
        ]

    def test_prefers_idle_replica(self, deployment):
        gate = threading.Event()
        entered = threading.Event()
        instances = []

        class SlowFirst(BankAccount):
            def __init__(self):
                super().__init__()
                instances.append(self)

            def owner(self):
                # Only replica 1's servant blocks.
                if instances.index(self) == 0:
                    entered.set()
                    gate.wait(10.0)
                return super().owner()

        deployment.add_replicas(
            "acct",
            SlowFirst,
            bank_interface(),
            replicas=2,
            server_micro_protocols=lambda: [LoadReporter()],
        )
        blocker = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [LoadBalance(poll_interval=0.0)],
        )
        thread = threading.Thread(target=blocker.owner)
        thread.start()
        assert entered.wait(10.0)
        try:
            light = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [LoadBalance(poll_interval=0.0)],
            )
            # Replica 1 has one in-flight request; the balancer must pick 2.
            assert light.get_balance() == 0.0
            client = light.cactus_client
            balancer: LoadBalance = client.micro_protocol("LoadBalance")
            assert balancer.known_loads()[1] >= 1
        finally:
            gate.set()
            thread.join(10.0)


class TestClientCache:
    def test_reads_served_locally(self, deployment, network):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ClientCache(read_operations=["get_balance"])],
        )
        stub.set_balance(5.0)
        assert stub.get_balance() == 5.0  # miss, populates
        before = network.message_count
        for _ in range(10):
            assert stub.get_balance() == 5.0
        assert network.message_count == before  # all hits, zero messages
        cache: ClientCache = stub.cactus_client.micro_protocol("ClientCache")
        assert cache.hits == 10

    def test_writes_invalidate(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [ClientCache(read_operations=["get_balance"])],
        )
        stub.set_balance(5.0)
        assert stub.get_balance() == 5.0
        stub.deposit(1.0)  # write clears the cache
        assert stub.get_balance() == 6.0  # fresh read, correct value

    def test_ttl_expiry(self, deployment):
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda: [
                ClientCache(read_operations=["get_balance"], ttl=0.05)
            ],
        )
        stub.set_balance(5.0)
        stub.get_balance()
        # Another client writes behind this client's back.
        other = deployment.client_stub("acct", bank_interface())
        other.set_balance(9.0)
        assert stub.get_balance() == 5.0  # stale but within ttl
        time.sleep(0.08)
        assert stub.get_balance() == 9.0  # ttl expired -> real read


class TestAdmissionControl:
    def test_rate_limiter_unit(self):
        clock = VirtualClock()
        limiter = RateLimiter(rate=10.0, capacity=2.0, clock=clock)
        assert limiter.try_acquire()
        assert limiter.try_acquire()
        assert not limiter.try_acquire()  # bucket empty
        clock.advance(0.1)  # refills one token
        assert limiter.try_acquire()
        assert not limiter.try_acquire()

    def test_rate_limiter_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0, capacity=1, clock=VirtualClock())

    def test_concurrency_shedding(self, deployment):
        gate = threading.Event()
        entered = threading.Event()

        class Slow(BankAccount):
            def owner(self):
                entered.set()
                gate.wait(10.0)
                return super().owner()

        deployment.add_replicas(
            "acct",
            Slow,
            bank_interface(),
            server_micro_protocols=lambda: [
                AdmissionControl(max_concurrent=1, exempt_high_priority=False)
            ],
        )
        first = deployment.client_stub("acct", bank_interface())
        thread = threading.Thread(target=first.owner)
        thread.start()
        assert entered.wait(10.0)
        try:
            second = deployment.client_stub("acct", bank_interface())
            # The shed rehydrates to the real wire-safe error client-side.
            with pytest.raises(AdmissionRejectedError, match="admission"):
                second.get_balance()
        finally:
            gate.set()
            thread.join(10.0)
        # Capacity released: subsequent requests are admitted again.
        third = deployment.client_stub("acct", bank_interface())
        assert third.get_balance() == 0.0

    def test_high_priority_exempt(self, deployment):
        def policy(request):
            return HIGH_PRIORITY if request.client_id == "vip" else LOW_PRIORITY

        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                AdmissionControl(max_rate=0.000001, burst=0.000001)
            ],
            priority_policy=policy,
        )
        vip = deployment.client_stub("acct", bank_interface(), client_id="vip")
        pleb = deployment.client_stub("acct", bank_interface(), client_id="pleb")
        assert vip.get_balance() == 0.0  # exempt from the empty bucket
        with pytest.raises(AdmissionRejectedError, match="admission"):
            pleb.get_balance()
