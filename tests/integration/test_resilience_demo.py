"""The resilience suite end-to-end demo (the PR's acceptance scenario).

One client composite stacks RetryBackoff + CircuitBreaker + Degrade (plus a
generous DeadlineBudget) over ``ChaosNetwork(TcpNetwork())`` with 10%
message loss, injected latency, and a full crash/recover cycle of the only
server — and sustains >= 99% successful (possibly stale-marked) replies.
A bare stub under the *same* fault-plan seed visibly fails.

A second scenario exercises the deadline leg: a tight budget against the
chaos latency makes the server's DeadlineShed refuse expired work, and the
shed surfaces client-side as the real DeadlineExceededError (rehydrated by
the platform adapter), where Degrade converts it into a stale serve.

Marked ``chaos`` so CI schedules it with the fault-injection job.
"""

import time

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.core.service import CqosDeployment
from repro.net.chaos import ChaosNetwork, FaultPlan
from repro.net.tcp import TcpNetwork
from repro.qos import (
    CircuitBreaker,
    DeadlineBudget,
    DeadlineShed,
    Degrade,
    RetryBackoff,
)
from repro.util.errors import CommunicationError, DeadlineExceededError

pytestmark = pytest.mark.chaos

#: The one seed both the resilient and the bare run replay.
SEED = 20010101

def chaos_plan(**overrides):
    base = dict(
        seed=SEED,
        loss=0.10,
        latency=0.001,
        jitter=0.003,
        # Bootstrap traffic (naming lookup) stays clean; the application
        # links burn.
        exempt_hosts=frozenset({"naming", "rmi-registry"}),
    )
    base.update(overrides)
    return FaultPlan(**base)


def make_deployment(plan, server_micro_protocols="with_base"):
    net = ChaosNetwork(TcpNetwork(), plan)
    dep = CqosDeployment(
        net, platform="corba", compiled=bank_compiled(), request_timeout=15.0
    )
    dep.add_replicas(
        "acct",
        BankAccount,
        bank_interface(),
        server_micro_protocols=server_micro_protocols,
    )
    return net, dep


class TestResilienceDemo:
    def test_resilient_stack_sustains_99_percent_under_chaos(self):
        net, dep = make_deployment(chaos_plan())
        breaker = CircuitBreaker(failure_threshold=5, open_duration=0.3)
        retry = RetryBackoff(
            max_attempts=6, base_delay=0.002, max_delay=0.02, seed=7
        )
        degrade = Degrade()
        try:
            stub = dep.client_stub(
                "acct",
                bank_interface(),
                # Breaker before retry: its failure recorder runs even when
                # the retry handler halts the occurrence (same-order peers).
                client_micro_protocols=lambda: [
                    DeadlineBudget(5.0),
                    breaker,
                    retry,
                    degrade,
                ],
            )
            stub.set_balance(100.0)  # warm-up write (also the known-good seed)
            outcomes = []

            def read():
                try:
                    outcomes.append(("ok", stub.get_balance()))
                except Exception as exc:  # noqa: BLE001 - tallied below
                    outcomes.append(("err", exc))

            for _ in range(120):
                read()
            # Total failure: the only server crashes mid-run.
            dep.crash_replica("acct", 1)
            for _ in range(40):
                read()
            # Recovery: the breaker's half-open probe rebinds and closes.
            dep.recover_replica("acct", 1)
            time.sleep(0.35)  # let open_duration elapse
            for _ in range(40):
                read()

            successes = [o for o in outcomes if o[0] == "ok"]
            rate = len(successes) / len(outcomes)
            assert rate >= 0.99, f"success rate {rate:.3f} under chaos"
            assert all(value == 100.0 for _, value in successes)

            # The suite demonstrably did its job (not a quiet network):
            assert net.stats()["lost"] > 0
            assert retry.stats().get("retries", 0) > 0, "retries absorbed loss"
            breaker_stats = breaker.stats()
            assert breaker_stats.get("trips", 0) >= 1, "breaker tripped on crash"
            assert breaker_stats.get("rejected", 0) >= 1, "open breaker failed fast"
            assert breaker_stats.get("recoveries", 0) >= 1, "probe closed the breaker"
            assert degrade.stats().get("stale_serves", 0) >= 1, "outage served stale"
            assert breaker.state(1) == "closed"
        finally:
            dep.close()

    def test_bare_stub_fails_under_the_same_seed(self):
        net, dep = make_deployment(chaos_plan())
        try:
            stub = dep.client_stub("acct", bank_interface())
            stub._platform.bind(1)
            failures = 0
            for _ in range(60):
                try:
                    stub.get_balance()
                except CommunicationError:
                    failures += 1
                except Exception:
                    failures += 1
            # ~10% loss per message, two messages per call: the bare stub is
            # nowhere near the resilient stack's 99%.
            assert failures >= 5
            assert (60 - failures) / 60 < 0.99
        finally:
            dep.close()

    def test_deadline_budget_with_server_side_shedding(self):
        shed = DeadlineShed()
        # Heavier latency so deadlines genuinely expire in-flight.
        net, dep = make_deployment(
            chaos_plan(loss=0.0, latency=0.002, jitter=0.006),
            server_micro_protocols=lambda: [shed],
        )
        degrade = Degrade()
        budget = DeadlineBudget(0.006)
        try:
            warm = dep.client_stub("acct", bank_interface())
            warm.set_balance(42.0)
            stub = dep.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [budget, degrade],
            )
            outcomes = {"fresh": 0, "stale": 0, "deadline": 0}
            for _ in range(80):
                try:
                    before = degrade.stats().get("stale_serves", 0)
                    value = stub.get_balance()
                    assert value == 42.0
                    after = degrade.stats().get("stale_serves", 0)
                    outcomes["stale" if after > before else "fresh"] += 1
                except DeadlineExceededError:
                    outcomes["deadline"] += 1  # before any known-good existed
            # The server refused expired work ...
            assert shed.stats().get("sheds", 0) >= 1, f"no sheds: {outcomes}"
            # ... and some requests made it within budget.
            assert outcomes["fresh"] >= 1, f"budget never met: {outcomes}"
            # Degrade turned (most) sheds into stale serves.
            assert outcomes["stale"] >= 1, f"no stale serves: {outcomes}"
        finally:
            dep.close()
