"""Shared fixtures: networks, compiled IDL, and CQoS deployments."""

from __future__ import annotations

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.core.service import CqosDeployment
from repro.net.memory import InMemoryNetwork


@pytest.fixture
def network():
    """A fresh zero-latency in-memory network."""
    net = InMemoryNetwork()
    yield net
    net.close()


@pytest.fixture
def compiled_bank():
    return bank_compiled()


@pytest.fixture
def bank_iface():
    return bank_interface()


@pytest.fixture(params=["corba", "rmi", "http"])
def platform(request):
    """Run the test once per middleware platform (including the HTTP
    platform of the paper's §2.1 generality claim)."""
    return request.param


@pytest.fixture
def deployment(network, platform, compiled_bank):
    dep = CqosDeployment(
        network, platform=platform, compiled=compiled_bank, request_timeout=10.0
    )
    yield dep
    dep.close()


def make_account(**kwargs):
    """Servant factory usable as add_replicas' servant_factory."""
    return lambda: BankAccount(**kwargs)
