"""Unit tests for static configuration: registry, text format, building."""

import pytest

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import (
    MicroProtocolSpec,
    build_micro_protocols,
    micro_protocol_registry,
    parse_config_text,
    register_micro_protocol,
)
from repro.util.errors import ConfigurationError


@register_micro_protocol("_TestConfigurable")
class Configurable(MicroProtocol):
    name = "_TestConfigurable"

    def __init__(self, count: int = 1, label: str = "x", fast: bool = False):
        super().__init__()
        self.count = count
        self.label = label
        self.fast = fast


class TestRegistry:
    def test_registered(self):
        assert micro_protocol_registry()["_TestConfigurable"] is Configurable

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_micro_protocol("_TestConfigurable", MicroProtocol)

    def test_idempotent_registration(self):
        register_micro_protocol("_TestConfigurable", Configurable)  # no error

    def test_qos_protocols_are_registered(self):
        registry = micro_protocol_registry()
        for name in (
            "ClientBase",
            "ServerBase",
            "ActiveRep",
            "PassiveRep",
            "PassiveRepServer",
            "FirstSuccess",
            "MajorityVote",
            "TotalOrder",
            "Retransmit",
            "DesPrivacy",
            "DesPrivacyServer",
            "SignedIntegrity",
            "SignedIntegrityServer",
            "AccessControl",
            "PrioritySched",
            "QueuedSched",
            "TimedSched",
        ):
            assert name in registry, name


class TestTextFormat:
    def test_parse_lines_and_params(self):
        specs = parse_config_text(
            """
            # comment
            ActiveRep
            _TestConfigurable count=3 label=hello fast=true
            MajorityVote   # trailing comment
            """
        )
        assert [s.name for s in specs] == ["ActiveRep", "_TestConfigurable", "MajorityVote"]
        assert specs[1].params == {"count": 3, "label": "hello", "fast": True}

    def test_scalar_parsing(self):
        specs = parse_config_text("_TestConfigurable count=2 label=1.5x fast=false")
        assert specs[0].params == {"count": 2, "label": "1.5x", "fast": False}

    def test_float_param(self):
        specs = parse_config_text("X period=0.25")
        assert specs[0].params == {"period": 0.25}

    def test_malformed_param(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_config_text("X oops")

    def test_wire_roundtrip(self):
        spec = MicroProtocolSpec("A", {"k": 1})
        assert MicroProtocolSpec.from_wire(spec.to_wire()) == spec


class TestBuilding:
    def test_build_with_params(self):
        [instance] = build_micro_protocols(
            [MicroProtocolSpec("_TestConfigurable", {"count": 9})]
        )
        assert isinstance(instance, Configurable)
        assert instance.count == 9

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown micro-protocol"):
            build_micro_protocols([MicroProtocolSpec("NoSuchProtocol")])

    def test_bad_params(self):
        with pytest.raises(ConfigurationError, match="bad parameters"):
            build_micro_protocols(
                [MicroProtocolSpec("_TestConfigurable", {"bogus_kw": 1})]
            )
