"""Unit tests for DII TypeCodes and NVList construction."""

import pytest

from repro.idl.ast import BasicType, NamedType, SequenceType
from repro.idl.compiler import compile_idl
from repro.orb.typecode import NamedValue, build_nvlist, typecode_of
from repro.serialization.registry import TypeRegistry
from repro.util.errors import MarshalError


class TestTypecodeOf:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, BasicType("void")),
            (True, BasicType("boolean")),
            (False, BasicType("boolean")),
            (42, BasicType("long long")),
            (1.5, BasicType("double")),
            ("s", BasicType("string")),
            ([1, 2, 3], SequenceType(BasicType("long long"))),
            ([], SequenceType(BasicType("any"))),
            ([1, "mixed"], SequenceType(BasicType("any"))),
            ({"a": 1}, BasicType("any")),
            (object(), BasicType("any")),
        ],
    )
    def test_derivation(self, value, expected):
        assert typecode_of(value) == expected

    def test_struct_instances_get_named_typecode(self):
        compiled = compile_idl("struct Pt { double x; double y; };", TypeRegistry())
        pt = compiled.structs["Pt"](x=1.0, y=2.0)
        assert typecode_of(pt) == NamedType("Pt")

    def test_nested_sequences(self):
        assert typecode_of([[1], [2]]) == SequenceType(
            SequenceType(BasicType("long long"))
        )


class TestNvList:
    def test_build(self):
        nvlist = build_nvlist([1.0, "two"])
        assert [nv.name for nv in nvlist] == ["arg0", "arg1"]
        assert nvlist[0].typecode == BasicType("double")
        assert nvlist[1].value == "two"

    def test_requires_list(self):
        with pytest.raises(MarshalError):
            build_nvlist("not a list")

    def test_wrap(self):
        nv = NamedValue.wrap(3, True)
        assert nv.name == "arg3"
        assert nv.typecode == BasicType("boolean")


class TestDiiNvListIntegration:
    def test_dii_request_carries_nvlist(self):
        from repro.apps.bank import bank_compiled, bank_interface
        from repro.net.memory import InMemoryNetwork
        from repro.orb.orb import Orb

        net = InMemoryNetwork()
        orb = Orb(net, "client", bank_compiled())
        try:
            from repro.orb.ior import IOR

            ref = orb.get_object(IOR("IDL:omg.org/CORBA/Object:1.0", "s/giop", "p|o"))
            request = ref._create_request("set_balance").add_arg(5.0)
            [nv] = request.nvlist()
            assert nv.typecode == BasicType("double")
            assert nv.value == 5.0
        finally:
            orb.shutdown()
            net.close()
