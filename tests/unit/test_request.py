"""Unit tests for the abstract Request and Reply."""

import threading

import pytest

from repro.core.request import PB_PRIORITY, Reply, Request
from repro.util.errors import ReproError, TimeoutError_


def make_request(**kwargs):
    return Request("acct", "set_balance", [42.0], **kwargs)


class TestAccessors:
    def test_param_vector(self):
        request = Request("o", "op", [1, 2, 3])
        assert request.get_params() == [1, 2, 3]
        request.set_param(1, "two")
        assert request.get_param(1) == "two"
        request.set_params(["new"])
        assert request.get_params() == ["new"]

    def test_priority_piggyback(self):
        request = make_request()
        assert request.priority == 5  # default
        request.priority = 9
        assert request.piggyback[PB_PRIORITY] == 9
        assert request.priority == 9

    def test_client_id_defaults_empty(self):
        assert make_request().client_id == ""

    def test_ids_are_unique(self):
        assert make_request().request_id != make_request().request_id

    def test_explicit_id_preserved(self):
        assert make_request(request_id="fixed").request_id == "fixed"


class TestCompletion:
    def test_complete_releases_waiter(self):
        request = make_request()
        result = []
        thread = threading.Thread(target=lambda: result.append(request.wait(2.0)))
        thread.start()
        request.complete("done")
        thread.join(2.0)
        assert result == ["done"]

    def test_first_completion_wins(self):
        request = make_request()
        assert request.complete(1)
        assert not request.complete(2)
        assert not request.fail(RuntimeError())
        assert request.wait(0.1) == 1

    def test_fail_raises_at_waiter(self):
        request = make_request()
        request.fail(ValueError("nope"))
        with pytest.raises(ValueError, match="nope"):
            request.wait(0.1)

    def test_wait_timeout(self):
        with pytest.raises(TimeoutError_):
            make_request().wait(0.01)

    def test_set_result_before_completion(self):
        request = make_request()
        request.set_result("staged")
        assert request.stored_result == "staged"
        request.complete(request.stored_result)
        assert request.wait(0.1) == "staged"

    def test_set_result_after_completion_rejected(self):
        request = make_request()
        request.complete("done")
        with pytest.raises(ReproError):
            request.set_result("late")

    def test_complete_from_reply_variants(self):
        ok = make_request()
        ok.complete_from_reply(Reply(server=1, value=10))
        assert ok.wait(0.1) == 10

        app_error = make_request()
        app_error.complete_from_reply(Reply(server=1, exception=KeyError("k")))
        with pytest.raises(KeyError):
            app_error.wait(0.1)

        failed = make_request()
        failed.complete_from_reply(Reply(server=1, failed=True))
        with pytest.raises(ReproError):
            failed.wait(0.1)


class TestReplies:
    def test_reply_bookkeeping(self):
        request = make_request()
        request.add_reply(Reply(server=1, value="a"))
        request.add_reply(Reply(server=2, failed=True))
        assert request.reply_count() == 2
        replies = request.replies()
        assert replies[1].succeeded and not replies[2].succeeded

    def test_reply_classification(self):
        assert Reply(server=1, value=1).succeeded
        assert not Reply(server=1, value=1).is_application_error
        assert Reply(server=1, exception=ValueError()).is_application_error
        assert not Reply(server=1, failed=True, exception=ValueError()).succeeded


class TestWireForm:
    def test_roundtrip(self):
        request = Request("acct", "op", [1, "x"], piggyback={"p": 1}, request_id="r1")
        rebuilt = Request.from_wire(request.to_wire())
        assert rebuilt.request_id == "r1"
        assert rebuilt.object_id == "acct"
        assert rebuilt.operation == "op"
        assert rebuilt.get_params() == [1, "x"]
        assert rebuilt.piggyback == {"p": 1}

    def test_wire_is_codec_friendly(self):
        from repro.serialization.jser import jser_dumps, jser_loads

        wire = make_request().to_wire()
        assert jser_loads(jser_dumps(wire)) == wire
