"""The layering lint, run as a tier-1 test.

The paper's portability claim — QoS micro-protocols see only the abstract
request and the Cactus QoS interface — is enforced statically by
``tools/check_layering.py``; this wrapper makes every local/CI pytest run
fail on a violation, and checks the checker itself catches one.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_layering  # noqa: E402


def test_source_tree_has_no_layering_violations():
    assert check_layering.check(REPO_ROOT / "src") == []


def test_checker_flags_platform_import_in_qos(tmp_path):
    """The lint actually bites: a planted violation is reported."""
    pkg = tmp_path / "repro" / "qos"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "sneaky.py").write_text(
        textwrap.dedent(
            """
            from repro.orb.orb import Orb
            import repro.http.client
            from repro.core.adapters.rmi import RmiClientPlatform
            """
        )
    )
    violations = check_layering.check(tmp_path)
    assert len(violations) == 3
    assert all("repro.qos.sneaky" in v for v in violations)


def test_checker_resolves_relative_imports(tmp_path):
    pkg = tmp_path / "repro" / "cactus"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("from . import composite\n")
    (pkg / "composite.py").write_text("from ..rmi import runtime\n")
    violations = check_layering.check(tmp_path)
    assert len(violations) == 1
    assert "repro.cactus.composite" in violations[0]
    assert "repro.rmi" in violations[0]


def test_kernel_is_platform_free():
    """The invocation kernel itself must not import platform packages."""
    assert "repro.core.platform" in check_layering.CONTRACTS
    violations = [
        v for v in check_layering.check(REPO_ROOT / "src") if "platform" in v
    ]
    assert violations == []


def test_routing_layer_is_platform_free():
    """core.routing sits below every adapter: no platform imports allowed."""
    assert "repro.core.routing" in check_layering.CONTRACTS
    violations = [
        v for v in check_layering.check(REPO_ROOT / "src") if "routing" in v
    ]
    assert violations == []


def test_checker_flags_platform_import_in_routing(tmp_path):
    pkg = tmp_path / "repro" / "core" / "routing"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (tmp_path / "repro" / "core" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "bad.py").write_text("from repro.core.adapters.http import HttpClientPlatform\n")
    violations = check_layering.check(tmp_path)
    assert len(violations) == 1
    assert "repro.core.routing.bad" in violations[0]
