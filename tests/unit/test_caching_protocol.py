"""Unit tests for the coherent caching pair (ClientCache / CacheInvalidator).

The TTL tests drive a :class:`VirtualClock` through the composite runtime,
so freshness is a pure function of virtual time — no sleeps, no flakes.
The server-side tests pin the invalidation-epoch/delta algebra: what bumps
the epoch, what each client-epoch gets piggybacked back, and when the
bounded log degrades to "flush everything".
"""

import pytest

from repro.cactus.composite import MicroProtocol
from repro.cactus.runtime import CactusRuntime
from repro.core.client import CactusClient
from repro.core.request import PB_CACHE_EPOCH, PB_CACHE_INVALIDATE, Request
from repro.core.server import CactusServer
from repro.qos.extensions.caching import (
    EV_CACHE_INVALIDATE,
    CacheInvalidator,
    ClientCache,
)
from repro.util.clock import VirtualClock
from tests.unit.test_core_components import FakeClientPlatform, FakeServerPlatform


@pytest.fixture
def vclock():
    return VirtualClock()


def make_client(platform, cache, vclock):
    return CactusClient.with_base(
        platform,
        [cache],
        request_timeout=5.0,
        runtime=CactusRuntime(clock=vclock, workers=4),
    )


def run(client, operation="echo", params=("v",)):
    request = Request("obj", operation, list(params))
    return client.cactus_request(request)


class TestClientCacheVirtualTtl:
    def test_ttl_expiry_is_clock_driven(self, vclock):
        platform = FakeClientPlatform()
        cache = ClientCache(read_operations=["echo"], ttl=1.0)
        client = make_client(platform, cache, vclock)
        try:
            run(client)  # miss, populates at t=0
            assert len(platform.invocations) == 1
            run(client)  # hit: no virtual time has passed
            assert len(platform.invocations) == 1
            vclock.advance(0.5)
            run(client)  # still fresh at t=0.5
            assert len(platform.invocations) == 1 and cache.hits == 2
            vclock.advance(0.6)  # t=1.1 > ttl: expired, real invocation
            run(client)
            assert len(platform.invocations) == 2
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_ttl_boundary_is_inclusive(self, vclock):
        platform = FakeClientPlatform()
        cache = ClientCache(read_operations=["echo"], ttl=1.0)
        client = make_client(platform, cache, vclock)
        try:
            run(client)
            vclock.advance(1.0)  # age == ttl exactly: still fresh
            run(client)
            assert len(platform.invocations) == 1
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_zero_ttl_caches_until_invalidated(self, vclock):
        platform = FakeClientPlatform()
        cache = ClientCache(read_operations=["echo"], ttl=0.0)
        client = make_client(platform, cache, vclock)
        try:
            run(client)
            vclock.advance(1_000_000.0)
            run(client)
            assert len(platform.invocations) == 1  # age is irrelevant
            cache.invalidate("echo")
            run(client)
            assert len(platform.invocations) == 2
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_per_operation_invalidation_spares_other_entries(self, vclock):
        platform = FakeClientPlatform()
        cache = ClientCache(read_operations=["echo", "status"])
        client = make_client(platform, cache, vclock)
        try:
            run(client, "echo", ("a",))
            run(client, "echo", ("b",))
            run(client, "status", ())
            before = len(platform.invocations)
            cache.invalidate("echo")  # both echo keys die, status survives
            run(client, "status", ())
            assert len(platform.invocations) == before
            run(client, "echo", ("a",))
            run(client, "echo", ("b",))
            assert len(platform.invocations) == before + 2
        finally:
            client.shutdown()
            client.runtime.shutdown()


class TestClientDeltaApplication:
    def _cache(self, vclock):
        platform = FakeClientPlatform()
        cache = ClientCache(read_operations=["echo", "status"])
        client = make_client(platform, cache, vclock)
        run(client, "echo", ("a",))
        run(client, "status", ())
        return platform, cache, client

    def test_per_op_delta_invalidates_named_reads_only(self, vclock):
        platform, cache, client = self._cache(vclock)
        try:
            cache._apply_delta(1, [3, ["echo"]])
            before = len(platform.invocations)
            run(client, "status", ())  # untouched: still a hit
            assert len(platform.invocations) == before
            run(client, "echo", ("a",))  # invalidated: real invocation
            assert len(platform.invocations) == before + 1
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_stale_epoch_delta_is_ignored(self, vclock):
        platform, cache, client = self._cache(vclock)
        try:
            cache._apply_delta(1, [5, ["echo"]])
            cache._apply_delta(1, [3, ["status"]])  # replayed older delta
            before = len(platform.invocations)
            run(client, "status", ())  # survives the replay
            assert len(platform.invocations) == before
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_epochs_are_tracked_per_replica(self, vclock):
        platform, cache, client = self._cache(vclock)
        try:
            cache._apply_delta(1, [5, ["echo"]])
            # Replica 2 at epoch 3 is NOT behind replica 1 at epoch 5.
            cache._apply_delta(2, [3, ["status"]])
            before = len(platform.invocations)
            run(client, "status", ())
            assert len(platform.invocations) == before + 1
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_flush_all_delta_clears_everything(self, vclock):
        platform, cache, client = self._cache(vclock)
        try:
            cache._apply_delta(1, [9, None])
            before = len(platform.invocations)
            run(client, "echo", ("a",))
            run(client, "status", ())
            assert len(platform.invocations) == before + 2
        finally:
            client.shutdown()
            client.runtime.shutdown()


class _InvalidationProbe(MicroProtocol):
    """Records every cacheInvalidate occurrence the server raises."""

    name = "InvalidationProbe"

    def __init__(self):
        super().__init__()
        self.seen = []

    def start(self):
        self.bind(EV_CACHE_INVALIDATE, self.record)

    def record(self, occurrence):
        self.seen.append(tuple(occurrence.args))


class TestCacheInvalidator:
    def make_server(self, **kwargs):
        probe = _InvalidationProbe()
        invalidator = CacheInvalidator(read_operations=["echo"], **kwargs)
        server = CactusServer.with_base(
            FakeServerPlatform(), [invalidator, probe], request_timeout=5.0
        )
        return server, invalidator, probe

    def invoke(self, server, operation, client_epoch=None):
        request = Request("obj", operation, ["v"] if operation == "echo" else [])
        if client_epoch is not None:
            request.piggyback[PB_CACHE_EPOCH] = client_epoch
        server.cactus_invoke(request)
        return request

    def test_reads_do_not_bump_epoch(self):
        server, invalidator, probe = self.make_server()
        try:
            self.invoke(server, "echo")
            assert invalidator.epoch() == 0 and probe.seen == []
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_writes_bump_epoch_and_raise_event(self):
        server, invalidator, probe = self.make_server()
        try:
            self.invoke(server, "poke")
            self.invoke(server, "poke")
            assert invalidator.epoch() == 2
            assert probe.seen == [(1, None), (2, None)]
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_current_client_gets_no_delta(self):
        server, invalidator, probe = self.make_server()
        try:
            self.invoke(server, "poke")
            request = self.invoke(server, "echo", client_epoch=1)
            assert PB_CACHE_INVALIDATE not in request.reply_piggyback
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_behind_client_gets_targeted_delta(self):
        server, invalidator, probe = self.make_server(
            invalidates={"poke": ["echo"]}
        )
        try:
            self.invoke(server, "poke")
            request = self.invoke(server, "echo", client_epoch=0)
            assert request.reply_piggyback[PB_CACHE_INVALIDATE] == [1, ["echo"]]
            assert probe.seen == [(1, frozenset({"echo"}))]
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_unmapped_write_invalidates_nothing(self):
        server, invalidator, probe = self.make_server(invalidates={"poke": ["echo"]})
        try:
            self.invoke(server, "nudge")  # not in the invalidates map
            assert invalidator.epoch() == 0 and probe.seen == []
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_client_behind_bounded_log_gets_flush_all(self):
        server, invalidator, probe = self.make_server(
            invalidates={"poke": ["echo"]}, log_size=2
        )
        try:
            for _ in range(4):
                self.invoke(server, "poke")
            # Log remembers epochs [3, 4]; a client at epoch 1 is too far
            # behind to reconstruct, so it must flush everything.
            request = self.invoke(server, "echo", client_epoch=1)
            assert request.reply_piggyback[PB_CACHE_INVALIDATE] == [4, None]
            # A client at epoch 2 is exactly reconstructable from the log.
            request = self.invoke(server, "echo", client_epoch=2)
            assert request.reply_piggyback[PB_CACHE_INVALIDATE] == [4, ["echo"]]
        finally:
            server.shutdown()
            server.runtime.shutdown()
