"""Unit tests for the TCP loopback transport."""

import threading

import pytest

from repro.net import framing as framing_mod
from repro.net import tcp as tcp_mod
from repro.net.tcp import TcpNetwork
from repro.util.errors import CommunicationError, FrameTooLargeError, ServerFailedError


@pytest.fixture
def net():
    network = TcpNetwork()
    yield network
    network.close()


class TestTcpDelivery:
    def test_request_reply(self, net):
        net.host("server").listen("echo", lambda d: b"R:" + d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"hello") == b"R:hello"
        conn.close()

    def test_large_frame(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        blob = bytes(range(256)) * 4096  # 1 MiB
        assert conn.call(blob) == blob
        conn.close()

    def test_unknown_address(self, net):
        conn = net.host("client").connect("server/none")
        with pytest.raises(CommunicationError):
            conn.call(b"x")

    def test_duplicate_address_rejected(self, net):
        net.host("server").listen("echo", lambda d: d)
        with pytest.raises(CommunicationError, match="already in use"):
            net.host("server").listen("echo", lambda d: d)

    def test_sequential_calls_on_one_connection(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        for i in range(50):
            payload = b"%d" % i
            assert conn.call(payload) == payload
        conn.close()

    def test_concurrent_clients(self, net):
        net.host("server").listen("echo", lambda d: d)
        errors = []

        def worker(i):
            conn = net.host(f"client-{i}").connect("server/echo")
            try:
                for j in range(20):
                    payload = b"%d-%d" % (i, j)
                    if conn.call(payload) != payload:
                        errors.append((i, j))
            finally:
                conn.close()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        assert not errors


class TestTcpFaults:
    def test_crash_breaks_live_connections(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"a") == b"a"
        net.crash("server")
        with pytest.raises(CommunicationError):
            conn.call(b"b")

    def test_recover_re_resolves(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"a") == b"a"
        net.crash("server")
        with pytest.raises(CommunicationError):
            conn.call(b"b")
        net.recover("server")
        assert conn.call(b"c") == b"c"

    def test_connect_to_crashed_host(self, net):
        net.host("server").listen("echo", lambda d: d)
        net.crash("server")
        conn = net.host("client").connect("server/echo")
        with pytest.raises(ServerFailedError):
            conn.call(b"x")

    def test_closed_listener_stops_serving(self, net):
        listener = net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"a") == b"a"
        listener.close()
        with pytest.raises(CommunicationError):
            conn.call(b"b")


class TestFrameLimits:
    def test_oversized_request_fails_fast_client_side(self, net, monkeypatch):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"warm") == b"warm"
        # Shrink the limit instead of allocating 64 MiB in a unit test.
        monkeypatch.setattr(tcp_mod, "_MAX_FRAME", 1024)
        monkeypatch.setattr(framing_mod, "MAX_FRAME", 1024)
        with pytest.raises(CommunicationError):
            conn.call(b"x" * 2048)
        # FrameTooLargeError is a CommunicationError, so the retry
        # classification treats it like any other transient-looking failure.
        monkeypatch.undo()
        assert conn.call(b"again") == b"again"
        conn.close()

    def test_oversized_reply_resets_instead_of_hanging(self, net, monkeypatch):
        # The reply-side limit check runs in the serving thread; the client
        # must see a prompt connection error, not block until timeout.
        net.host("server").listen("big", lambda d: b"y" * 4096)
        conn = net.host("client").connect("server/big")
        monkeypatch.setattr(tcp_mod, "_MAX_FRAME", 1024)
        monkeypatch.setattr(framing_mod, "MAX_FRAME", 1024)
        with pytest.raises(CommunicationError):
            conn.call(b"x", timeout=5.0)
        conn.close()

    def test_handler_crash_resets_instead_of_hanging(self, net):
        def exploding(_data):
            raise RuntimeError("handler bug")

        net.host("server").listen("boom", exploding)
        conn = net.host("client").connect("server/boom")
        with pytest.raises(CommunicationError):
            conn.call(b"x", timeout=5.0)
        conn.close()

    def test_frame_too_large_is_communication_error(self):
        assert issubclass(FrameTooLargeError, CommunicationError)


class TestResolveTableThreadSafety:
    def test_concurrent_listen_crash_recover_resolve(self, net):
        """Hammer the name table from publisher and resolver threads.

        Before the table accesses were funnelled through TcpNetwork._lock,
        concurrent crash/recover cycles against client-side resolution could
        corrupt the dict or read torn state.
        """
        net.host("server").listen("svc", lambda d: d)
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn():
            try:
                while not stop.is_set():
                    net.crash("server")
                    net.recover("server")
            except BaseException as exc:  # noqa: BLE001 - surface to assert
                errors.append(exc)

        def resolve():
            try:
                while not stop.is_set():
                    port = net._resolve("server/svc")
                    assert port is None or isinstance(port, int)
            except BaseException as exc:  # noqa: BLE001 - surface to assert
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(2)] + [
            threading.Thread(target=resolve) for _ in range(4)
        ]
        for t in threads:
            t.start()
        stop.wait(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        # The table must settle usable after the churn.
        net.recover("server")
        conn = net.host("client").connect("server/svc")
        assert conn.call(b"ok") == b"ok"
        conn.close()
