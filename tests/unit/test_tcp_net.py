"""Unit tests for the TCP loopback transport."""

import threading

import pytest

from repro.net.tcp import TcpNetwork
from repro.util.errors import CommunicationError, ServerFailedError


@pytest.fixture
def net():
    network = TcpNetwork()
    yield network
    network.close()


class TestTcpDelivery:
    def test_request_reply(self, net):
        net.host("server").listen("echo", lambda d: b"R:" + d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"hello") == b"R:hello"
        conn.close()

    def test_large_frame(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        blob = bytes(range(256)) * 4096  # 1 MiB
        assert conn.call(blob) == blob
        conn.close()

    def test_unknown_address(self, net):
        conn = net.host("client").connect("server/none")
        with pytest.raises(CommunicationError):
            conn.call(b"x")

    def test_duplicate_address_rejected(self, net):
        net.host("server").listen("echo", lambda d: d)
        with pytest.raises(CommunicationError, match="already in use"):
            net.host("server").listen("echo", lambda d: d)

    def test_sequential_calls_on_one_connection(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        for i in range(50):
            payload = b"%d" % i
            assert conn.call(payload) == payload
        conn.close()

    def test_concurrent_clients(self, net):
        net.host("server").listen("echo", lambda d: d)
        errors = []

        def worker(i):
            conn = net.host(f"client-{i}").connect("server/echo")
            try:
                for j in range(20):
                    payload = b"%d-%d" % (i, j)
                    if conn.call(payload) != payload:
                        errors.append((i, j))
            finally:
                conn.close()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        assert not errors


class TestTcpFaults:
    def test_crash_breaks_live_connections(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"a") == b"a"
        net.crash("server")
        with pytest.raises(CommunicationError):
            conn.call(b"b")

    def test_recover_re_resolves(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"a") == b"a"
        net.crash("server")
        with pytest.raises(CommunicationError):
            conn.call(b"b")
        net.recover("server")
        assert conn.call(b"c") == b"c"

    def test_connect_to_crashed_host(self, net):
        net.host("server").listen("echo", lambda d: d)
        net.crash("server")
        conn = net.host("client").connect("server/echo")
        with pytest.raises(ServerFailedError):
            conn.call(b"x")

    def test_closed_listener_stops_serving(self, net):
        listener = net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"a") == b"a"
        listener.close()
        with pytest.raises(CommunicationError):
            conn.call(b"b")
