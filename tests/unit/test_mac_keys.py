"""Unit tests for the HMAC construction and the key store."""

import hashlib
import hmac as stdlib_hmac

import pytest

from repro.crypto.keys import KeyStore
from repro.crypto.mac import hmac_digest, hmac_verify
from repro.util.errors import ConfigurationError


class TestHmac:
    def test_matches_stdlib_short_key(self):
        for message in (b"", b"msg", b"x" * 1000):
            assert hmac_digest(b"key", message) == stdlib_hmac.new(
                b"key", message, hashlib.sha256
            ).digest()

    def test_matches_stdlib_long_key(self):
        # Keys longer than the block size are hashed first (RFC 2104).
        key = b"k" * 200
        assert hmac_digest(key, b"m") == stdlib_hmac.new(key, b"m", hashlib.sha256).digest()

    def test_matches_stdlib_sha1(self):
        assert hmac_digest(b"key", b"msg", "sha1") == stdlib_hmac.new(
            b"key", b"msg", hashlib.sha1
        ).digest()

    def test_rfc2104_test_vector(self):
        # RFC 4231 test case 2 for HMAC-SHA-256.
        key = b"Jefe"
        message = b"what do ya want for nothing?"
        expected = bytes.fromhex(
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )
        assert hmac_digest(key, message) == expected

    def test_verify_accepts_and_rejects(self):
        signature = hmac_digest(b"key", b"msg")
        assert hmac_verify(b"key", b"msg", signature)
        assert not hmac_verify(b"key", b"tampered", signature)
        assert not hmac_verify(b"other-key", b"msg", signature)
        assert not hmac_verify(b"key", b"msg", b"garbage")


class TestKeyStore:
    def test_add_and_get(self):
        store = KeyStore()
        store.add("k1", b"\x01" * 8)
        assert store.get("k1") == b"\x01" * 8

    def test_generate(self):
        store = KeyStore()
        key = store.generate("des", length=8)
        assert len(key) == 8
        assert store.get("des") == key

    def test_missing_key_raises(self):
        with pytest.raises(ConfigurationError):
            KeyStore().get("nope")

    def test_initial_keys_and_names(self):
        store = KeyStore({"a": b"1", "b": b"2"})
        assert store.has("a")
        assert store.names() == ["a", "b"]
