"""Unit tests for composite protocols, micro-protocols, and shared data."""

import pytest

from repro.cactus.composite import CompositeProtocol, MicroProtocol, SharedData
from repro.util.errors import ConfigurationError


class Recorder(MicroProtocol):
    """Binds one handler and records activations."""

    def __init__(self, name="recorder", event="ev"):
        super().__init__(name)
        self._event = event
        self.calls = []

    def start(self):
        self.bind(self._event, self.on_event)

    def on_event(self, occurrence):
        self.calls.append(occurrence.args)


@pytest.fixture
def composite():
    comp = CompositeProtocol("test")
    yield comp
    comp.shutdown()
    comp.runtime.shutdown()


class TestSharedData:
    def test_get_set(self):
        shared = SharedData()
        assert shared.get("missing") is None
        assert shared.get("missing", 7) == 7
        shared.set("k", 1)
        assert shared.get("k") == 1

    def test_setdefault(self):
        shared = SharedData()
        assert shared.setdefault("k", []) == []
        marker = shared.get("k")
        assert shared.setdefault("k", [1]) is marker

    def test_atomic_update(self):
        shared = SharedData()
        assert shared.update("count", lambda v: v + 1, default=0) == 1
        assert shared.update("count", lambda v: v + 1, default=0) == 2

    def test_pop(self):
        shared = SharedData()
        shared.set("k", "v")
        assert shared.pop("k") == "v"
        assert shared.pop("k", "gone") == "gone"


class TestMicroProtocolLifecycle:
    def test_configure_starts_protocols(self, composite):
        recorder = Recorder()
        composite.configure([recorder])
        composite.raise_event("ev", 1)
        assert recorder.calls == [(1,)]

    def test_duplicate_names_rejected(self, composite):
        composite.configure([Recorder()])
        with pytest.raises(ConfigurationError, match="already configured"):
            composite.add_micro_protocol(Recorder())

    def test_remove_unbinds(self, composite):
        recorder = Recorder()
        composite.configure([recorder])
        composite.remove_micro_protocol("recorder")
        composite.raise_event("ev", 1)
        assert recorder.calls == []

    def test_dynamic_add_during_execution(self, composite):
        late = Recorder("late")
        composite.add_micro_protocol(late)
        composite.raise_event("ev", "x")
        assert late.calls == [("x",)]

    def test_lookup(self, composite):
        recorder = Recorder()
        composite.configure([recorder])
        assert composite.micro_protocol("recorder") is recorder
        assert composite.micro_protocol_names() == ["recorder"]
        with pytest.raises(ConfigurationError):
            composite.micro_protocol("nope")

    def test_unattached_protocol_has_no_composite(self):
        recorder = Recorder()
        with pytest.raises(ConfigurationError, match="not attached"):
            _ = recorder.composite

    def test_shutdown_stops_all(self, composite):
        first, second = Recorder("a"), Recorder("b")
        composite.configure([first, second])
        composite.shutdown()
        composite.raise_event("ev")
        assert first.calls == [] and second.calls == []

    def test_stop_is_idempotent(self, composite):
        recorder = Recorder()
        composite.configure([recorder])
        composite.remove_micro_protocol("recorder")
        recorder.stop()  # second stop must not fail
