"""Unit tests for the CDR-like codec."""

import math

import pytest

from repro.serialization.cdr import CdrInputStream, CdrOutputStream, cdr_dumps, cdr_loads
from repro.serialization.registry import TypeRegistry
from repro.util.errors import MarshalError


class TestPrimitives:
    def test_typed_stream_roundtrip(self):
        out = CdrOutputStream()
        out.write_octet(0xAB)
        out.write_bool(True)
        out.write_short(-1234)
        out.write_ushort(65000)
        out.write_long(-(2**31))
        out.write_ulong(2**32 - 1)
        out.write_longlong(-(2**63))
        out.write_double(math.pi)
        out.write_string("héllo wörld")
        out.write_bytes(b"\x00\x01\x02")
        stream = CdrInputStream(out.getvalue())
        assert stream.read_octet() == 0xAB
        assert stream.read_bool() is True
        assert stream.read_short() == -1234
        assert stream.read_ushort() == 65000
        assert stream.read_long() == -(2**31)
        assert stream.read_ulong() == 2**32 - 1
        assert stream.read_longlong() == -(2**63)
        assert stream.read_double() == math.pi
        assert stream.read_string() == "héllo wörld"
        assert stream.read_bytes() == b"\x00\x01\x02"
        assert stream.remaining == 0

    def test_alignment(self):
        # One octet followed by a long: three padding bytes on the wire.
        out = CdrOutputStream()
        out.write_octet(1)
        out.write_long(7)
        assert len(out.getvalue()) == 8
        stream = CdrInputStream(out.getvalue())
        assert stream.read_octet() == 1
        assert stream.read_long() == 7

    def test_truncated_stream(self):
        with pytest.raises(MarshalError):
            CdrInputStream(b"\x00\x01").read_long()


class TestAnyEncoding:
    CASES = [
        None,
        True,
        False,
        0,
        -1,
        2**62,
        -(2**63),
        2**100,  # beyond int64: bigint path
        -(2**100),
        1.5,
        float("inf"),
        "",
        "text",
        b"",
        b"bytes",
        [],
        [1, "two", 3.0, None],
        (1, 2),
        {},
        {"k": [1, {"nested": (True, b"x")}]},
        {1: "int key", (1, 2): "tuple key"},
    ]

    @pytest.mark.parametrize("value", CASES, ids=[repr(c)[:40] for c in CASES])
    def test_roundtrip(self, value):
        assert cdr_loads(cdr_dumps(value)) == value

    def test_nan_roundtrip(self):
        assert math.isnan(cdr_loads(cdr_dumps(float("nan"))))

    def test_bool_is_not_int(self):
        # bool must survive as bool (True == 1 would corrupt IDL booleans).
        assert cdr_loads(cdr_dumps(True)) is True
        assert cdr_loads(cdr_dumps(1)) == 1
        assert not isinstance(cdr_loads(cdr_dumps(1)), bool)

    def test_tuple_vs_list_preserved(self):
        assert isinstance(cdr_loads(cdr_dumps((1, 2))), tuple)
        assert isinstance(cdr_loads(cdr_dumps([1, 2])), list)

    def test_unregistered_type_rejected(self):
        class Unknown:
            pass

        with pytest.raises(MarshalError, match="register"):
            cdr_dumps(Unknown())

    def test_registered_value_type(self):
        registry = TypeRegistry()

        class Point:
            def __init__(self, x, y):
                self.x, self.y = x, y

        registry.register("test.Point", Point)
        data = cdr_dumps(Point(1, 2), registry)
        decoded = cdr_loads(data, registry)
        assert isinstance(decoded, Point)
        assert (decoded.x, decoded.y) == (1, 2)

    def test_unknown_type_name_on_decode(self):
        registry = TypeRegistry()

        class P:
            def __init__(self):
                self.v = 1

        registry.register("test.P", P)
        data = cdr_dumps(P(), registry)
        with pytest.raises(MarshalError, match="unknown value type"):
            cdr_loads(data, TypeRegistry())

    def test_garbage_tag_rejected(self):
        with pytest.raises(MarshalError):
            cdr_loads(b"\xff")
