"""Unit tests for compiled (typed) CDR marshalling."""

import pytest

from repro.idl.ast import BasicType, NamedType, SequenceType
from repro.idl.compiler import compile_idl
from repro.orb.typed_marshal import (
    marshal_arguments,
    marshal_result,
    read_typed,
    unmarshal_arguments,
    unmarshal_result,
    write_typed,
)
from repro.serialization.cdr import CdrInputStream, CdrOutputStream
from repro.serialization.registry import TypeRegistry
from repro.util.errors import MarshalError

IDL = """
struct Pt { double x; double y; };
struct Shape { string name; sequence<Pt> points; };
exception Bad { string why; };
interface T {
  double scale(in double factor, in Shape s);
  void nothing();
  sequence<long> numbers(in long count);
  unsigned long long big(in unsigned long long v);
  octet byte_op(in octet b);
  boolean flag(in boolean f);
};
"""


@pytest.fixture
def compiled():
    return compile_idl(IDL, TypeRegistry())


def roundtrip(idl_type, value, compiled):
    out = CdrOutputStream()
    write_typed(out, idl_type, value, compiled)
    return read_typed(CdrInputStream(out.getvalue()), idl_type, compiled)


class TestTypes:
    @pytest.mark.parametrize(
        "kind,value",
        [
            ("boolean", True),
            ("boolean", False),
            ("octet", 255),
            ("short", -32768),
            ("unsigned short", 65535),
            ("long", -(2**31)),
            ("unsigned long", 2**32 - 1),
            ("long long", 2**63 - 1),
            ("unsigned long long", 2**64 - 1),
            ("double", 3.14),
            ("float", -1.5),
            ("string", "héllo"),
            ("any", {"free": ["form", 1]}),
        ],
    )
    def test_basic_roundtrip(self, compiled, kind, value):
        assert roundtrip(BasicType(kind), value, compiled) == value

    def test_void(self, compiled):
        assert roundtrip(BasicType("void"), None, compiled) is None
        with pytest.raises(MarshalError):
            roundtrip(BasicType("void"), 1, compiled)

    def test_sequence(self, compiled):
        seq = SequenceType(BasicType("long"))
        assert roundtrip(seq, [1, 2, 3], compiled) == [1, 2, 3]
        assert roundtrip(seq, [], compiled) == []

    def test_nested_struct(self, compiled):
        pt_cls = compiled.structs["Pt"]
        shape_cls = compiled.structs["Shape"]
        shape = shape_cls(name="tri", points=[pt_cls(x=0.0, y=0.0), pt_cls(x=1.0, y=2.0)])
        decoded = roundtrip(NamedType("Shape"), shape, compiled)
        assert decoded == shape

    def test_no_type_tags_on_wire(self, compiled):
        """Typed encoding of a double is exactly 8 bytes: no tag overhead."""
        out = CdrOutputStream()
        write_typed(out, BasicType("double"), 1.0, compiled)
        assert len(out.getvalue()) == 8

    def test_type_errors_at_sender(self, compiled):
        with pytest.raises(MarshalError):
            roundtrip(BasicType("long"), "not an int", compiled)
        with pytest.raises(MarshalError):
            roundtrip(BasicType("long"), 2**40, compiled)  # out of range
        with pytest.raises(MarshalError):
            roundtrip(BasicType("boolean"), 1, compiled)  # int is not bool
        with pytest.raises(MarshalError):
            roundtrip(SequenceType(BasicType("long")), "xy", compiled)

    def test_wrong_struct_class(self, compiled):
        with pytest.raises(MarshalError):
            roundtrip(NamedType("Pt"), {"x": 1.0, "y": 2.0}, compiled)


class TestOperationHelpers:
    def test_arguments_roundtrip(self, compiled):
        op = compiled.interface("T").operation("scale")
        pt = compiled.structs["Pt"](x=1.0, y=2.0)
        shape = compiled.structs["Shape"](name="s", points=[pt])
        blob = marshal_arguments(op, [2.0, shape], compiled)
        assert unmarshal_arguments(op, blob, compiled) == [2.0, shape]

    def test_arity_checked(self, compiled):
        op = compiled.interface("T").operation("scale")
        with pytest.raises(MarshalError, match="takes 2"):
            marshal_arguments(op, [1.0], compiled)

    def test_result_roundtrip(self, compiled):
        op = compiled.interface("T").operation("numbers")
        blob = marshal_result(op, [5, 6, 7], compiled)
        assert unmarshal_result(op, blob, compiled) == [5, 6, 7]

    def test_void_result(self, compiled):
        op = compiled.interface("T").operation("nothing")
        blob = marshal_result(op, None, compiled)
        assert blob == b""
        assert unmarshal_result(op, blob, compiled) is None


class TestEndToEnd:
    def test_typed_stub_against_dsi_rejected(self):
        """A compiled stub pointed at a DSI servant fails cleanly (real
        CORBA's constraint: DSI cannot decode untagged bodies)."""
        from repro.apps.bank import bank_compiled, bank_interface
        from repro.net.memory import InMemoryNetwork
        from repro.orb import DynamicImplementation, Orb, make_static_stub_class
        from repro.util.errors import InvocationError

        net = InMemoryNetwork()
        compiled = bank_compiled()
        server = Orb(net, "server", compiled).start()
        client = Orb(net, "client", compiled)
        try:

            class Sink(DynamicImplementation):
                def invoke(self, server_request):
                    server_request.set_result(None)

            poa = server.create_poa("p")
            ior = poa.activate_object("sink", Sink())
            stub = make_static_stub_class(bank_interface())(client, ior)
            with pytest.raises(InvocationError, match="dynamic"):
                stub.get_balance()
        finally:
            client.shutdown()
            server.shutdown()
            net.close()
