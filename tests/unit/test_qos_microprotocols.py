"""Focused unit tests for QoS micro-protocol logic on fake platforms.

Integration tests cover end-to-end behaviour; these pin the handler-level
mechanics: which events fire, what gets overridden, what state changes.
"""

import threading
import time

import pytest

from repro.cactus.events import ORDER_LAST
from repro.core.client import SHARED_FAILED_SERVERS, CactusClient
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_INVOKE_SUCCESS,
    EV_NEW_REQUEST,
    EV_READY_TO_SEND,
)
from repro.core.request import Reply, Request
from repro.core.server import CactusServer
from repro.qos import (
    ActiveRep,
    FirstSuccess,
    MajorityVote,
    PassiveRep,
    Retransmit,
)
from repro.qos.base import ClientBase
from repro.util.errors import CommunicationError, ServerFailedError
from tests.unit.test_core_components import FakeClientPlatform, FakeServerPlatform


def make_client(platform, extra):
    return CactusClient.with_base(platform, extra, request_timeout=5.0)


def run_request(client, operation="echo", params=("v",)):
    request = Request("obj", operation, list(params))
    result = client.cactus_request(request)
    return request, result


class TestActiveRepMechanics:
    def test_scatter_bindings(self):
        platform = FakeClientPlatform(servers=3)
        client = make_client(platform, [ActiveRep()])
        try:
            # One scatter assigner + the base assigner (the fan-out happens
            # per-request now, not as per-replica bindings).
            new_request = client.event(EV_NEW_REQUEST).bindings()
            assert [b.handler.__name__ for b in new_request] == ["act_assigner", "assigner"]
            # The pipelined submitter overrides the base syncInvoker.
            ready = client.event(EV_READY_TO_SEND).bindings()
            assert [b.handler.__name__ for b in ready] == ["submit_invoker", "sync_invoker"]
            assert ready[0].order < ORDER_LAST
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_all_replicas_invoked_base_overridden(self):
        platform = FakeClientPlatform(servers=3)
        client = make_client(platform, [ActiveRep()])
        try:
            request, _ = run_request(client)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and len(platform.invocations) < 3:
                time.sleep(0.01)
            servers = sorted(s for s, _, _ in platform.invocations)
            assert servers == [1, 2, 3]  # base assigner would add a 4th
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_explicit_num_servers_override(self):
        platform = FakeClientPlatform(servers=5)
        client = make_client(platform, [ActiveRep(num_servers=2)])
        try:
            run_request(client)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and len(platform.invocations) < 2:
                time.sleep(0.01)
            time.sleep(0.05)
            assert sorted(s for s, _, _ in platform.invocations) == [1, 2]
        finally:
            client.shutdown()
            client.runtime.shutdown()


class TestAcceptanceMechanics:
    def test_first_success_ignores_early_failure(self):
        platform = FakeClientPlatform(servers=2)
        platform.fail_servers.add(1)
        client = make_client(platform, [ActiveRep(), FirstSuccess()])
        try:
            request, result = run_request(client)
            assert result == "v"
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_majority_requires_two_of_three(self):
        # Drive the decision handler directly with crafted replies.
        platform = FakeClientPlatform(servers=3)
        client = make_client(platform, [MajorityVote()])
        try:
            vote: MajorityVote = client.micro_protocol("MajorityVote")
            request = Request("obj", "op", [])
            request.add_reply(Reply(server=1, value="a"))
            client.raise_event(
                EV_INVOKE_SUCCESS, request, 1, Reply(server=1, value="a")
            )
            assert not request.completed  # one vote is not a majority
            request.add_reply(Reply(server=2, value="a"))
            client.raise_event(
                EV_INVOKE_SUCCESS, request, 2, Reply(server=2, value="a")
            )
            assert request.completed
            assert request.wait(1.0) == "a"
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_majority_distinguishes_values(self):
        platform = FakeClientPlatform(servers=3)
        client = make_client(platform, [MajorityVote()])
        try:
            request = Request("obj", "op", [])
            for server, value in ((1, "x"), (2, "y")):
                request.add_reply(Reply(server=server, value=value))
                client.raise_event(
                    EV_INVOKE_SUCCESS, request, server, Reply(server=server, value=value)
                )
            assert not request.completed  # split 1-1, no majority yet
            request.add_reply(Reply(server=3, value="y"))
            client.raise_event(
                EV_INVOKE_SUCCESS, request, 3, Reply(server=3, value="y")
            )
            assert request.wait(1.0) == "y"
        finally:
            client.shutdown()
            client.runtime.shutdown()


class TestPassiveRepMechanics:
    def test_primary_skips_known_failed(self):
        platform = FakeClientPlatform(servers=3)
        client = make_client(platform, [PassiveRep()])
        try:
            client.shared.get(SHARED_FAILED_SERVERS).add(1)
            run_request(client)
            assert platform.invocations[0][0] == 2
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_failover_marks_and_retries(self):
        platform = FakeClientPlatform(servers=2)
        platform.fail_servers.add(1)
        client = make_client(platform, [PassiveRep()])
        try:
            request, result = run_request(client)
            assert result == "v"
            assert client.shared.get(SHARED_FAILED_SERVERS) == {1}
            # Attempted 1 (failed), then 2.
            assert [s for s, _, _ in platform.invocations] == [1, 2]
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_all_failed_raises(self):
        platform = FakeClientPlatform(servers=2)
        platform.fail_servers.update({1, 2})
        client = make_client(platform, [PassiveRep()])
        try:
            with pytest.raises(ServerFailedError):
                run_request(client)
        finally:
            client.shutdown()
            client.runtime.shutdown()


class TestRetransmitMechanics:
    class FlakyPlatform(FakeClientPlatform):
        def __init__(self, fail_first_n):
            super().__init__(servers=1)
            self.remaining_failures = fail_first_n

        def invoke_server(self, server, request):
            self.invocations.append((server, request.operation, list(request.get_params())))
            if self.remaining_failures > 0:
                self.remaining_failures -= 1
                raise CommunicationError("flaky")
            return "ok"

    def test_retries_until_success(self):
        platform = self.FlakyPlatform(fail_first_n=2)
        client = make_client(platform, [Retransmit(max_attempts=3)])
        try:
            request, result = run_request(client, operation="op", params=())
            assert result == "ok"
            assert len(platform.invocations) == 3
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_attempt_budget_respected(self):
        platform = self.FlakyPlatform(fail_first_n=10)
        client = make_client(platform, [Retransmit(max_attempts=3)])
        try:
            with pytest.raises(CommunicationError):
                run_request(client, operation="op", params=())
            assert len(platform.invocations) == 3
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_server_failed_not_retried(self):
        platform = FakeClientPlatform(servers=1)
        platform.fail_servers.add(1)

        original = platform.invoke_server

        def failing(server, request):
            original(server, request)

        platform.invoke_server = failing
        client = make_client(platform, [Retransmit(max_attempts=5)])
        try:
            # FakeClientPlatform raises plain CommunicationError; swap in a
            # ServerFailedError via the scripted set + custom platform:
            class Dead(FakeClientPlatform):
                def invoke_server(self, server, request):
                    self.invocations.append((server, request.operation, []))
                    raise ServerFailedError("host down")

            dead = Dead(servers=1)
            client2 = make_client(dead, [Retransmit(max_attempts=5)])
            try:
                with pytest.raises(ServerFailedError):
                    run_request(client2, operation="op", params=())
                assert len(dead.invocations) == 1  # no retry on dead host
            finally:
                client2.shutdown()
                client2.runtime.shutdown()
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_invalid_max_attempts(self):
        with pytest.raises(ValueError):
            Retransmit(max_attempts=0)


class TestBaseHandlersAreLast:
    def test_client_base_orders(self):
        platform = FakeClientPlatform()
        client = make_client(platform, [])
        try:
            for event in (EV_NEW_REQUEST, EV_READY_TO_SEND, EV_INVOKE_SUCCESS, EV_INVOKE_FAILURE):
                orders = [b.order for b in client.event(event).bindings()]
                assert orders and all(o == ORDER_LAST for o in orders), event
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_server_request_priority_default(self):
        platform = FakeServerPlatform()
        server = CactusServer.with_base(platform)
        try:
            request = Request("obj", "poke", [])
            server.cactus_invoke(request)
            assert request.priority == 5
        finally:
            server.shutdown()
            server.runtime.shutdown()
