"""Tests for event statistics and logging conventions."""

import logging

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.cactus.composite import CompositeProtocol
from repro.util.log import get_logger


class TestEventStats:
    def test_raise_counts(self):
        composite = CompositeProtocol("stats")
        try:
            composite.bind("a", lambda occ: composite.raise_event("b"))
            composite.bind("b", lambda occ: None)
            for _ in range(3):
                composite.raise_event("a")
            stats = composite.event_stats()
            assert stats == {"a": 3, "b": 3}
            composite.reset_event_stats()
            assert composite.event_stats() == {}
        finally:
            composite.shutdown()
            composite.runtime.shutdown()

    def test_pipeline_stats_end_to_end(self, deployment):
        skeletons = deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        server = skeletons[0].cactus_server
        client = stub.cactus_client
        server.reset_event_stats()
        client.reset_event_stats()
        for _ in range(4):
            stub.get_balance()
        assert client.event_stats()["newRequest"] == 4
        assert client.event_stats()["invokeSuccess"] == 4
        assert server.event_stats()["newServerRequest"] == 4
        assert server.event_stats()["invokeReturn"] == 4


class TestLogging:
    def test_namespace_and_null_handler(self):
        logger = get_logger("qos.passive")
        assert logger.name == "repro.qos.passive"
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_failover_logs_warning(self, deployment, caplog):
        from repro.qos import PassiveRep, PassiveRepServer

        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=2,
            server_micro_protocols=lambda: [PassiveRepServer()],
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=lambda: [PassiveRep()]
        )
        stub.set_balance(1.0)
        deployment.crash_replica("acct", 1)
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert stub.get_balance() == 1.0
        assert any("failing over" in rec.message for rec in caplog.records)

    def test_admission_rejection_logs_warning(self, deployment, caplog):
        from repro.qos.extensions import AdmissionControl

        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            server_micro_protocols=lambda: [
                AdmissionControl(max_rate=1e-9, burst=1e-9, exempt_high_priority=False)
            ],
        )
        stub = deployment.client_stub("acct", bank_interface())
        with caplog.at_level(logging.WARNING, logger="repro"):
            with pytest.raises(Exception):
                stub.get_balance()
        assert any("admission control shed" in rec.message for rec in caplog.records)
