"""Unit tests for latches, futures, priorities, and the priority executor."""

import threading
import time

import pytest

from repro.util.concurrency import (
    DEFAULT_PRIORITY,
    CountDownLatch,
    PriorityExecutor,
    ResultFuture,
    current_thread_priority,
    set_thread_priority,
    thread_priority,
)
from repro.util.errors import TimeoutError_


class TestCountDownLatch:
    def test_wait_returns_after_countdown(self):
        latch = CountDownLatch(2)
        latch.count_down()
        assert not latch.wait(timeout=0.01)
        latch.count_down()
        assert latch.wait(timeout=0.01)

    def test_zero_count_is_immediately_open(self):
        assert CountDownLatch(0).wait(timeout=0.01)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CountDownLatch(-1)

    def test_extra_countdowns_are_harmless(self):
        latch = CountDownLatch(1)
        latch.count_down()
        latch.count_down()
        assert latch.count == 0

    def test_wait_from_other_thread(self):
        latch = CountDownLatch(1)
        result = []
        thread = threading.Thread(target=lambda: result.append(latch.wait(2.0)))
        thread.start()
        latch.count_down()
        thread.join(timeout=2.0)
        assert result == [True]


class TestResultFuture:
    def test_result_roundtrip(self):
        future = ResultFuture()
        assert future.set_result(42)
        assert future.done()
        assert future.result(0.1) == 42

    def test_first_completion_wins(self):
        future = ResultFuture()
        assert future.set_result(1)
        assert not future.set_result(2)
        assert not future.set_exception(RuntimeError("late"))
        assert future.result(0.1) == 1

    def test_exception_is_raised(self):
        future = ResultFuture()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.result(0.1)

    def test_timeout(self):
        with pytest.raises(TimeoutError_):
            ResultFuture().result(timeout=0.01)


class TestThreadPriority:
    def test_default(self):
        assert current_thread_priority() == DEFAULT_PRIORITY

    def test_set_and_clamp(self):
        set_thread_priority(7)
        assert current_thread_priority() == 7
        set_thread_priority(99)
        assert current_thread_priority() == 10
        set_thread_priority(-5)
        assert current_thread_priority() == 1
        set_thread_priority(DEFAULT_PRIORITY)

    def test_context_manager_restores(self):
        set_thread_priority(4)
        with thread_priority(9):
            assert current_thread_priority() == 9
        assert current_thread_priority() == 4
        set_thread_priority(DEFAULT_PRIORITY)


class TestPriorityExecutor:
    def test_runs_submitted_work(self):
        executor = PriorityExecutor(workers=2)
        try:
            assert executor.submit(lambda x: x * 2, 21).result(2.0) == 42
        finally:
            executor.shutdown()

    def test_exceptions_reach_future(self):
        executor = PriorityExecutor(workers=1)
        try:
            future = executor.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result(2.0)
        finally:
            executor.shutdown()

    def test_high_priority_runs_first(self):
        executor = PriorityExecutor(workers=1)
        order = []
        gate = threading.Event()
        try:
            # Occupy the single worker so later submissions queue.
            blocker = executor.submit(gate.wait, 2.0)
            time.sleep(0.05)
            lows = [executor.submit(order.append, f"low{i}", priority=2) for i in range(3)]
            high = executor.submit(order.append, "high", priority=9)
            gate.set()
            high.result(2.0)
            for f in lows:
                f.result(2.0)
            blocker.result(2.0)
            assert order[0] == "high"
        finally:
            executor.shutdown()

    def test_workers_adopt_submission_priority(self):
        executor = PriorityExecutor(workers=1)
        try:
            seen = executor.submit(current_thread_priority, priority=8).result(2.0)
            assert seen == 8
        finally:
            executor.shutdown()

    def test_priority_defaults_to_submitter(self):
        executor = PriorityExecutor(workers=1)
        try:
            with thread_priority(3):
                future = executor.submit(current_thread_priority)
            assert future.result(2.0) == 3
        finally:
            executor.shutdown()

    def test_equal_priority_is_fifo(self):
        executor = PriorityExecutor(workers=1)
        order = []
        gate = threading.Event()
        try:
            executor.submit(gate.wait, 2.0)
            time.sleep(0.05)
            futures = [executor.submit(order.append, i) for i in range(5)]
            gate.set()
            for f in futures:
                f.result(2.0)
            assert order == [0, 1, 2, 3, 4]
        finally:
            executor.shutdown()

    def test_submit_after_shutdown_rejected(self):
        executor = PriorityExecutor(workers=1)
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.submit(lambda: None)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            PriorityExecutor(workers=0)
