"""Fan-out cancellation hygiene at the transport layer (PR 10).

Abandoned correlation ids must not leak waiter entries in either engine's
multiplexed connection — including when the straggler's host crashes
mid-gather — and the non-blocking submit path must put byte-identical
frames on the wire as the blocking path (the differential half of the
scatter-gather acceptance).
"""

import time

import pytest

from repro.core.platform import ScatterGather
from repro.net.chaos import ChaosNetwork, FaultPlan
from repro.net.tcp import TcpNetwork
from repro.util.errors import CommunicationError, ReproError, TimeoutError_

SLOW_PREFIX = b"slow"
SLOW_S = 0.8


def _handler(data: bytes) -> bytes:
    if data.startswith(SLOW_PREFIX):
        time.sleep(SLOW_S)
    return b"re:" + data


def _pending_count(connection) -> int:
    # Both engines expose their correlation-id waiter map as ``_pending``;
    # reading its size without the guarding lock is fine for polling.
    return len(connection._pending)


def _poll(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.mark.parametrize("engine", ["threaded", "async"])
class TestAbandonReclaimsWaiters:
    @pytest.fixture
    def network(self, engine):
        net = TcpNetwork(engine=engine)
        yield net
        net.close()

    @pytest.fixture
    def connection(self, network):
        network.host("srv").listen("svc", _handler)
        conn = network.host("cli").connect("srv/svc")
        yield conn
        conn.close()

    def test_abandoned_id_does_not_leak(self, connection):
        # Fast first: the threaded server may run handlers inline in arrival
        # order, so a leading straggler would head-of-line block the reply
        # we gather (scheduling noise, not the property under test).
        fast = connection.call_async(b"fast-1")
        assert fast.result(timeout=5.0) == b"re:fast-1"
        slow = connection.call_async(SLOW_PREFIX + b"-x")
        assert _pending_count(connection) >= 1  # the straggler's entry
        slow.abandon()
        assert _poll(lambda: _pending_count(connection) == 0)
        # The stream stays framed: the straggler's late reply is discarded
        # on arrival and the connection keeps serving.
        assert connection.call(b"fast-2", timeout=5.0) == b"re:fast-2"
        time.sleep(SLOW_S + 0.3)  # outlive the late reply
        assert connection.call(b"fast-3", timeout=5.0) == b"re:fast-3"
        assert _pending_count(connection) == 0

    def test_scatter_abandon_rest_drains_the_map(self, connection):
        scatter = ScatterGather()
        for i in range(2):
            scatter.submit(i, lambda i=i: connection.call_async(b"fast-%d" % i))
        scatter.submit("slow", lambda: connection.call_async(SLOW_PREFIX + b"-y"))
        gathered = [scatter.next_outcome(timeout=5.0) for _ in range(2)]
        assert {o.key for o in gathered} == {0, 1}
        assert all(o.ok for o in gathered)
        scatter.abandon_rest()
        assert scatter.next_outcome() is None
        assert _poll(lambda: _pending_count(connection) == 0)
        assert connection.call(b"after", timeout=5.0) == b"re:after"

    def test_straggler_crash_mid_gather_settles_and_drains(self, network, connection):
        slow = connection.call_async(SLOW_PREFIX + b"-z")
        assert _poll(lambda: _pending_count(connection) >= 1)
        network.crash("srv")
        # The crash settles the in-flight branch with a delivery error and
        # reclaims its waiter entry — no zombie correlation ids.
        with pytest.raises((CommunicationError, TimeoutError_)):
            slow.result(timeout=5.0)
        assert _poll(lambda: _pending_count(connection) == 0)
        network.recover("srv")
        # Recovery re-resolves through the name table on the next call.
        assert _poll_call(connection, b"back") == b"re:back"
        assert _pending_count(connection) == 0


def _poll_call(connection, payload, timeout=5.0):
    """Retry a call across the recovery window (stale socket, re-resolve)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return connection.call(payload, timeout=2.0)
        except ReproError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


class TestWireDifferential:
    def test_async_submit_sends_identical_bytes_as_blocking_call(self):
        """Same payload via call() and call_async(): the server must see
        byte-identical request frames and produce identical replies, on both
        engines — the futures API changes scheduling, never the wire."""
        seen: dict[str, list[bytes]] = {}
        replies: dict[str, list[bytes]] = {}
        payload = b"\x00differential\xffpayload" * 3
        for engine in ("threaded", "async"):
            received: list[bytes] = []

            def recording(data: bytes, received=received) -> bytes:
                received.append(bytes(data))
                return b"ok:" + data

            network = TcpNetwork(engine=engine)
            try:
                network.host("srv").listen("svc", recording)
                conn = network.host("cli").connect("srv/svc")
                sync_reply = conn.call(payload, timeout=5.0)
                async_reply = conn.call_async(payload).result(timeout=5.0)
                conn.close()
            finally:
                network.close()
            assert sync_reply == async_reply
            seen[engine] = received
            replies[engine] = [sync_reply, async_reply]
        # Within each engine: both paths delivered the same bytes.
        for engine, received in seen.items():
            assert received == [payload, payload], engine
        # Across engines: identical frames, identical replies.
        assert seen["threaded"] == seen["async"]
        assert replies["threaded"] == replies["async"]

    def test_chaos_decorated_submit_keeps_the_per_call_fault_model(self):
        """The chaos wrapper only implements the blocking call, so its
        call_async inherits the thread-per-call default: submit never
        raises, and the plan's fault verdict lands in the future."""
        network = ChaosNetwork(TcpNetwork(), FaultPlan(seed=7, loss=1.0))
        try:
            network.host("srv").listen("svc", _handler)
            conn = network.host("cli").connect("srv/svc")
            reply = conn.call_async(b"doomed")  # must not raise here
            with pytest.raises(CommunicationError):
                reply.result(timeout=5.0)
        finally:
            network.close()
