"""Unit tests for the QosBuilder configuration tool."""

import pytest

from repro.cactus.config import parse_config_text
from repro.qos.builder import QosBuilder, QosSpec
from repro.util.errors import ConfigurationError

KEY = "0123456789abcdef"


class TestBuilder:
    def test_empty_build(self):
        spec = QosBuilder().build()
        assert spec.client_specs == [] and spec.server_specs == []

    def test_full_stack(self):
        spec = (
            QosBuilder()
            .fault_tolerance("active", acceptance="vote", total_order=True)
            .privacy(key_hex=KEY)
            .integrity(key_hex=KEY)
            .access_control(acl={"set_balance": ["boss"]})
            .timeliness("timed", period=0.05, high_rate_threshold=2)
            .build()
        )
        assert [s.name for s in spec.client_specs] == [
            "ActiveRep",
            "MajorityVote",
            "DesPrivacy",
            "SignedIntegrity",
        ]
        assert [s.name for s in spec.server_specs] == [
            "TotalOrder",
            "DesPrivacyServer",
            "SignedIntegrityServer",
            "AccessControl",
            "TimedSched",
        ]

    def test_passive_pairs_automatically(self):
        spec = QosBuilder().fault_tolerance("passive").build()
        assert [s.name for s in spec.client_specs] == ["PassiveRep"]
        assert [s.name for s in spec.server_specs] == ["PassiveRepServer"]

    def test_factories_build_fresh_instances(self):
        spec = QosBuilder().fault_tolerance("passive").build()
        first = spec.server_factory()()
        second = spec.server_factory()()
        assert first[0] is not second[0]
        assert type(first[0]).__name__ == "PassiveRepServer"

    def test_config_text_roundtrips(self):
        spec = (
            QosBuilder()
            .fault_tolerance("active", acceptance="success")
            .timeliness("queued", high_threshold=7)
            .build()
        )
        reparsed = parse_config_text(spec.server_config_text())
        assert [s.name for s in reparsed] == ["QueuedSched"]
        assert reparsed[0].params == {"high_threshold": 7}
        client_reparsed = parse_config_text(spec.client_config_text())
        assert [s.name for s in client_reparsed] == ["ActiveRep", "FirstSuccess"]

    def test_acceptance_requires_active(self):
        with pytest.raises(ConfigurationError):
            QosBuilder().fault_tolerance("passive", acceptance="vote")

    def test_total_order_requires_active(self):
        with pytest.raises(ConfigurationError):
            QosBuilder().fault_tolerance("none", total_order=True)

    def test_unknown_styles_rejected(self):
        with pytest.raises(ConfigurationError):
            QosBuilder().fault_tolerance("quantum")
        with pytest.raises(ConfigurationError):
            QosBuilder().timeliness("psychic")

    def test_extra_escape_hatch(self):
        spec = QosBuilder().extra("client", "Retransmit", max_attempts=5).build()
        assert spec.client_specs[0].name == "Retransmit"
        assert spec.client_specs[0].params == {"max_attempts": 5}
        with pytest.raises(ConfigurationError):
            QosBuilder().extra("sideways", "Retransmit")

    def test_order_timeout_parameter(self):
        spec = (
            QosBuilder()
            .fault_tolerance("active", total_order=True, order_timeout=0.5)
            .build()
        )
        total = [s for s in spec.server_specs if s.name == "TotalOrder"][0]
        assert total.params == {"order_timeout": 0.5}


class TestBuilderEndToEnd:
    def test_built_configuration_deploys(self):
        from repro.apps.bank import BankAccount, bank_compiled, bank_interface
        from repro.core.service import CqosDeployment
        from repro.net.memory import InMemoryNetwork

        spec = (
            QosBuilder()
            .fault_tolerance("active", acceptance="vote")
            .integrity(key_hex=KEY)
            .build()
        )
        deployment = CqosDeployment(
            InMemoryNetwork(), "rmi", bank_compiled(), request_timeout=10.0
        )
        try:
            deployment.add_replicas(
                "acct",
                BankAccount,
                bank_interface(),
                replicas=3,
                server_micro_protocols=spec.server_factory(),
            )
            stub = deployment.client_stub(
                "acct", bank_interface(), client_micro_protocols=spec.client_factory()
            )
            stub.set_balance(3.0)
            assert stub.get_balance() == 3.0
        finally:
            deployment.close()


class TestDispatchPlanCache:
    def setup_method(self):
        from repro.qos.builder import clear_dispatch_plan_cache

        clear_dispatch_plan_cache()

    def test_identical_combinations_share_one_sealed_spec(self):
        from repro.qos.builder import dispatch_plan_cache_stats

        first = QosBuilder().fault_tolerance("active", acceptance="vote").build()
        second = QosBuilder().fault_tolerance("active", acceptance="vote").build()
        assert first is second
        stats = dispatch_plan_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1 and stats["size"] == 1

    def test_different_combinations_get_different_plans(self):
        active = QosBuilder().fault_tolerance("active").build()
        passive = QosBuilder().fault_tolerance("passive").build()
        assert active is not passive
        assert active.fingerprint() != passive.fingerprint()

    def test_cached_spec_still_yields_fresh_instances(self):
        spec = QosBuilder().fault_tolerance("active", acceptance="vote").build()
        again = QosBuilder().fault_tolerance("active", acceptance="vote").build()
        assert spec is again
        first = spec.client_factory()()
        second = spec.client_factory()()
        assert [type(p) for p in first] == [type(p) for p in second]
        assert all(a is not b for a, b in zip(first, second))

    def test_cache_can_be_bypassed(self):
        cached = QosBuilder().fault_tolerance("passive").build()
        fresh = QosBuilder().fault_tolerance("passive").build(use_cache=False)
        assert fresh is not cached
        assert fresh.fingerprint() == cached.fingerprint()

    def test_unhashable_params_are_fingerprintable(self):
        spec = (
            QosBuilder()
            .access_control(acl={"set_balance": ["boss"]}, default_allow=False)
            .build()
        )
        again = (
            QosBuilder()
            .access_control(acl={"set_balance": ["boss"]}, default_allow=False)
            .build()
        )
        assert spec is again


class TestOverloadDeclarations:
    """The builder's SLO surface (overload-protection stack)."""

    def test_slo_assembles_the_admission_stack(self):
        spec = (
            QosBuilder()
            .slo(slo_p99=0.25, max_inflight=32, shed_policy="low-priority-first")
            .build()
        )
        assert [s.name for s in spec.client_specs] == ["DeadlineBudget"]
        assert [s.name for s in spec.server_specs] == ["DeadlineShed", "AdmissionControl"]
        budget = spec.client_specs[0]
        assert budget.params == {"budget": 0.25}
        admission = spec.server_specs[1]
        assert admission.params["max_concurrent"] == 32
        assert admission.params["deadline_aware"] is True
        assert admission.params["exempt_high_priority"] is True

    def test_full_overload_stack_composition_order(self):
        spec = (
            QosBuilder()
            .slo(slo_p99=0.5, max_rate=100.0, burst=20.0)
            .caching(read_operations=["get_balance"], ttl=0.2)
            .load_balance(poll_interval=1.0, seed=3)
            .build()
        )
        # DESIGN.md §12: budget -> cache -> balancer on the client,
        # shed -> admission -> invalidator -> reporter on the server.
        assert [s.name for s in spec.client_specs] == [
            "DeadlineBudget",
            "ClientCache",
            "LoadBalance",
        ]
        assert [s.name for s in spec.server_specs] == [
            "DeadlineShed",
            "AdmissionControl",
            "CacheInvalidator",
            "LoadReporter",
        ]

    def test_slo_choices_are_part_of_the_plan_fingerprint(self):
        plain = QosBuilder().build()
        with_slo = QosBuilder().slo(max_inflight=8).build()
        assert plain.fingerprint() != with_slo.fingerprint()
        again = QosBuilder().slo(max_inflight=8).build()
        assert with_slo is again  # sealed plan shared through the cache

    def test_unknown_shed_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="shed_policy"):
            QosBuilder().slo(shed_policy="coin-flip")

    def test_deadline_shed_policy_requires_p99(self):
        with pytest.raises(ConfigurationError, match="requires slo_p99"):
            QosBuilder().slo(shed_policy="deadline")

    def test_stale_while_shedding_requires_declared_slo(self):
        with pytest.raises(ConfigurationError, match="slo"):
            QosBuilder().caching(
                read_operations=["get_balance"], stale_while_shedding=True
            )


class TestIncoherentOverloadCombos:
    """The dispatch-plan validator statically rejects incoherent stacks
    with actionable messages (what is wrong + what to change)."""

    def test_cache_with_privacy_but_no_integrity(self):
        with pytest.raises(ConfigurationError, match="add .integrity"):
            (
                QosBuilder()
                .privacy(key_hex=KEY)
                .caching(read_operations=["get_balance"])
                .build()
            )
        # Adding the integrity protocol resolves it, as the message says.
        spec = (
            QosBuilder()
            .privacy(key_hex=KEY)
            .integrity(key_hex=KEY)
            .caching(read_operations=["get_balance"])
            .build()
        )
        assert "ClientCache" in [s.name for s in spec.client_specs]

    def test_cache_bypasses_replication_guarantee(self):
        with pytest.raises(ConfigurationError, match="bypassing the replication"):
            (
                QosBuilder()
                .fault_tolerance("active", acceptance="vote")
                .caching(read_operations=["get_balance"])
                .build()
            )

    def test_balancer_conflicts_with_replication_assigners(self):
        with pytest.raises(ConfigurationError, match="one assignment policy"):
            QosBuilder().fault_tolerance("passive").load_balance().build()

    def test_orphan_invalidator_rejected(self):
        with pytest.raises(ConfigurationError, match="no cache to invalidate"):
            QosBuilder().extra("server", "CacheInvalidator").build()


class TestPlacementDeclarations:
    """Replica placement as a QoS attribute (PR 8, sharded deployments)."""

    def test_placement_lands_on_the_sealed_spec(self):
        spec = QosBuilder().placement(replication_factor=3, policy="spread").build()
        assert spec.placement is not None
        assert spec.placement.replication_factor == 3
        assert spec.placement.policy == "spread"

    def test_placement_joins_the_plan_fingerprint(self):
        plain = QosBuilder().build()
        spread = QosBuilder().placement(replication_factor=3, policy="spread").build()
        ring = QosBuilder().placement(replication_factor=3, policy="ring").build()
        assert plain.fingerprint() != spread.fingerprint()
        assert spread.fingerprint() != ring.fingerprint()

    def test_placement_joins_the_sealed_plan_cache_key(self):
        a = QosBuilder().placement(replication_factor=2).build()
        b = QosBuilder().placement(replication_factor=2).build()
        c = QosBuilder().placement(replication_factor=3).build()
        assert a is b  # identical choices share one sealed spec
        assert a is not c

    def test_sparse_logical_ids_travel_through(self):
        spec = (
            QosBuilder()
            .placement(replication_factor=2, logical_ids=(3, 7))
            .build()
        )
        assert spec.placement.ids() == (3, 7)

    def test_replication_needs_at_least_two_replicas(self):
        with pytest.raises(ConfigurationError, match="at\n?\\s*least 2 replicas"):
            (
                QosBuilder()
                .fault_tolerance("passive")
                .placement(replication_factor=1)
                .build()
            )

    def test_voting_needs_at_least_three_replicas(self):
        with pytest.raises(ConfigurationError, match="replication_factor >= 3"):
            (
                QosBuilder()
                .fault_tolerance("active", acceptance="vote")
                .placement(replication_factor=2)
                .build()
            )

    def test_invalid_policy_rejected_at_declaration(self):
        with pytest.raises(ConfigurationError, match="placement policy"):
            QosBuilder().placement(policy="bogus")
