"""The compiled event-dispatch fast path vs. the reference executor.

Three families of coverage:

- **differential testing**: randomized binding sets (orders, ties, halts,
  halt_alls, unbinds-from-inside-handlers, nested raises) executed through
  the reference executor and the compiled chain must produce identical
  handler sequences and causal-trace edges;
- **snapshot consistency**: a raise in flight observes one point-in-time
  binding set on both executors, even while other threads bind/unbind;
- **mechanics**: escape hatch resolution, occurrence-freelist safety, and
  chain recompilation across dynamic reconfiguration.
"""

import random
import threading

import pytest

from repro.cactus.composite import CompositeProtocol, MicroProtocol
from repro.cactus.events import (
    COMPILED_DISPATCH_ENV,
    compiled_dispatch_default,
)

both_executors = pytest.mark.parametrize(
    "compiled", [True, False], ids=["compiled", "reference"]
)


def make_composite(compiled):
    return CompositeProtocol("fastpath", compiled_dispatch=compiled)


# -- differential testing ----------------------------------------------------

ACTIONS = ("none", "none", "none", "halt", "halt_all", "unbind_self", "unbind_other", "nested", "nested_self")


def random_script(rng, size):
    """One randomized binding set: per handler an order and a side effect."""
    return [
        {
            "order": rng.randrange(0, 101),
            "action": rng.choice(ACTIONS),
            "target": rng.randrange(size),
        }
        for _ in range(size)
    ]


def run_script(script, compiled):
    """Execute a script; return (handler log, causal trace edges)."""
    composite = make_composite(compiled)
    log = []
    bindings = []

    def make_handler(index, spec):
        def handler(occurrence):
            log.append(("run", index, occurrence.args[0]))
            action = spec["action"]
            if action == "halt":
                occurrence.halt()
            elif action == "halt_all":
                occurrence.halt_all()
            elif action == "unbind_self":
                bindings[index].unbind()
            elif action == "unbind_other":
                bindings[spec["target"]].unbind()
            elif action == "nested":
                composite.raise_event("inner", occurrence.args[0])
            elif action == "nested_self" and occurrence.args[0] < 2:
                composite.raise_event("ev", occurrence.args[0] + 1)

        return handler

    for index, spec in enumerate(script):
        bindings.append(
            composite.bind("ev", make_handler(index, spec), order=spec["order"])
        )
    composite.bind("inner", lambda occ: log.append(("inner", occ.args[0])))
    composite.enable_tracing()
    try:
        composite.raise_event("ev", 0)
        return list(log), composite.trace_edges()
    finally:
        composite.shutdown()
        composite.runtime.shutdown()


@pytest.mark.parametrize("seed", range(60))
def test_differential_random_binding_sets(seed):
    """Compiled and reference executors agree on every randomized script."""
    rng = random.Random(seed)
    script = random_script(rng, rng.randrange(1, 10))
    compiled_log, compiled_edges = run_script(script, compiled=True)
    reference_log, reference_edges = run_script(script, compiled=False)
    assert compiled_log == reference_log
    assert compiled_edges == reference_edges


# -- snapshot consistency under concurrency ----------------------------------


@both_executors
def test_inflight_raise_sees_point_in_time_snapshot(compiled):
    """Binds/unbinds racing an in-flight raise do not leak into it."""
    composite = make_composite(compiled)
    try:
        in_handler = threading.Event()
        release = threading.Event()
        ran = []

        def first(occurrence):
            ran.append("first")
            in_handler.set()
            assert release.wait(5.0)

        late_binding = composite.bind("ev", lambda occ: ran.append("late"), order=50)
        composite.bind("ev", first, order=10)
        raiser = threading.Thread(target=composite.raise_event, args=("ev",))
        raiser.start()
        assert in_handler.wait(5.0)
        # The raise is parked inside its first handler.  A binding added
        # now must not run in this raise; one removed now must not either
        # (both executors re-check liveness per activation).
        composite.bind("ev", lambda occ: ran.append("new"), order=60)
        late_binding.unbind()
        release.set()
        raiser.join(5.0)
        assert not raiser.is_alive()
        assert ran == ["first"]
        # The next raise observes the post-mutation set.
        ran.clear()
        composite.raise_event("ev")
        assert ran == ["first", "new"]
    finally:
        release.set()
        composite.shutdown()
        composite.runtime.shutdown()


@both_executors
def test_concurrent_bind_unbind_stress(compiled):
    """Raises stay well-ordered while other threads churn the binding set."""
    composite = make_composite(compiled)
    try:
        stop = threading.Event()
        failures = []
        barrier = threading.Barrier(3)

        def churn(seed):
            rng = random.Random(seed)
            mine = []
            barrier.wait(5.0)
            while not stop.is_set():
                order = rng.randrange(0, 101)
                mine.append(
                    composite.bind(
                        "ev",
                        lambda occ, o: occ.args[0].append(o),
                        order=order,
                        static_args=(order,),
                    )
                )
                if len(mine) > 8:
                    mine.pop(rng.randrange(len(mine))).unbind()
            for binding in mine:
                binding.unbind()

        workers = [threading.Thread(target=churn, args=(s,)) for s in (1, 2)]
        for worker in workers:
            worker.start()
        barrier.wait(5.0)
        for _ in range(300):
            sink = []
            composite.raise_event("ev", sink)
            if sink != sorted(sink):
                failures.append(sink)
        stop.set()
        for worker in workers:
            worker.join(5.0)
        assert failures == []
    finally:
        stop.set()
        composite.shutdown()
        composite.runtime.shutdown()


# -- escape hatch ------------------------------------------------------------


class TestEscapeHatch:
    def test_env_disables_compiled_dispatch(self, monkeypatch):
        monkeypatch.setenv(COMPILED_DISPATCH_ENV, "0")
        assert not compiled_dispatch_default()
        composite = CompositeProtocol("hatch")
        try:
            assert not composite.compiled_dispatch
            assert not composite.event("ev").compiled
        finally:
            composite.runtime.shutdown()

    def test_env_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv(COMPILED_DISPATCH_ENV, raising=False)
        assert compiled_dispatch_default()
        composite = CompositeProtocol("hatch")
        try:
            assert composite.compiled_dispatch
            assert composite.event("ev").compiled
        finally:
            composite.runtime.shutdown()

    def test_explicit_choice_overrides_env(self, monkeypatch):
        monkeypatch.setenv(COMPILED_DISPATCH_ENV, "0")
        composite = CompositeProtocol("hatch", compiled_dispatch=True)
        try:
            assert composite.event("ev").compiled
        finally:
            composite.runtime.shutdown()


# -- occurrence freelist -----------------------------------------------------


class TestOccurrenceFreelist:
    def test_blocking_raise_recycles_unreferenced_occurrence(self):
        from repro.cactus.events import _occ_pool

        composite = make_composite(True)
        try:
            seen = []
            composite.bind("ev", lambda occ: seen.append(id(occ)))
            pool = _occ_pool()
            pool.clear()
            composite.raise_event("ev")
            assert len(pool) == 1  # parked, with its references dropped
            assert pool[0].event is None and pool[0].args == ()
            # Keep only the id: holding the object itself would raise its
            # refcount and (correctly) veto recycling it again.
            parked_id = id(pool[0])
            composite.raise_event("ev")
            assert seen[1] == parked_id  # same slab object, reinitialized
            assert [id(occ) for occ in pool] == [parked_id]  # re-parked
        finally:
            composite.runtime.shutdown()

    def test_stashed_occurrence_is_never_recycled(self):
        composite = make_composite(True)
        try:
            stash = []
            composite.bind("ev", stash.append)
            composite.raise_event("ev", "payload")
            composite.raise_event("ev", "other")
            assert stash[0] is not stash[1]
            # The stashed object keeps its state: nothing reset or reused it.
            assert stash[0].args == ("payload",)
            assert stash[0].event is composite.event("ev")
            assert stash[1].args == ("other",)
        finally:
            composite.runtime.shutdown()

    def test_async_occurrences_are_not_recycled(self):
        composite = make_composite(True)
        try:
            composite.bind("ev", lambda occ: None)
            first = composite.raise_event("ev", "a", mode="async").result(2.0)
            second = composite.raise_event("ev", "b", mode="async").result(2.0)
            assert first is not second
            assert first.args == ("a",)
            assert second.args == ("b",)
        finally:
            composite.runtime.shutdown()


# -- dynamic reconfiguration -------------------------------------------------


class Tagger(MicroProtocol):
    def __init__(self, tag, log):
        super().__init__(name=f"tagger-{tag}")
        self._tag = tag
        self._log = log

    def start(self):
        self.bind("ev", lambda occ: self._log.append(self._tag), order=self._tag)


@both_executors
def test_dynamic_reconfiguration_recompiles_chain(compiled):
    """Loading/unloading micro-protocols invalidates the compiled chain."""
    composite = make_composite(compiled)
    try:
        log = []
        composite.add_micro_protocol(Tagger(1, log))
        composite.raise_event("ev")
        composite.add_micro_protocol(Tagger(2, log))
        composite.raise_event("ev")
        composite.remove_micro_protocol("tagger-1")
        composite.raise_event("ev")
        assert log == [1, 1, 2, 2]
    finally:
        composite.shutdown()
        composite.runtime.shutdown()
