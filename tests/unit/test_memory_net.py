"""Unit tests for the in-memory network and its fault injection."""

import threading

import pytest

from repro.net.memory import InMemoryNetwork
from repro.util.clock import VirtualClock
from repro.util.errors import CommunicationError, ServerFailedError


@pytest.fixture
def net():
    network = InMemoryNetwork()
    yield network
    network.close()


def echo_listener(net, host_name="server", service="echo"):
    return net.host(host_name).listen(service, lambda d: b"echo:" + d)


class TestDelivery:
    def test_request_reply(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"hi") == b"echo:hi"

    def test_no_listener(self, net):
        conn = net.host("client").connect("server/none")
        with pytest.raises(CommunicationError, match="no listener"):
            conn.call(b"x")

    def test_duplicate_address_rejected(self, net):
        echo_listener(net)
        with pytest.raises(CommunicationError, match="already in use"):
            echo_listener(net)

    def test_listener_close_frees_address(self, net):
        listener = echo_listener(net)
        listener.close()
        echo_listener(net)  # no error

    def test_closed_connection_rejected(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        conn.close()
        with pytest.raises(CommunicationError, match="closed"):
            conn.call(b"x")

    def test_malformed_address(self, net):
        with pytest.raises(ValueError):
            net.host("client").connect("no-service-part")

    def test_message_count(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        before = net.message_count
        conn.call(b"1")
        conn.call(b"2")
        assert net.message_count - before == 4  # 2 requests + 2 replies

    def test_concurrent_calls(self, net):
        echo_listener(net)
        errors = []

        def worker(i):
            conn = net.host(f"client-{i}").connect("server/echo")
            for j in range(20):
                if conn.call(b"%d" % j) != b"echo:%d" % j:
                    errors.append((i, j))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors


class TestFaultInjection:
    def test_crash_and_recover(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        net.crash("server")
        assert net.is_crashed("server")
        with pytest.raises(ServerFailedError):
            conn.call(b"x")
        net.recover("server")
        assert conn.call(b"y") == b"echo:y"

    def test_crashed_source_cannot_send(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        net.crash("client")
        with pytest.raises(ServerFailedError):
            conn.call(b"x")

    def test_partition(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        net.partition([["client"], ["server"]])
        with pytest.raises(CommunicationError, match="partition"):
            conn.call(b"x")
        net.heal()
        assert conn.call(b"y") == b"echo:y"

    def test_partition_same_group_ok(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        net.partition([["client", "server"], ["lonely"]])
        assert conn.call(b"z") == b"echo:z"

    def test_loss(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        net.set_loss(1.0, seed=1)
        with pytest.raises(CommunicationError, match="lost"):
            conn.call(b"x")
        net.set_loss(0.0)
        assert conn.call(b"y") == b"echo:y"

    def test_loss_probability_validated(self, net):
        with pytest.raises(ValueError):
            net.set_loss(1.5)

    def test_loss_is_seeded_and_partial(self, net):
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        net.set_loss(0.5, seed=42)
        outcomes = []
        for _ in range(50):
            try:
                conn.call(b"p")
                outcomes.append(True)
            except CommunicationError:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)


class TestLatency:
    def test_latency_charged_on_clock(self):
        clock = VirtualClock()
        net = InMemoryNetwork(clock=clock, latency=0.1)
        echo_listener(net)
        conn = net.host("client").connect("server/echo")
        result = []
        thread = threading.Thread(target=lambda: result.append(conn.call(b"x")))
        thread.start()
        # Two messages (request + reply), 0.1 each.
        for _ in range(200):
            if clock.pending_sleepers():
                break
            threading.Event().wait(0.005)
        clock.advance(0.1)  # releases the request leg
        for _ in range(200):
            if clock.pending_sleepers():
                break
            threading.Event().wait(0.005)
        clock.advance(0.1)  # releases the reply leg
        thread.join(timeout=5)
        assert result == [b"echo:x"]
