"""Unit tests for the routing layer (PR 8): ring, views, router, deltas."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.routing import (
    DirectoryView,
    Placement,
    ServerGroup,
    ShardRouter,
)
from repro.core.routing.ring import HashRing, stable_hash
from repro.util.errors import ConfigurationError

KEYS = [f"obj-{k}" for k in range(1000)]


def make_view(groups=(("a", (1, 2)), ("b", (3, 4)), ("c", (5, 6))), **kwargs):
    kwargs.setdefault("version", 1)
    return DirectoryView(
        groups=tuple(ServerGroup(name, members) for name, members in groups),
        **kwargs,
    )


# -- consistent-hash ring ------------------------------------------------------


class TestHashRing:
    def test_owner_is_deterministic_across_instances(self):
        first = HashRing(["a", "b", "c"], vnodes=64)
        second = HashRing(["c", "b", "a"], vnodes=64)  # order must not matter
        assert [first.owner(k) for k in KEYS] == [second.owner(k) for k in KEYS]

    def test_every_group_owns_a_share(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        shares = {g: 0 for g in ring.groups}
        for key in KEYS:
            shares[ring.owner(key)] += 1
        for group, share in shares.items():
            # 64 vnodes keep arcs near-equal; a third +/- a wide margin.
            assert 100 < share < 600, f"group {group} owns {share}/1000 keys"

    def test_adding_a_group_remaps_only_its_arcs(self):
        before = HashRing(["a", "b", "c"], vnodes=64)
        after = before.with_group("d")
        moved = sum(1 for k in KEYS if before.owner(k) != after.owner(k))
        # Only keys on arcs captured by "d" move, and they move *to* "d".
        assert 0 < moved < 500
        for key in KEYS:
            if before.owner(key) != after.owner(key):
                assert after.owner(key) == "d"

    def test_removing_a_group_strands_no_keys(self):
        before = HashRing(["a", "b", "c"], vnodes=64)
        after = before.without_group("b")
        for key in KEYS:
            owner = after.owner(key)
            assert owner in ("a", "c")
            if before.owner(key) != "b":
                assert owner == before.owner(key)

    def test_owners_walk_is_distinct_and_owner_first(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        for key in KEYS[:50]:
            walk = ring.owners(key, 3)
            assert len(set(walk)) == len(walk) == 3
            assert walk[0] == ring.owner(key)

    def test_stable_hash_is_process_independent(self):
        # A literal value pins the function: any change to the hash would
        # silently remap every deployed object space.
        assert stable_hash("obj-0") == 0x42BA8A16F2AAD336
        assert stable_hash("obj-0") != stable_hash("obj-1")


# -- directory views -----------------------------------------------------------


class TestDirectoryView:
    def test_views_are_immutable(self):
        view = make_view()
        with pytest.raises(dataclasses.FrozenInstanceError):
            view.version = 99

    def test_builders_bump_version(self):
        view = make_view()
        grown = view.with_group(ServerGroup("d", (7,)))
        assert grown.version == view.version + 1
        placed = grown.with_placement("obj-1", Placement(replication_factor=2))
        assert placed.version == grown.version + 1
        failed = placed.with_failed({3})
        assert failed.version == placed.version + 1
        # The original snapshot is untouched throughout.
        assert view.version == 1 and not view.failed

    def test_with_failed_is_a_noop_on_equal_sets(self):
        view = make_view().with_failed({3})
        assert view.with_failed({3}) is view

    def test_unsharded_view_refuses_assignments(self):
        with pytest.raises(ConfigurationError):
            DirectoryView().assignments("obj-1")

    def test_assignments_use_distinct_members(self):
        view = make_view(
            default_placement=Placement(replication_factor=3, policy="spread")
        )
        for key in KEYS[:100]:
            members = [m for _, m in view.assignments(key)]
            assert len(set(members)) == 3

    def test_spread_uses_distinct_groups(self):
        view = make_view(
            default_placement=Placement(replication_factor=3, policy="spread")
        )
        for key in KEYS[:100]:
            assert len(view.owner_groups(key)) == 3

    def test_ring_policy_packs_into_owner_group_first(self):
        view = make_view(
            default_placement=Placement(replication_factor=2, policy="ring")
        )
        for key in KEYS[:100]:
            owner = view.ring.owner(key)
            members = {m for _, m in view.assignments(key)}
            # Both replicas fit in the 2-member owner group.
            assert members == set(view.group(owner).members)

    def test_ring_policy_remaps_minimally_on_group_add(self):
        # The consistent-hashing property end to end: growing the fleet by
        # one group of four moves only the keys on the arcs it captured
        # (~1/4), not the near-total remap a pool-wide rotation would cause.
        before = make_view()
        after = before.with_group(ServerGroup("d", (7, 8)))
        moved = sum(
            1 for k in KEYS if before.assignments(k) != after.assignments(k)
        )
        assert 0 < moved < 400
        for key in KEYS:
            if before.assignments(key) != after.assignments(key):
                assert after.assignments(key)[0][1] in (7, 8)

    def test_ring_policy_balances_members_within_the_owner_group(self):
        counts: dict[int, int] = {}
        view = make_view()
        for key in KEYS:
            member = view.assignments(key)[0][1]
            counts[member] = counts.get(member, 0) + 1
        assert set(counts) == {1, 2, 3, 4, 5, 6}
        for member, count in counts.items():
            assert 60 < count < 350, f"member {member} holds {count}/1000"

    def test_pinned_policy_stays_on_named_groups(self):
        view = make_view(
            default_placement=Placement(
                replication_factor=2, policy="pinned", groups=("b",)
            )
        )
        for key in KEYS[:20]:
            assert view.owner_groups(key) == ("b",)

    def test_sparse_logical_ids(self):
        placement = Placement(replication_factor=2, logical_ids=(3, 7))
        view = make_view(default_placement=placement)
        assert view.replicas_for("obj-1") == (3, 7)
        assert [logical for logical, _ in view.assignments("obj-1")] == [3, 7]

    def test_placement_validation(self):
        with pytest.raises(ConfigurationError):
            Placement(replication_factor=0)
        with pytest.raises(ConfigurationError):
            Placement(policy="pinned")  # needs groups
        with pytest.raises(ConfigurationError):
            Placement(policy="ring", groups=("a",))  # groups only with pinned
        with pytest.raises(ConfigurationError):
            Placement(replication_factor=2, logical_ids=(1,))  # count mismatch
        with pytest.raises(ConfigurationError):
            Placement(replication_factor=2, logical_ids=(1, 1))  # duplicates
        with pytest.raises(ConfigurationError):
            Placement(policy="bogus")

    def test_oversized_placement_is_rejected(self):
        view = make_view(groups=(("a", (1,)),))
        with pytest.raises(ConfigurationError):
            view.with_placement(
                "obj-1", Placement(replication_factor=2)
            ).assignments("obj-1")

    def test_wire_round_trip(self):
        view = make_view(
            default_placement=Placement(replication_factor=2, policy="spread"),
            failed=frozenset({3}),
        ).with_placement(
            "obj-1", Placement(replication_factor=2, policy="pinned", groups=("a",))
        )
        restored = DirectoryView.from_wire(view.to_wire())
        assert restored.version == view.version
        assert restored.failed == view.failed
        for key in KEYS[:50]:
            assert restored.assignments(key) == view.assignments(key)


# -- shard router --------------------------------------------------------------


class TestShardRouter:
    def test_version_regression_raises(self):
        router = ShardRouter(make_view())
        stale = make_view()  # also version 1
        with pytest.raises(ValueError):
            router.apply(stale)

    def test_membership_change_bumps_version_once(self):
        router = ShardRouter(make_view())
        v1 = router.view().version
        changed = router.apply_membership_change({3})
        assert changed.version == v1 + 1
        # Reporting the identical failed set must not spin versions.
        assert router.apply_membership_change({3}).version == changed.version

    def test_live_replicas_excludes_failed_members(self):
        view = make_view(
            default_placement=Placement(replication_factor=3, policy="spread")
        )
        router = ShardRouter(view)
        key = KEYS[0]
        logical, member = router.view().assignments(key)[0]
        router.apply_membership_change({member})
        live = router.live_replicas(key)
        assert logical not in live
        assert len(live) == 2

    def test_lease_pins_old_view_until_released(self):
        router = ShardRouter(make_view())
        drained: list[int] = []
        lease = router.lease()
        old_version = lease.view.version
        router.on_drained(old_version, drained.append)
        router.apply(router.view().with_group(ServerGroup("d", (7,))))
        assert drained == []  # the in-flight invocation still pins it
        assert router.inflight(old_version) == 1
        lease.release()
        assert drained == [old_version]
        assert router.inflight(old_version) == 0
        lease.release()  # idempotent
        assert drained == [old_version]

    def test_on_drained_fires_immediately_when_already_drained(self):
        router = ShardRouter(make_view())
        old_version = router.view().version
        router.apply(router.view().with_group(ServerGroup("d", (7,))))
        drained: list[int] = []
        router.on_drained(old_version, drained.append)
        assert drained == [old_version]

    def test_delta_brings_stale_client_current(self):
        server = ShardRouter(make_view())
        client = ShardRouter(make_view())
        server.apply(server.view().with_group(ServerGroup("d", (7, 8))))
        server.apply(
            server.view().with_placement("obj-1", Placement(replication_factor=2))
        )
        delta = server.delta_since(client.view().version)
        assert delta is not None
        assert client.apply_delta(delta) is True
        assert client.view().version == server.view().version
        assert client.view().assignments("obj-1") == server.view().assignments("obj-1")

    def test_delta_since_none_when_current(self):
        server = ShardRouter(make_view())
        assert server.delta_since(server.view().version) is None

    def test_evicted_history_ships_the_full_view(self):
        from repro.core.routing.router import DELTA_HISTORY

        server = ShardRouter(make_view())
        for i in range(DELTA_HISTORY + 4):
            server.apply(server.view().with_failed({(i % 6) + 1}))
        delta = server.delta_since(1)  # long evicted
        assert "view" in delta
        client = ShardRouter(make_view())
        assert client.apply_delta(delta) is True
        assert client.view().version == server.view().version

    def test_unappliable_delta_reports_fallback(self):
        client = ShardRouter(make_view())
        # Changes-based delta whose base is not the client's version and
        # that carries no full view: the caller must re-bootstrap.
        assert client.apply_delta({"from": 40, "to": 41, "changes": {}}) is False

    def test_stale_delta_is_swallowed(self):
        client = ShardRouter(make_view())
        client.apply(client.view().with_group(ServerGroup("d", (7,))))
        assert client.apply_delta({"from": 0, "to": 1, "changes": {}}) is True
        assert client.view().version == 2
