"""Multiplexed-connection concurrency tests (PR 2).

Covers the v2 correlation-id protocol under concurrent callers sharing one
connection, the shared :class:`~repro.net.pool.ConnectionPool` across crash
and recovery, and deterministic chaos-seeded runs over multiplexed TCP.
"""

import threading

import pytest

from repro.net.chaos import ChaosNetwork, FaultPlan
from repro.net.memory import InMemoryNetwork
from repro.net.pool import ConnectionPool
from repro.net.tcp import TcpNetwork
from repro.util.errors import CommunicationError


def _hammer_one_connection(network, threads: int, calls: int) -> list:
    """N threads interleave calls over ONE shared connection; each call's
    reply must correlate to its own request (no cross-talk)."""
    network.host("server").listen("echo", lambda d: b"R:" + d)
    connection = network.host("client").connect("server/echo")
    mismatches: list = []
    barrier = threading.Barrier(threads)

    def worker(slot: int) -> None:
        barrier.wait()
        for i in range(calls):
            payload = f"{slot}:{i}".encode()
            try:
                reply = connection.call(payload, timeout=10.0)
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                mismatches.append((slot, i, repr(exc)))
                return
            if reply != b"R:" + payload:
                mismatches.append((slot, i, reply))

    workers = [threading.Thread(target=worker, args=(s,)) for s in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=30)
    connection.close()
    return mismatches


class TestMuxCorrelation:
    def test_tcp_threads_share_one_connection(self):
        net = TcpNetwork()
        try:
            assert _hammer_one_connection(net, threads=16, calls=50) == []
        finally:
            net.close()

    def test_memory_threads_share_one_connection(self):
        net = InMemoryNetwork()
        try:
            assert _hammer_one_connection(net, threads=16, calls=50) == []
        finally:
            net.close()

    def test_serialized_baseline_still_correct(self):
        """The v1 one-in-flight mode stays safe under sharing (lock-step)."""
        net = TcpNetwork(multiplex=False)
        try:
            assert _hammer_one_connection(net, threads=8, calls=25) == []
        finally:
            net.close()

    def test_slow_handler_calls_overlap(self):
        """Two 100ms calls over one mux connection take ~one delay, not two."""
        import time

        net = TcpNetwork()
        try:
            net.host("server").listen("slow", lambda d: (time.sleep(0.1), d)[1])
            connection = net.host("client").connect("server/slow")
            # Prime the connection (establish socket, mark the handler slow).
            connection.call(b"prime", timeout=10.0)
            barrier = threading.Barrier(4)

            def one_call() -> None:
                barrier.wait()
                connection.call(b"x", timeout=10.0)

            workers = [threading.Thread(target=one_call) for _ in range(4)]
            start = time.monotonic()
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=10)
            elapsed = time.monotonic() - start
            # Serialized execution would need >= 0.4s; overlapped far less.
            assert elapsed < 0.35, f"calls did not overlap: {elapsed:.3f}s"
            connection.close()
        finally:
            net.close()


class TestConnectionPool:
    def test_reuses_connection_per_address(self):
        net = TcpNetwork()
        try:
            net.host("server").listen("echo", lambda d: d)
            pool = ConnectionPool(net.host("client"))
            first = pool.get("server/echo")
            assert pool.get("server/echo") is first
            stats = pool.stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            pool.close()
        finally:
            net.close()

    def test_lru_eviction_closes_oldest(self):
        net = InMemoryNetwork()
        try:
            for name in ("a", "b", "c"):
                net.host(name).listen("s", lambda d: d)
            pool = ConnectionPool(net.host("client"), max_size=2)
            pool.get("a/s")
            pool.get("b/s")
            pool.get("a/s")  # touch: a becomes MRU
            pool.get("c/s")  # evicts b, the LRU entry
            assert pool.stats()["evictions"] == 1
            assert len(pool) == 2
            pool.close()
        finally:
            net.close()

    def test_survives_crash_and_recovery(self):
        """drop() after a crash discards the dead connection; the next get()
        dials fresh and reaches the recovered server."""
        net = TcpNetwork()
        try:
            net.host("server").listen("echo", lambda d: d)
            pool = ConnectionPool(net.host("client"))
            connection = pool.get("server/echo")
            assert connection.call(b"a", timeout=5.0) == b"a"
            net.crash("server")
            with pytest.raises(CommunicationError):
                connection.call(b"b", timeout=5.0)
            pool.drop("server/echo")
            net.recover("server")
            fresh = pool.get("server/echo")
            assert fresh.call(b"c", timeout=5.0) == b"c"
            assert pool.stats()["misses"] == 2
            pool.close()
        finally:
            net.close()


class TestListenRace:
    def test_duplicate_listen_rejected(self):
        net = TcpNetwork()
        try:
            net.host("server").listen("svc", lambda d: d)
            with pytest.raises(CommunicationError):
                net.host("server").listen("svc", lambda d: d)
        finally:
            net.close()

    def test_racing_listens_yield_exactly_one_winner(self):
        """The check-then-act race: two concurrent listen() calls on one
        address must produce exactly one listener, never two."""
        for _ in range(10):
            net = TcpNetwork()
            try:
                outcomes: list[str] = []
                barrier = threading.Barrier(2)

                def try_listen() -> None:
                    barrier.wait()
                    try:
                        net.host("server").listen("svc", lambda d: d)
                        outcomes.append("ok")
                    except CommunicationError:
                        outcomes.append("rejected")

                racers = [threading.Thread(target=try_listen) for _ in range(2)]
                for r in racers:
                    r.start()
                for r in racers:
                    r.join(timeout=10)
                assert sorted(outcomes) == ["ok", "rejected"]
            finally:
                net.close()

    def test_claim_survives_crash_until_closed(self):
        net = TcpNetwork()
        try:
            net.host("server").listen("svc", lambda d: d)
            net.crash("server")
            with pytest.raises(CommunicationError):
                net.host("server").listen("svc", lambda d: d)
        finally:
            net.close()


def _chaos_mux_run(seed: int, threads: int = 4, calls: int = 30) -> list[list[str]]:
    """Drive N clients (each on its own host => its own deterministic fault
    stream) over chaos-wrapped multiplexed TCP; return per-client outcomes."""
    plan = FaultPlan(seed=seed, loss=0.1, corrupt=0.05)
    net = ChaosNetwork(TcpNetwork(), plan)
    outcomes: list[list[str]] = [[] for _ in range(threads)]
    try:
        net.host("server").listen("echo", lambda d: b"R:" + d)
        connections = [
            net.host(f"client-{slot}").connect("server/echo") for slot in range(threads)
        ]
        barrier = threading.Barrier(threads)

        def worker(slot: int) -> None:
            connection = connections[slot]
            record = outcomes[slot]
            barrier.wait()
            for i in range(calls):
                payload = f"{slot}:{i}".encode()
                try:
                    reply = connection.call(payload, timeout=5.0)
                except CommunicationError:
                    record.append("err")
                else:
                    record.append("ok" if reply == b"R:" + payload else "corrupt")

        workers = [threading.Thread(target=worker, args=(s,)) for s in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=60)
        for connection in connections:
            connection.close()
    finally:
        net.close()
    return outcomes


class TestChaosOverMux:
    def test_seeded_run_is_deterministic(self):
        """Same seed, same per-client outcome sequences — the PR-1 replay
        guarantee holds with multiplexed framing underneath."""
        first = _chaos_mux_run(seed=1234)
        second = _chaos_mux_run(seed=1234)
        assert first == second
        flat = [o for client in first for o in client]
        assert "err" in flat or "corrupt" in flat  # faults actually fired

    def test_different_seeds_differ(self):
        assert _chaos_mux_run(seed=1) != _chaos_mux_run(seed=2)
