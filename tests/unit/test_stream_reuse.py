"""Regression tests for engine-aware CDR output-stream reuse.

PR 2 cached one reusable output stream per *thread*; on an event loop one
thread interleaves many logical marshals, so a stream held across a
suspension point would be shared by two encodes.  These tests pin the
explicit acquire/release discipline that replaced it: under
``asyncio.gather`` every concurrently-held stream is a distinct object with
an isolated buffer, even though every task runs on one loop thread — the
exact interleaving (write, await, write) that corrupts any one-slot
thread-local scheme.
"""

import asyncio

from repro.orb import giop
from repro.serialization.streams import (
    acquire_output_stream,
    release_output_stream,
)


class TestAcquireRelease:
    def test_reuse_after_release(self):
        first = acquire_output_stream()
        first.write_ulong(7)
        release_output_stream(first)
        second = acquire_output_stream()
        # Same object back, reset for the new marshal.
        assert second is first
        assert second.getvalue() == b""
        release_output_stream(second)

    def test_concurrent_holders_get_distinct_streams(self):
        # Two marshals in flight at once — nested encode, or two tasks on
        # one loop thread — must never share a buffer.
        a = acquire_output_stream()
        b = acquire_output_stream()
        assert a is not b
        a.write_ulong(1)
        b.write_ulong(2)
        assert a.getvalue() != b.getvalue()
        release_output_stream(a)
        release_output_stream(b)

    def test_interleaved_marshals_under_gather(self):
        # The async-engine interleaving: every task acquires, writes, yields
        # to the loop (other tasks run and write), writes again, and checks
        # that its buffer holds exactly its own bytes.  A thread-local
        # single-stream cache fails this: all tasks share the loop thread.
        async def marshal(tag: int) -> bytes:
            out = acquire_output_stream()
            try:
                out.write_ulong(tag)
                await asyncio.sleep(0)  # suspension point mid-marshal
                out.write_string(f"payload-{tag}")
                await asyncio.sleep(0)
                out.write_ulong(tag)
                return out.getvalue()
            finally:
                release_output_stream(out)

        async def run() -> list[bytes]:
            return await asyncio.gather(*(marshal(t) for t in range(16)))

        results = asyncio.run(run())
        for tag, encoded in enumerate(results):
            expected = acquire_output_stream()
            try:
                expected.write_ulong(tag)
                expected.write_string(f"payload-{tag}")
                expected.write_ulong(tag)
                assert encoded == expected.getvalue(), f"marshal {tag} corrupted"
            finally:
                release_output_stream(expected)


class TestGiopUnderGather:
    def test_encode_request_is_interleaving_safe(self):
        # Whole-message check: concurrent GIOP encodes on one loop thread
        # produce exactly the bytes sequential encodes produce.
        def message(tag: int) -> giop.RequestMessage:
            return giop.RequestMessage(
                request_id=tag,
                object_key=f"poa|obj-{tag}",
                operation="op",
                arguments=[tag, f"arg-{tag}", [tag] * 3],
                context={"k": tag},
            )

        sequential = [giop.encode_request(message(t)) for t in range(12)]

        async def encode(tag: int) -> bytes:
            await asyncio.sleep(0)
            frame = giop.encode_request(message(tag))
            await asyncio.sleep(0)
            return frame

        async def run() -> list[bytes]:
            return await asyncio.gather(*(encode(t) for t in range(12)))

        assert asyncio.run(run()) == sequential

    def test_encode_decode_round_trip_under_gather(self):
        async def round_trip(tag: int) -> giop.RequestMessage:
            frame = giop.encode_request(
                giop.RequestMessage(
                    request_id=tag,
                    object_key="k",
                    operation="op",
                    arguments=[tag],
                )
            )
            await asyncio.sleep(0)
            return giop.decode_message(frame)

        async def run():
            return await asyncio.gather(*(round_trip(t) for t in range(8)))

        for tag, decoded in enumerate(asyncio.run(run())):
            assert decoded.request_id == tag
            assert decoded.arguments == [tag]
