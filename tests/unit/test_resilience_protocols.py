"""Unit tests for the resilience micro-protocol suite.

Drives the protocols through a real CactusClient pipeline against a
scripted fake platform, so retries, breaker transitions, deadline sheds and
stale serves are observed end-to-end through the event space rather than by
poking handlers directly.
"""

import time

import pytest

from repro.cactus.composite import CompositeProtocol
from repro.cactus.events import ORDER_LAST
from repro.core.client import CactusClient
from repro.core.events import EV_NEW_SERVER_REQUEST
from repro.core.interfaces import ClientPlatform
from repro.core.request import Request
from repro.qos import (
    CircuitBreaker,
    ClientBase,
    DeadlineBudget,
    DeadlineShed,
    Degrade,
    Retransmit,
    RetryBackoff,
    Stale,
    validate_configuration,
)
from repro.qos.extensions.caching import ClientCache
from repro.qos.fault_tolerance.degrade import ATTR_STALE
from repro.util.errors import (
    CircuitOpenError,
    CommunicationError,
    ConfigurationError,
    DeadlineExceededError,
    InvocationError,
    ServerFailedError,
    TimeoutError_,
    classify_error,
    is_retryable,
    rehydrate_system_error,
)


class FakePlatform(ClientPlatform):
    """A scripted platform: each invoke pops the next outcome.

    Outcomes are values (returned) or exceptions (raised).  An exhausted
    script keeps returning ``default``.
    """

    def __init__(self, script=(), default="fallback", servers=1):
        self.script = list(script)
        self.default = default
        self.servers = servers
        self.calls = 0
        self.bind_calls = []
        self.running = {}

    def num_servers(self):
        return self.servers

    def bind(self, server):
        self.bind_calls.append(server)
        self.running[server] = True  # bind clears failure knowledge

    def server_status(self, server):
        return self.running.get(server, True)

    def invoke_server(self, server, request):
        self.calls += 1
        outcome = self.script.pop(0) if self.script else self.default
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


def make_client(platform, protocols):
    return CactusClient(
        platform, protocols + [ClientBase()], request_timeout=10.0
    )


def call(client, operation="op", params=None):
    request = Request("obj", operation, params if params is not None else [1])
    return request, client.cactus_request(request)


class TestErrorClassification:
    def test_is_retryable(self):
        assert is_retryable(CommunicationError("lost"))
        assert is_retryable(TimeoutError_("slow"))
        assert not is_retryable(ServerFailedError("crashed"))
        assert not is_retryable(DeadlineExceededError("late"))
        assert not is_retryable(CircuitOpenError("open"))
        assert not is_retryable(ValueError("app"))
        assert not is_retryable(None)

    def test_classify_error(self):
        assert classify_error(CommunicationError("lost")) == "retryable"
        assert classify_error(ServerFailedError("crashed")) == "fatal"
        assert classify_error(DeadlineExceededError("late")) == "fatal"
        assert classify_error(ValueError("app")) == "application"

    def test_rehydrate_allowlisted_error(self):
        exc = rehydrate_system_error("DeadlineExceededError", "shed")
        assert isinstance(exc, DeadlineExceededError)
        assert "shed" in str(exc)

    def test_rehydrate_unknown_stays_invocation_error(self):
        exc = rehydrate_system_error("KeyError", "nope")
        assert isinstance(exc, InvocationError)

    def test_retransmit_delegates_to_classification(self):
        assert Retransmit._is_transient(CommunicationError("lost"))
        assert not Retransmit._is_transient(ServerFailedError("crashed"))
        assert not Retransmit._is_transient(DeadlineExceededError("late"))
        assert not Retransmit._is_transient(CircuitOpenError("open"))

    def test_retry_protocols_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            validate_configuration(["Retransmit", "RetryBackoff"], [])


class TestRetryBackoff:
    def test_retries_until_success(self):
        platform = FakePlatform(
            [CommunicationError("a"), CommunicationError("b"), "value"]
        )
        retry = RetryBackoff(max_attempts=5, base_delay=0.0, jitter=False)
        client = make_client(platform, [retry])
        request, result = call(client)
        assert result == "value"
        assert platform.calls == 3
        assert request.attempt == 3
        assert retry.stats()["retries"] == 2

    def test_gives_up_after_max_attempts(self):
        platform = FakePlatform([CommunicationError("x")] * 10)
        retry = RetryBackoff(max_attempts=3, base_delay=0.0, jitter=False)
        client = make_client(platform, [retry])
        with pytest.raises(CommunicationError):
            call(client)
        assert platform.calls == 3
        assert retry.stats()["give_ups"] == 1

    def test_fatal_errors_not_retried(self):
        platform = FakePlatform([ServerFailedError("crashed")])
        retry = RetryBackoff(max_attempts=5, base_delay=0.0, jitter=False)
        client = make_client(platform, [retry])
        with pytest.raises(ServerFailedError):
            call(client)
        assert platform.calls == 1
        assert "retries" not in retry.stats()

    def test_retry_budget_bounds_amplification(self):
        platform = FakePlatform([CommunicationError("x")] * 50)
        retry = RetryBackoff(
            max_attempts=10,
            base_delay=0.0,
            jitter=False,
            retry_budget=2.0,
            budget_refill=0.0,
        )
        client = make_client(platform, [retry])
        with pytest.raises(CommunicationError):
            call(client)
        assert platform.calls == 3  # first try + the 2 budgeted retries
        assert retry.stats()["budget_exhausted"] == 1
        assert retry.remaining_budget == 0.0

    def test_successes_refill_the_budget(self):
        platform = FakePlatform(
            [CommunicationError("x"), "ok"], default="ok"
        )
        retry = RetryBackoff(
            max_attempts=10,
            base_delay=0.0,
            jitter=False,
            retry_budget=5.0,
            budget_refill=0.5,
        )
        client = make_client(platform, [retry])
        call(client)  # one retry spends a token, the success refills 0.5
        assert retry.remaining_budget == pytest.approx(4.5)

    def test_abandons_when_deadline_cannot_be_met(self):
        platform = FakePlatform([CommunicationError("x")] * 10)
        retry = RetryBackoff(max_attempts=10, base_delay=0.2, jitter=False)
        client = make_client(platform, [retry])
        request = Request("obj", "op", [1])
        request.deadline = client.runtime.clock.now() + 0.05  # < base_delay
        with pytest.raises(CommunicationError):
            client.cactus_request(request)
        assert platform.calls == 1
        assert retry.stats()["deadline_abandoned"] == 1

    def test_exponential_backoff_without_jitter(self):
        retry = RetryBackoff(max_attempts=6, base_delay=0.1, max_delay=0.5, jitter=False)
        request = Request("obj", "op", [])
        delays = [retry._next_delay(request, 1, n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.5]  # doubling, capped

    def test_jittered_backoff_is_seeded(self):
        a = RetryBackoff(seed=99)._next_delay(Request("o", "op", []), 1, 1)
        b = RetryBackoff(seed=99)._next_delay(Request("o", "op", []), 1, 1)
        assert a == b


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        platform = FakePlatform([CommunicationError("x")] * 10)
        breaker = CircuitBreaker(failure_threshold=3, open_duration=30.0)
        client = make_client(platform, [breaker])
        for _ in range(3):
            with pytest.raises(CommunicationError):
                call(client)
        assert breaker.state(1) == "open"
        assert breaker.stats()["trips"] == 1
        # While open the platform is never touched: fail-fast.
        with pytest.raises(CircuitOpenError):
            call(client)
        assert platform.calls == 3
        assert breaker.stats()["rejected"] == 1

    def test_successes_reset_the_consecutive_count(self):
        platform = FakePlatform(
            [CommunicationError("x"), "ok"] * 5, default="ok"
        )
        breaker = CircuitBreaker(failure_threshold=3, open_duration=30.0)
        client = make_client(platform, [breaker])
        for _ in range(5):
            try:
                call(client)
            except CommunicationError:
                pass
        assert breaker.state(1) == "closed"
        assert "trips" not in breaker.stats()

    def test_half_open_probe_recovers_and_rebinds(self):
        # The server "crashes": status False makes sync_invoker fail fast
        # with ServerFailedError before invoking.
        platform = FakePlatform(default="ok")
        platform.running[1] = False
        breaker = CircuitBreaker(failure_threshold=2, open_duration=0.05)
        client = make_client(platform, [breaker])
        for _ in range(2):
            with pytest.raises(ServerFailedError):
                call(client)
        assert breaker.state(1) == "open"
        time.sleep(0.06)
        # The probe's explicit bind() clears the failure mark (the paper's
        # rebind-after-recovery path), so the invocation goes through.
        _, result = call(client)
        assert result == "ok"
        assert breaker.state(1) == "closed"
        stats = breaker.stats()
        assert stats["probes"] == 1 and stats["recoveries"] == 1

    def test_failed_probe_reopens(self):
        platform = FakePlatform([CommunicationError("x")] * 10)
        breaker = CircuitBreaker(failure_threshold=2, open_duration=0.05)
        client = make_client(platform, [breaker])
        for _ in range(2):
            with pytest.raises(CommunicationError):
                call(client)
        time.sleep(0.06)
        with pytest.raises(CommunicationError):
            call(client)  # the probe itself fails
        assert breaker.state(1) == "open"
        assert breaker.stats()["reopens"] == 1
        with pytest.raises(CircuitOpenError):
            call(client)  # and the breaker is firmly shut again

    def test_own_rejections_do_not_count_as_failures(self):
        platform = FakePlatform([CommunicationError("x")] * 10)
        breaker = CircuitBreaker(failure_threshold=2, open_duration=30.0)
        client = make_client(platform, [breaker])
        for _ in range(2):
            with pytest.raises(CommunicationError):
                call(client)
        for _ in range(5):
            with pytest.raises(CircuitOpenError):
                call(client)
        assert breaker.stats()["trips"] == 1

    def test_error_rate_trip(self):
        # Alternating failures never hit a consecutive threshold of 3 but
        # exceed a 50% error rate over the window.
        platform = FakePlatform(
            [CommunicationError("x"), "ok"] * 10, default="ok"
        )
        breaker = CircuitBreaker(
            failure_threshold=100,
            error_rate_threshold=0.5,
            window=4,
            open_duration=30.0,
        )
        client = make_client(platform, [breaker])
        tripped = False
        for _ in range(8):
            try:
                call(client)
            except CircuitOpenError:
                tripped = True
                break
            except CommunicationError:
                pass
        assert tripped
        assert breaker.stats()["trips"] == 1


class TestDeadlineBudget:
    def test_attaches_deadline(self):
        seen = {}

        class Recording(FakePlatform):
            def invoke_server(self, server, request):
                seen["deadline"] = request.deadline
                return super().invoke_server(server, request)

        platform = Recording(default="ok")
        budget = DeadlineBudget(5.0)
        client = make_client(platform, [budget])
        call(client)
        assert seen["deadline"] is not None
        assert seen["deadline"] > client.runtime.clock.now()
        assert budget.stats()["attached"] == 1

    def test_explicit_deadline_wins(self):
        platform = FakePlatform(default="ok")
        client = make_client(platform, [DeadlineBudget(5.0)])
        request = Request("obj", "op", [1])
        explicit = client.runtime.clock.now() + 123.0
        request.deadline = explicit
        client.cactus_request(request)
        assert request.deadline == explicit

    def test_sheds_expired_request_client_side(self):
        platform = FakePlatform(default="ok")
        budget = DeadlineBudget(5.0)
        client = make_client(platform, [budget])
        request = Request("obj", "op", [1])
        request.deadline = client.runtime.clock.now() - 1.0  # already late
        with pytest.raises(DeadlineExceededError):
            client.cactus_request(request)
        assert platform.calls == 0
        assert budget.stats()["client_sheds"] == 1


class TestDeadlineShed:
    def _shed_composite(self, shed):
        composite = CompositeProtocol("server-test")
        invoked = []
        composite.add_micro_protocol(shed)
        composite.bind(
            EV_NEW_SERVER_REQUEST,
            lambda occ: invoked.append(occ.args[0]),
            order=ORDER_LAST,
        )
        return composite, invoked

    def test_sheds_expired_work_before_the_servant(self):
        shed = DeadlineShed()
        composite, invoked = self._shed_composite(shed)
        request = Request("obj", "op", [1])
        request.deadline = composite.runtime.clock.now() - 0.5
        composite.raise_event(EV_NEW_SERVER_REQUEST, request)
        assert not invoked  # halt_all stopped the base pipeline
        with pytest.raises(DeadlineExceededError):
            request.wait(0.1)
        assert shed.stats()["sheds"] == 1

    def test_live_requests_pass_through(self):
        shed = DeadlineShed()
        composite, invoked = self._shed_composite(shed)
        request = Request("obj", "op", [1])
        request.deadline = composite.runtime.clock.now() + 60.0
        composite.raise_event(EV_NEW_SERVER_REQUEST, request)
        assert invoked == [request]
        assert "sheds" not in shed.stats()

    def test_grace_tolerates_slightly_late_requests(self):
        shed = DeadlineShed(grace=60.0)
        composite, invoked = self._shed_composite(shed)
        request = Request("obj", "op", [1])
        request.deadline = composite.runtime.clock.now() - 0.5  # within grace
        composite.raise_event(EV_NEW_SERVER_REQUEST, request)
        assert invoked == [request]


class TestDegrade:
    def test_serves_last_known_good_on_failure(self):
        platform = FakePlatform(["fresh", CommunicationError("down")])
        degrade = Degrade()
        client = make_client(platform, [degrade])
        _, first = call(client)
        assert first == "fresh"
        request, second = call(client)
        assert second == "fresh"  # stale, but served
        assert request.attributes.get(ATTR_STALE) is True
        assert degrade.stats()["stale_serves"] == 1

    def test_wrap_marks_staleness_in_the_return_value(self):
        platform = FakePlatform(["fresh", CommunicationError("down")])
        client = make_client(platform, [Degrade(wrap=True)])
        _, first = call(client)
        assert first == "fresh"  # normal replies are not wrapped
        _, second = call(client)
        assert second == Stale("fresh")
        assert second.stale

    def test_miss_propagates_the_failure(self):
        platform = FakePlatform([CommunicationError("down")])
        degrade = Degrade()
        client = make_client(platform, [degrade])
        with pytest.raises(CommunicationError):
            call(client)
        assert degrade.stats()["misses"] == 1

    def test_operations_filter(self):
        platform = FakePlatform(["v", CommunicationError("down")])
        degrade = Degrade(operations=("read",))
        client = make_client(platform, [degrade])
        call(client, operation="write")
        with pytest.raises(CommunicationError):
            call(client, operation="write")  # writes never degrade
        assert "stale_serves" not in degrade.stats()

    def test_keyed_by_operation_and_params(self):
        platform = FakePlatform(
            ["for-1", CommunicationError("down"), CommunicationError("down")]
        )
        client = make_client(platform, [Degrade()])
        _, first = call(client, params=[1])
        assert first == "for-1"
        _, stale = call(client, params=[1])
        assert stale == "for-1"
        with pytest.raises(CommunicationError):
            call(client, params=[2])  # different params: no known good

    def test_client_cache_as_fallback_source(self):
        # Populate a ClientCache through its own pipeline first ...
        cache = ClientCache(read_operations=("op",))
        warm_platform = FakePlatform(["cached-value"])
        warm_client = make_client(warm_platform, [cache])
        call(warm_client)
        # ... then a fresh Degrade with no records of its own falls back to it.
        platform = FakePlatform([CommunicationError("down")])
        degrade = Degrade(cache=cache)
        client = make_client(platform, [degrade])
        request, value = call(client)
        assert value == "cached-value"
        assert request.attributes.get(ATTR_STALE) is True

    def test_replicated_failure_must_be_terminal(self):
        # With expected_replies=2, a single failed reply is not terminal:
        # the other replica may still answer, so no stale value is served.
        platform = FakePlatform(["v", CommunicationError("down")], servers=2)
        degrade = Degrade(expected_replies=2)
        client = make_client(platform, [degrade])
        call(client)
        with pytest.raises(CommunicationError):
            call(client)
        assert "stale_serves" not in degrade.stats()


class TestComposedPipeline:
    def test_retry_then_degrade(self):
        """Retries absorb transient loss; degradation absorbs the rest."""
        platform = FakePlatform(
            ["good"] + [CommunicationError("x")] * 10
        )
        retry = RetryBackoff(max_attempts=3, base_delay=0.0, jitter=False)
        degrade = Degrade()
        client = make_client(platform, [retry, degrade])
        _, fresh = call(client)
        assert fresh == "good"
        _, stale = call(client)  # 3 attempts all fail, then stale serve
        assert stale == "good"
        assert platform.calls == 4
        assert retry.stats()["retries"] == 2
        assert degrade.stats()["stale_serves"] == 1

    def test_breaker_rejection_feeds_degrade(self):
        platform = FakePlatform(["good"] + [CommunicationError("x")] * 10)
        breaker = CircuitBreaker(failure_threshold=1, open_duration=30.0)
        degrade = Degrade()
        client = make_client(platform, [breaker, degrade])
        call(client)
        _, stale_after_trip = call(client)  # failure trips the breaker, stale serve
        assert stale_after_trip == "good"
        _, rejected_stale = call(client)  # breaker open: rejected, stale serve
        assert rejected_stale == "good"
        assert platform.calls == 2
        assert breaker.stats()["rejected"] == 1
        assert degrade.stats()["stale_serves"] == 2

    def test_protocol_stats_surface_through_the_composite(self):
        platform = FakePlatform([CommunicationError("x")] * 2, default="ok")
        retry = RetryBackoff(max_attempts=5, base_delay=0.0, jitter=False)
        breaker = CircuitBreaker(failure_threshold=50, open_duration=30.0)
        client = make_client(platform, [breaker, retry])
        call(client)
        stats = client.protocol_stats()
        assert stats["RetryBackoff"]["retries"] == 2
        assert "ClientBase" not in stats  # only protocols that counted
