"""Unit tests for the GIOP-like and JRMP-like wire protocols and IORs."""

import pytest

from repro.idl.compiler import compile_idl
from repro.orb import giop
from repro.orb.ior import IOR, ior_to_string, make_object_key, repository_id, string_to_ior
from repro.rmi import jrmp
from repro.serialization.registry import TypeRegistry
from repro.util.errors import MarshalError


class TestIor:
    def test_string_roundtrip(self):
        ior = IOR("IDL:bank/BankAccount:1.0", "host-1/giop", "poa|oid")
        assert string_to_ior(ior_to_string(ior)) == ior

    def test_components(self):
        ior = IOR("t", "a", make_object_key("my_poa", "my_oid"))
        assert ior.poa_name == "my_poa"
        assert ior.object_id == "my_oid"

    def test_repository_id(self):
        assert repository_id("bank::BankAccount") == "IDL:bank/BankAccount:1.0"

    def test_bad_prefix(self):
        with pytest.raises(MarshalError):
            string_to_ior("NOT-AN-IOR")

    def test_corrupt_hex(self):
        with pytest.raises(MarshalError):
            string_to_ior("IOR:zzzz")

    def test_pipe_in_names_rejected(self):
        with pytest.raises(MarshalError):
            make_object_key("bad|poa", "oid")


class TestGiop:
    def test_request_roundtrip(self):
        message = giop.RequestMessage(
            request_id=7,
            object_key="poa|obj",
            operation="set_balance",
            arguments=[42.0, "x"],
            context={"prio": 9},
            response_expected=True,
        )
        decoded = giop.decode_message(giop.encode_request(message))
        assert decoded == message

    def test_oneway_flag(self):
        message = giop.RequestMessage(1, "k", "ping", [], {}, response_expected=False)
        decoded = giop.decode_message(giop.encode_request(message))
        assert decoded.response_expected is False

    def test_reply_roundtrip_all_statuses(self):
        for status, body in [
            (giop.REPLY_NO_EXCEPTION, 123),
            (giop.REPLY_SYSTEM_EXCEPTION, {"type": "X", "message": "m"}),
        ]:
            decoded = giop.decode_message(
                giop.encode_reply(giop.ReplyMessage(5, status, body))
            )
            assert decoded.status == status and decoded.body == body

    def test_user_exception_body(self):
        compiled = compile_idl("exception Boom { string why; };", TypeRegistry())
        # Register in the global registry for the default-codec path.
        from repro.serialization.registry import global_registry

        compiled2 = compile_idl("exception Boom2 { string why; };")
        exc = compiled2.exceptions["Boom2"](why="w")
        decoded = giop.decode_message(
            giop.encode_reply(giop.ReplyMessage(1, giop.REPLY_USER_EXCEPTION, exc))
        )
        assert decoded.body == exc

    def test_bad_magic(self):
        with pytest.raises(MarshalError, match="magic"):
            giop.decode_message(b"NOPE" + bytes(10))

    def test_bad_version(self):
        frame = bytearray(giop.encode_request(giop.RequestMessage(1, "k", "op", [])))
        frame[4] = 99
        with pytest.raises(MarshalError, match="version"):
            giop.decode_message(bytes(frame))

    def test_unknown_message_type(self):
        frame = bytearray(giop.encode_request(giop.RequestMessage(1, "k", "op", [])))
        frame[5] = 42
        with pytest.raises(MarshalError, match="message type"):
            giop.decode_message(bytes(frame))


class TestJrmp:
    def test_call_roundtrip(self):
        message = jrmp.CallMessage("obj-1", "deposit", [5.0], {"c": "alice"}, oneway=True)
        decoded = jrmp.decode(jrmp.encode_call(message))
        assert decoded == message

    def test_return_value(self):
        decoded = jrmp.decode(jrmp.encode_return(jrmp.ReturnMessage(value=[1, 2])))
        assert decoded.value == [1, 2]
        assert decoded.exception is None and decoded.system_error is None

    def test_throw(self):
        compiled = compile_idl("exception Oof { string m; };")
        exc = compiled.exceptions["Oof"](m="ow")
        decoded = jrmp.decode(jrmp.encode_return(jrmp.ReturnMessage(exception=exc)))
        assert decoded.exception == exc

    def test_system_error(self):
        decoded = jrmp.decode(
            jrmp.encode_return(jrmp.ReturnMessage(system_error={"type": "T", "message": "m"}))
        )
        assert decoded.system_error == {"type": "T", "message": "m"}

    def test_malformed_frame(self):
        from repro.serialization.jser import jser_dumps

        with pytest.raises(MarshalError):
            jrmp.decode(jser_dumps(["not", "a", "dict"]))
        with pytest.raises(MarshalError):
            jrmp.decode(jser_dumps({"k": "mystery"}))
