"""Unit tests for the kernel scatter-gather primitive (PR 10).

Covers the fan-out substrate directly, below any micro-protocol:

- gather-policy parsing (``CQOS_GATHER_POLICY`` grammar);
- ScatterGather completion-order gathering, submit-time failure capture,
  drain detection, whole-gather timeouts, and branch abandonment;
- the latency-EWMA ranking every fan-out consumer orders candidates by.
"""

import threading
import time

import concurrent.futures

import pytest

from repro.core.platform import (
    GATHER_ALL,
    GATHER_FIRST,
    GATHER_QUORUM,
    BranchOutcome,
    ScatterGather,
    parse_gather_policy,
    threaded_reply_future,
)
from repro.net.transport import ReplyFuture
from repro.util.errors import CommunicationError, ConfigurationError, TimeoutError_


class TestParseGatherPolicy:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            (None, (GATHER_ALL, 0)),
            ("", (GATHER_ALL, 0)),
            ("   ", (GATHER_ALL, 0)),
            ("all", (GATHER_ALL, 0)),
            ("first", (GATHER_FIRST, 0)),
            ("First", (GATHER_FIRST, 0)),
            ("quorum", (GATHER_QUORUM, 2)),
            ("quorum:1", (GATHER_QUORUM, 1)),
            ("quorum:3", (GATHER_QUORUM, 3)),
            (" quorum:2 ", (GATHER_QUORUM, 2)),
        ],
    )
    def test_valid_specs(self, spec, expected):
        assert parse_gather_policy(spec) == expected

    @pytest.mark.parametrize("spec", ["majority", "quorum:zero", "quorum:0", "quorum:-1", "2"])
    def test_invalid_specs_are_loud(self, spec):
        with pytest.raises(ConfigurationError):
            parse_gather_policy(spec)


def _pending() -> tuple[concurrent.futures.Future, ReplyFuture]:
    future = concurrent.futures.Future()
    return future, ReplyFuture(future)


class TestScatterGather:
    def test_gathers_in_completion_order(self):
        scatter = ScatterGather()
        futures = {}
        for key in ("a", "b", "c"):
            inner, reply = _pending()
            futures[key] = inner
            scatter.submit(key, lambda reply=reply: reply)
        # Settle out of submission order.
        futures["c"].set_result(3)
        futures["a"].set_result(1)
        first = scatter.next_outcome(timeout=2.0)
        second = scatter.next_outcome(timeout=2.0)
        assert [first.key, second.key] == ["c", "a"]
        assert (first.value, second.value) == (3, 1)
        futures["b"].set_exception(CommunicationError("replica down"))
        third = scatter.next_outcome(timeout=2.0)
        assert third.key == "b" and not third.ok
        assert isinstance(third.error, CommunicationError)
        # Drained: no blocking, just None.
        assert scatter.next_outcome() is None
        assert scatter.remaining() == 0

    def test_submit_time_raise_becomes_branch_outcome(self):
        scatter = ScatterGather()

        def boom():
            raise CommunicationError("endpoint resolution failed")

        scatter.submit(7, boom)
        assert scatter.submitted == 1
        outcome = scatter.next_outcome(timeout=1.0)
        assert outcome.key == 7 and not outcome.ok
        assert isinstance(outcome.error, CommunicationError)
        assert scatter.next_outcome() is None

    def test_empty_scatter_drains_immediately(self):
        scatter = ScatterGather()
        assert scatter.next_outcome() is None
        assert scatter.gather_all() == []

    def test_next_outcome_timeout(self):
        scatter = ScatterGather()
        _, reply = _pending()
        scatter.submit("slow", lambda: reply)
        with pytest.raises(TimeoutError_):
            scatter.next_outcome(timeout=0.05)

    def test_gather_all_bounds_the_whole_gather(self):
        scatter = ScatterGather()
        inner, reply = _pending()
        scatter.submit("fast", lambda: reply)
        _, straggler = _pending()
        scatter.submit("never", lambda: straggler)
        inner.set_result("ok")
        started = time.monotonic()
        with pytest.raises(TimeoutError_):
            scatter.gather_all(timeout=0.2)
        assert time.monotonic() - started < 2.0

    def test_abandon_rest_reclaims_and_drains(self):
        scatter = ScatterGather()
        inner, reply = _pending()
        scatter.submit("done", lambda: reply)
        abandoned = []
        _, straggler = _pending()
        straggler.chain_abandon(lambda: abandoned.append("straggler"))
        scatter.submit("straggler", lambda: straggler)
        inner.set_result("ok")
        assert scatter.next_outcome(timeout=2.0).value == "ok"
        scatter.abandon_rest()
        assert abandoned == ["straggler"]
        assert scatter.next_outcome() is None
        assert scatter.remaining() == 0

    def test_late_signal_after_abandon_is_ignored(self):
        scatter = ScatterGather()
        inner, reply = _pending()
        scatter.submit("late", lambda: reply)
        scatter.abandon_rest()
        inner.cancel()  # abandoned branch settling late
        assert scatter.next_outcome() is None

    def test_concurrent_settles_all_surface(self):
        scatter = ScatterGather()
        barrier = threading.Barrier(8 + 1)

        def branch(i: int):
            def run():
                barrier.wait(timeout=5.0)
                return i

            return threaded_reply_future(run)

        for i in range(8):
            scatter.submit(i, lambda i=i: branch(i))
        barrier.wait(timeout=5.0)
        outcomes = scatter.gather_all(timeout=5.0)
        assert sorted(o.value for o in outcomes) == list(range(8))
        assert all(o.ok for o in outcomes)


class TestThreadedReplyFuture:
    def test_success(self):
        assert threaded_reply_future(lambda: 41 + 1).result(timeout=2.0) == 42

    def test_error(self):
        def fail():
            raise CommunicationError("nope")

        with pytest.raises(CommunicationError):
            threaded_reply_future(fail).result(timeout=2.0)


class TestBranchOutcome:
    def test_ok_and_repr(self):
        good = BranchOutcome(1, "v", None)
        bad = BranchOutcome(2, None, CommunicationError("x"))
        assert good.ok and not bad.ok
        assert "1" in repr(good) and "error" in repr(bad)
