"""ConnectionPool crash-eviction races under concurrent checkout.

Two layers of coverage:

- a deterministic unit test for the ABA eviction race: a caller whose call
  failed on an *old* connection must not evict the fresh replacement
  another caller pooled in the meantime (``drop(address, connection=...)``);
- phase-structured stress over a seeded ChaosNetwork-wrapped TCP transport,
  for BOTH execution engines: while the host is crashed, no checkout may
  complete a call successfully — a crashed host never serves — and after
  recovery the drop-and-retry discipline heals every worker.
"""

import threading

import pytest

from repro.net.chaos import ChaosNetwork, FaultPlan
from repro.net.pool import ConnectionPool
from repro.net.tcp import TcpNetwork
from repro.net.transport import Connection, Host
from repro.util.errors import ReproError


class _StubConnection(Connection):
    def __init__(self):
        self.closed = False

    def call(self, data, timeout=None):
        return data

    def close(self):
        self.closed = True


class _StubHost(Host):
    def __init__(self):
        super().__init__("stub")
        self.opened: list[_StubConnection] = []

    def listen(self, service, handler):  # pragma: no cover - unused
        raise NotImplementedError

    def connect(self, address):
        connection = _StubConnection()
        self.opened.append(connection)
        return connection


class TestAbaEviction:
    def test_drop_with_instance_spares_the_replacement(self):
        host = _StubHost()
        pool = ConnectionPool(host)
        old = pool.get("srv/svc")
        # Another caller already invalidated and re-opened.
        pool.drop("srv/svc")
        fresh = pool.get("srv/svc")
        assert fresh is not old
        # The slow caller reports its failure on the *old* instance: the
        # fresh pooled connection must survive.
        pool.drop("srv/svc", old)
        assert pool.get("srv/svc") is fresh
        assert old.closed and not fresh.closed

    def test_drop_with_instance_closes_unpooled_connection(self):
        host = _StubHost()
        pool = ConnectionPool(host)
        stale = pool.get("srv/svc")
        pool.drop("srv/svc")  # already evicted (and closed)
        replacement = pool.get("srv/svc")
        pool.drop("srv/svc", stale)  # late report on the stale instance
        assert stale.closed
        assert pool.get("srv/svc") is replacement

    def test_plain_drop_still_evicts(self):
        host = _StubHost()
        pool = ConnectionPool(host)
        first = pool.get("srv/svc")
        pool.drop("srv/svc")
        assert first.closed
        assert pool.get("srv/svc") is not first


@pytest.mark.parametrize("engine", ["threaded", "async"])
class TestCrashEvictionStress:
    WORKERS = 8
    CALLS_PER_PHASE = 15

    def test_crashed_host_never_serves_a_checkout(self, engine):
        plan = FaultPlan(seed=42)
        network = ChaosNetwork(TcpNetwork(engine=engine), plan)
        try:
            self._run(network)
        finally:
            network.close()

    def _run(self, network: ChaosNetwork) -> None:
        network.host("srv").listen("svc", lambda d: d)
        pool = ConnectionPool(network.host("cli"))
        address = "srv/svc"
        phase_barrier = threading.Barrier(self.WORKERS + 1)
        # successes[phase] counts calls that returned a (correct) reply.
        successes = [0, 0, 0]
        success_lock = threading.Lock()
        errors: list[BaseException] = []

        def one_call(phase: int) -> None:
            connection = pool.get(address)
            try:
                reply = connection.call(b"ping-%d" % phase, timeout=2.0)
            except ReproError:
                # Crash-aware discipline: evict only the instance that
                # failed, then retry from the pool on the next iteration.
                pool.drop(address, connection)
                return
            assert reply == b"ping-%d" % phase
            with success_lock:
                successes[phase] += 1

        def worker() -> None:
            try:
                for phase in range(3):
                    phase_barrier.wait()
                    for _ in range(self.CALLS_PER_PHASE):
                        one_call(phase)
                    phase_barrier.wait()
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)
                # Unblock remaining barrier waits.
                phase_barrier.abort()

        threads = [threading.Thread(target=worker) for _ in range(self.WORKERS)]
        for thread in threads:
            thread.start()
        try:
            # Phase 0: healthy.
            phase_barrier.wait()
            phase_barrier.wait()
            # Phase 1: crashed for the whole phase.
            network.crash("srv")
            phase_barrier.wait()
            phase_barrier.wait()
            # Phase 2: recovered before the phase begins.
            network.recover("srv")
            phase_barrier.wait()
            phase_barrier.wait()
        finally:
            for thread in threads:
                thread.join(timeout=30)
        assert errors == []
        total_per_phase = self.WORKERS * self.CALLS_PER_PHASE
        assert successes[0] == total_per_phase
        # The invariant under test: while crashed, the pool never handed out
        # a connection that completed a call against the dead host.
        assert successes[1] == 0
        # After recovery, drop-and-retry healed the pool: the phase makes
        # progress again (first call per worker may burn on a stale socket).
        assert successes[2] >= total_per_phase - self.WORKERS
