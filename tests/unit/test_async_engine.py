"""Unit tests for the asyncio execution engine (`repro.net.aio`).

Covers the Connection/Listener contract parity with the threaded engine:
correlation under concurrent callers, per-call timeout that leaves the
stream intact, crash/recovery semantics, chaos composition, oversized-frame
refusal, engine selection, and the differential wire-bytes check (encoded
frames bit-identical to what the threaded engine's ``write_frame_mux``
sends).
"""

import threading

import pytest

from repro.net import AsyncTcpNetwork
from repro.net.chaos import ChaosNetwork, FaultPlan
from repro.net.framing import FrameDecoder, encode_frame
from repro.net.tcp import TcpNetwork, write_frame_mux
from repro.net.transport import blocking_handler
from repro.util.errors import (
    CommunicationError,
    ConfigurationError,
    FrameTooLargeError,
    TimeoutError_,
)


@pytest.fixture
def net():
    network = TcpNetwork(engine="async")
    yield network
    network.close()


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown TCP engine"):
            TcpNetwork(engine="fibers")

    def test_async_requires_multiplex(self):
        with pytest.raises(ConfigurationError, match="multiplexed"):
            TcpNetwork(multiplex=False, engine="async")

    def test_env_default_falls_back_to_threaded_without_multiplex(self, monkeypatch):
        # The env var is a default, not a mandate: a serialized (v1) network
        # cannot run the async engine, so it silently keeps threaded.
        monkeypatch.setenv("CQOS_ENGINE", "async")
        network = TcpNetwork(multiplex=False)
        assert network.engine == "threaded"
        network.close()

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("CQOS_ENGINE", "async")
        network = TcpNetwork()
        assert network.engine == "async"
        network.close()
        monkeypatch.delenv("CQOS_ENGINE")
        network = TcpNetwork()
        assert network.engine == "threaded"
        network.close()

    def test_async_network_factory(self):
        network = AsyncTcpNetwork()
        assert isinstance(network, TcpNetwork)
        assert network.engine == "async"
        network.close()


class TestAsyncDelivery:
    def test_request_reply(self, net):
        net.host("server").listen("echo", lambda d: b"R:" + d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"hello") == b"R:hello"
        conn.close()

    def test_large_frame(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        blob = bytes(range(256)) * 4096  # 1 MiB
        assert conn.call(blob) == blob
        conn.close()

    def test_unknown_address(self, net):
        conn = net.host("client").connect("server/none")
        with pytest.raises(CommunicationError):
            conn.call(b"x")

    def test_oversized_frame_rejected_before_send(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")

        class Huge(bytes):
            def __len__(self):
                return 65 * 1024 * 1024

        with pytest.raises(FrameTooLargeError):
            conn.call(Huge(b"x"))
        # The refusal happened before any byte hit the wire.
        assert conn.call(b"still-framed") == b"still-framed"
        conn.close()

    def test_correlation_under_concurrent_callers(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        errors: list[BaseException] = []

        def caller(tag: int) -> None:
            try:
                for i in range(60):
                    payload = b"%d:%d" % (tag, i)
                    assert conn.call(payload, timeout=10) == payload
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=caller, args=(t,)) for t in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        conn.close()

    def test_batching_coalesces_frames(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        barrier = threading.Barrier(8)

        def caller() -> None:
            barrier.wait()
            for i in range(40):
                conn.call(b"x" * 32, timeout=10)

        threads = [threading.Thread(target=caller) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = net.batch_stats()
        assert stats is not None
        # 8 * 40 request frames + as many replies crossed the loop; batching
        # must have needed strictly fewer sends than frames.
        assert stats["frames_out"] >= 320
        assert 0 < stats["flushes"] < stats["frames_out"]
        assert stats["frames_per_flush"] > 1.0
        conn.close()

    def test_per_call_timeout_leaves_stream_intact(self, net):
        release = threading.Event()

        @blocking_handler
        def handler(data: bytes) -> bytes:
            if data == b"slow":
                release.wait(5.0)
            return data

        net.host("server").listen("svc", handler)
        conn = net.host("client").connect("server/svc")
        assert conn.call(b"warm") == b"warm"
        with pytest.raises(TimeoutError_):
            conn.call(b"slow", timeout=0.05)
        # Unlike a threaded leader timeout, only the timed-out correlation id
        # was abandoned: the same connection keeps working immediately.
        assert conn.call(b"after", timeout=5) == b"after"
        release.set()
        conn.close()


class TestAsyncCrashRecovery:
    def test_crash_fails_calls_recover_heals(self, net):
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"up") == b"up"
        net.crash("server")
        with pytest.raises(CommunicationError):
            conn.call(b"down", timeout=2)
        net.recover("server")
        # Reconnects lazily through the name table (fresh port).
        deadline = 50
        for _ in range(deadline):
            try:
                assert conn.call(b"back", timeout=2) == b"back"
                break
            except CommunicationError:
                continue
        else:
            pytest.fail("connection did not heal after recover()")
        conn.close()

    def test_no_execution_while_crashed(self, net):
        served: list[bytes] = []

        def handler(data: bytes) -> bytes:
            served.append(data)
            return data

        net.host("server").listen("svc", handler)
        conn = net.host("client").connect("server/svc")
        conn.call(b"one")
        net.crash("server")
        for _ in range(10):
            with pytest.raises(CommunicationError):
                conn.call(b"dead", timeout=1)
        assert served == [b"one"]
        conn.close()

    def test_listener_close_releases_address(self, net):
        listener = net.host("server").listen("echo", lambda d: d)
        listener.close()
        # Address is reclaimable after close (claim released).
        listener2 = net.host("server").listen("echo", lambda d: b"2" + d)
        conn = net.host("client").connect("server/echo")
        assert conn.call(b"x", timeout=5) == b"2x"
        listener2.close()
        conn.close()


class TestChaosComposition:
    def test_chaos_wraps_async_engine_unchanged(self):
        plan = FaultPlan(seed=11, latency=0.001, jitter=0.001)
        chaos = ChaosNetwork(TcpNetwork(engine="async"), plan)
        try:
            chaos.host("server").listen("echo", lambda d: d)
            conn = chaos.host("client").connect("server/echo")
            for i in range(20):
                payload = b"%d" % i
                assert conn.call(payload, timeout=5) == payload
            assert chaos.stats()["delivered"] >= 40
            conn.close()
        finally:
            chaos.close()

    def test_chaos_loss_surfaces_as_communication_error(self):
        plan = FaultPlan(seed=3, loss=1.0)
        chaos = ChaosNetwork(TcpNetwork(engine="async"), plan)
        try:
            chaos.host("server").listen("echo", lambda d: d)
            conn = chaos.host("client").connect("server/echo")
            with pytest.raises(CommunicationError):
                conn.call(b"x", timeout=2)
        finally:
            chaos.close()


class TestDifferentialWireBytes:
    """The async engine's frames are bit-identical to the threaded engine's."""

    def test_encode_frame_matches_write_frame_mux(self):
        class SinkSocket:
            def __init__(self):
                self.sent = bytearray()

            def sendall(self, data):
                self.sent += data

        cases = [
            (1, b""),
            (2, b"x"),
            (77, bytes(range(256))),
            (2**63 + 5, b"big correlation id"),
            (12345, b"a" * 70000),  # above the inline-send threshold
            (6, bytearray(b"bytearray payload")),
            (7, memoryview(b"memoryview payload")),
        ]
        for request_id, payload in cases:
            sink = SinkSocket()
            write_frame_mux(sink, request_id, payload)
            assert bytes(sink.sent) == encode_frame(request_id, payload)

    def test_live_async_frames_decode_with_shared_decoder(self, net):
        # End-to-end: bytes produced by the async engine round-trip through
        # the engine-neutral decoder used by both sides.
        net.host("server").listen("echo", lambda d: d)
        conn = net.host("client").connect("server/echo")
        payloads = [b"alpha", b"beta", b"gamma" * 100]
        for payload in payloads:
            assert conn.call(payload, timeout=5) == payload
        conn.close()
        # And the standalone encoding of the same frames is parseable by a
        # fresh decoder regardless of chunking.
        stream = b"".join(encode_frame(i, p) for i, p in enumerate(payloads))
        decoder = FrameDecoder()
        decoded: list[tuple[int, bytes]] = []
        for k in range(0, len(stream), 7):
            decoded.extend(decoder.feed(stream[k : k + 7]))
        assert decoded == list(enumerate(payloads))


class TestDispatchPolicy:
    def test_marked_handler_is_never_promoted(self, net):
        @blocking_handler
        def handler(data: bytes) -> bytes:
            return data

        listener = net.host("server").listen("svc", handler)
        conn = net.host("client").connect("server/svc")
        for i in range(64):
            conn.call(b"%d" % i, timeout=5)
        assert listener._never_inline is True
        assert listener._inline_ok is False
        conn.close()

    def test_fast_unmarked_handler_gets_promoted(self, net):
        listener = net.host("server").listen("svc", lambda d: d)
        conn = net.host("client").connect("server/svc")
        for i in range(64):
            conn.call(b"%d" % i, timeout=5)
        assert listener._inline_ok is True
        conn.close()

    def test_inline_promotion_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("CQOS_ASYNC_INLINE", "0")
        network = TcpNetwork(engine="async")
        try:
            listener = network.host("server").listen("svc", lambda d: d)
            conn = network.host("client").connect("server/svc")
            for i in range(64):
                conn.call(b"%d" % i, timeout=5)
            assert listener._inline_ok is False
            conn.close()
        finally:
            network.close()


class TestBlockingGuard:
    def test_blocking_wait_on_loop_raises(self):
        import asyncio

        from repro.core.platform import assert_blocking_safe

        async def on_loop():
            assert_blocking_safe("test wait")

        with pytest.raises(ConfigurationError, match="event loop"):
            asyncio.run(on_loop())

    def test_blocking_wait_off_loop_is_fine(self):
        from repro.core.platform import assert_blocking_safe

        assert_blocking_safe("test wait")
