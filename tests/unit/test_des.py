"""Unit tests for the pure-Python DES implementation.

Known-answer vectors pin the algorithm to FIPS 46-3; mode/padding tests
cover the envelope around the block cipher.
"""

import pytest

from repro.crypto.des import DesCipher, des_decrypt, des_encrypt
from repro.util.errors import MarshalError

# The classic worked example (used in innumerable DES expositions).
KAT_KEY = bytes.fromhex("133457799BBCDFF1")
KAT_PLAIN = bytes.fromhex("0123456789ABCDEF")
KAT_CIPHER = bytes.fromhex("85E813540F0AB405")


class TestKnownAnswers:
    def test_classic_vector_encrypt(self):
        cipher = DesCipher(KAT_KEY, mode="ECB")
        assert cipher.encrypt_block(KAT_PLAIN) == KAT_CIPHER

    def test_classic_vector_decrypt(self):
        cipher = DesCipher(KAT_KEY, mode="ECB")
        assert cipher.decrypt_block(KAT_CIPHER) == KAT_PLAIN

    def test_all_zero_key_and_block(self):
        # Published vector: DES(0^64) under key 0^64 = 8CA64DE9C1B123A7.
        cipher = DesCipher(bytes(8), mode="ECB")
        assert cipher.encrypt_block(bytes(8)) == bytes.fromhex("8CA64DE9C1B123A7")

    def test_all_ones_vector(self):
        # Published vector: key FF..FF, plaintext FF..FF -> 7359B2163E4EDC58.
        key = bytes.fromhex("FFFFFFFFFFFFFFFF")
        plain = bytes.fromhex("FFFFFFFFFFFFFFFF")
        cipher = DesCipher(key, mode="ECB")
        assert cipher.encrypt_block(plain) == bytes.fromhex("7359B2163E4EDC58")

    def test_complementation_property(self):
        # DES(~K, ~P) == ~DES(K, P) — a structural property of the cipher
        # that fails for almost any implementation bug.
        key = bytes.fromhex("0123456789ABCDEF")
        plain = bytes.fromhex("1122334455667788")
        ct = DesCipher(key, mode="ECB").encrypt_block(plain)
        comp_key = bytes(b ^ 0xFF for b in key)
        comp_plain = bytes(b ^ 0xFF for b in plain)
        comp_ct = DesCipher(comp_key, mode="ECB").encrypt_block(comp_plain)
        assert comp_ct == bytes(b ^ 0xFF for b in ct)


class TestModes:
    def test_ecb_roundtrip(self):
        cipher = DesCipher(KAT_KEY, mode="ECB")
        for size in (0, 1, 7, 8, 9, 100):
            data = bytes(range(size % 256))[:size] or b""
            assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_cbc_roundtrip(self):
        cipher = DesCipher(KAT_KEY, mode="CBC")
        data = b"the quick brown fox jumps over the lazy dog"
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_cbc_randomizes_iv(self):
        cipher = DesCipher(KAT_KEY, mode="CBC")
        assert cipher.encrypt(b"same input") != cipher.encrypt(b"same input")

    def test_cbc_explicit_iv_is_deterministic(self):
        cipher = DesCipher(KAT_KEY, mode="CBC")
        iv = bytes(range(8))
        assert cipher.encrypt(b"data", iv=iv) == cipher.encrypt(b"data", iv=iv)

    def test_ecb_identical_blocks_leak(self):
        # ECB's defining weakness, asserted as documented behaviour.
        cipher = DesCipher(KAT_KEY, mode="ECB")
        ct = cipher.encrypt(b"A" * 16)
        assert ct[:8] == ct[8:16]

    def test_cbc_identical_blocks_do_not_leak(self):
        cipher = DesCipher(KAT_KEY, mode="CBC")
        ct = cipher.encrypt(b"A" * 16, iv=bytes(8))
        assert ct[8:16] != ct[16:24]


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            DesCipher(b"short")

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            DesCipher(KAT_KEY, mode="CTR")

    def test_bad_block_length(self):
        cipher = DesCipher(KAT_KEY, mode="ECB")
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"123")

    def test_truncated_ciphertext(self):
        cipher = DesCipher(KAT_KEY, mode="ECB")
        with pytest.raises(MarshalError):
            cipher.decrypt(b"\x00" * 7)

    def test_corrupted_padding_detected(self):
        cipher = DesCipher(KAT_KEY, mode="ECB")
        ct = bytearray(cipher.encrypt(b"hello"))
        ct[-1] ^= 0xFF
        with pytest.raises(MarshalError):
            cipher.decrypt(bytes(ct))

    def test_bad_iv_length(self):
        with pytest.raises(ValueError):
            DesCipher(KAT_KEY, mode="CBC").encrypt(b"x", iv=b"123")

    def test_empty_cbc_ciphertext(self):
        with pytest.raises(MarshalError):
            DesCipher(KAT_KEY, mode="CBC").decrypt(b"")


class TestOneShotHelpers:
    def test_roundtrip(self):
        data = b"one-shot helpers"
        assert des_decrypt(KAT_KEY, des_encrypt(KAT_KEY, data)) == data

    def test_modes_are_incompatible(self):
        ct = des_encrypt(KAT_KEY, b"data", mode="ECB")
        with pytest.raises(MarshalError):
            des_decrypt(KAT_KEY, ct, mode="CBC")
