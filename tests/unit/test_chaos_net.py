"""Unit tests for the chaos transport decorator (deterministic fault injection)."""

import threading

import pytest

from repro.net.chaos import ChaosNetwork, FaultPlan
from repro.net.memory import InMemoryNetwork
from repro.net.tcp import TcpNetwork
from repro.util.errors import CommunicationError

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev deps
    HAVE_HYPOTHESIS = False


def _run_sequence(make_inner, plan: FaultPlan, calls: int = 40) -> list[str]:
    """Drive one client/server pair and record per-call outcomes."""
    net = ChaosNetwork(make_inner(), plan)
    outcomes = []
    try:
        net.host("server").listen("echo", lambda d: b"R:" + d)
        conn = net.host("client").connect("server/echo")
        for i in range(calls):
            payload = b"%d" % i
            try:
                reply = conn.call(payload, timeout=5.0)
            except CommunicationError as exc:
                outcomes.append(f"err:{'reset' if 'reset' in str(exc) else 'lost'}")
            else:
                outcomes.append("ok" if reply == b"R:" + payload else "corrupt")
        conn.close()
    finally:
        net.close()
    return outcomes


class TestFaultPlanValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt=-0.1)

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(latency=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(jitter=-0.5)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(schedule=((1.0, "explode", "host"),))
        with pytest.raises(ValueError):
            FaultPlan(schedule=((-1.0, "crash", "host"),))


class TestDeterministicReplay:
    def test_same_seed_replays_identically_in_memory(self):
        plan = FaultPlan(seed=42, loss=0.3, corrupt=0.1, reset=0.05)
        first = _run_sequence(InMemoryNetwork, plan)
        second = _run_sequence(InMemoryNetwork, plan)
        assert first == second
        assert "err:lost" in first  # the plan actually injected something

    def test_same_seed_replays_identically_over_tcp(self):
        plan = FaultPlan(seed=7, loss=0.25, reset=0.1)
        first = _run_sequence(TcpNetwork, plan)
        second = _run_sequence(TcpNetwork, plan)
        assert first == second

    def test_transport_independence(self):
        """The fault stream depends on the plan, not the wire underneath."""
        plan = FaultPlan(seed=11, loss=0.3)
        assert _run_sequence(InMemoryNetwork, plan) == _run_sequence(TcpNetwork, plan)

    def test_different_seeds_differ(self):
        base = dict(loss=0.4, corrupt=0.2)
        a = _run_sequence(InMemoryNetwork, FaultPlan(seed=1, **base), calls=60)
        b = _run_sequence(InMemoryNetwork, FaultPlan(seed=2, **base), calls=60)
        assert a != b

    def test_disabled_knobs_do_not_shift_the_stream(self):
        """Turning a knob off must not change which calls the others hit.

        Each message consumes a fixed number of draws, so the loss decisions
        under (loss, corrupt) match the loss decisions under loss alone.
        """
        with_corrupt = _run_sequence(
            InMemoryNetwork, FaultPlan(seed=5, loss=0.3, corrupt=0.2)
        )
        loss_only = _run_sequence(InMemoryNetwork, FaultPlan(seed=5, loss=0.3))
        paired = list(zip(with_corrupt, loss_only))
        assert all(
            b == "err:lost" if a == "err:lost" else b != "err:lost" for a, b in paired
        )

    if HAVE_HYPOTHESIS:

        @settings(max_examples=10, deadline=None)
        @given(seed=st.integers(min_value=0, max_value=2**31), loss=st.floats(0.0, 0.6))
        def test_replay_property(self, seed, loss):
            plan = FaultPlan(seed=seed, loss=loss, corrupt=0.1)
            assert _run_sequence(InMemoryNetwork, plan, calls=15) == _run_sequence(
                InMemoryNetwork, plan, calls=15
            )


class TestFaultKnobs:
    def test_no_faults_is_transparent(self):
        outcomes = _run_sequence(InMemoryNetwork, FaultPlan(seed=0))
        assert outcomes == ["ok"] * len(outcomes)

    def test_total_loss(self):
        outcomes = _run_sequence(InMemoryNetwork, FaultPlan(seed=0, loss=1.0), calls=5)
        assert outcomes == ["err:lost"] * 5

    def test_corruption_flips_payload_bytes(self):
        outcomes = _run_sequence(
            InMemoryNetwork, FaultPlan(seed=3, corrupt=1.0), calls=10
        )
        assert "corrupt" in outcomes
        assert "err:lost" not in outcomes

    def test_duplicate_delivers_request_twice(self):
        net = ChaosNetwork(InMemoryNetwork(), FaultPlan(seed=0, duplicate=1.0))
        served = []
        try:
            net.host("server").listen("svc", lambda d: served.append(d) or b"ok")
            conn = net.host("client").connect("server/svc")
            assert conn.call(b"x") == b"ok"
        finally:
            net.close()
        assert served == [b"x", b"x"]

    def test_reset_happens_after_execution(self):
        net = ChaosNetwork(InMemoryNetwork(), FaultPlan(seed=0, reset=1.0))
        served = []
        try:
            net.host("server").listen("svc", lambda d: served.append(d) or b"ok")
            conn = net.host("client").connect("server/svc")
            with pytest.raises(CommunicationError, match="reset"):
                conn.call(b"x")
        finally:
            net.close()
        assert served == [b"x"]  # the at-most-once ambiguity: executed, no reply

    def test_latency_delays_delivery(self):
        import time

        net = ChaosNetwork(InMemoryNetwork(), FaultPlan(seed=0, latency=0.05))
        try:
            net.host("server").listen("svc", lambda d: d)
            conn = net.host("client").connect("server/svc")
            started = time.monotonic()
            conn.call(b"x")
            # Two messages, 50 ms each way.
            assert time.monotonic() - started >= 0.09
        finally:
            net.close()

    def test_exempt_hosts_skip_faults(self):
        plan = FaultPlan(seed=0, loss=1.0, exempt_hosts=frozenset({"naming"}))
        net = ChaosNetwork(InMemoryNetwork(), plan)
        try:
            net.host("naming").listen("svc", lambda d: d)
            net.host("server").listen("svc", lambda d: d)
            exempt = net.host("client").connect("naming/svc")
            burned = net.host("client").connect("server/svc")
            assert exempt.call(b"x") == b"x"
            with pytest.raises(CommunicationError):
                burned.call(b"x")
        finally:
            net.close()
        assert net.stats()["exempted"] >= 1


class TestInjectionParityApi:
    """ChaosNetwork exposes the InMemoryNetwork injection surface."""

    def test_set_loss_parity(self):
        net = ChaosNetwork(TcpNetwork())
        try:
            net.host("server").listen("svc", lambda d: d)
            conn = net.host("client").connect("server/svc")
            assert conn.call(b"a") == b"a"
            net.set_loss(1.0, seed=3)
            with pytest.raises(CommunicationError):
                conn.call(b"b")
            net.set_loss(0.0)
            assert conn.call(b"c") == b"c"
        finally:
            net.close()

    def test_partition_and_heal_parity(self):
        net = ChaosNetwork(TcpNetwork())
        try:
            net.host("server").listen("svc", lambda d: d)
            conn = net.host("client").connect("server/svc")
            assert conn.call(b"a") == b"a"
            net.partition([["client"], ["server"]])
            with pytest.raises(CommunicationError, match="partition"):
                conn.call(b"b")
            net.heal()
            assert conn.call(b"c") == b"c"
        finally:
            net.close()

    def test_unlisted_hosts_join_group_zero(self):
        net = ChaosNetwork(InMemoryNetwork())
        try:
            net.host("server").listen("svc", lambda d: d)
            conn = net.host("client").connect("server/svc")
            net.partition([["client", "server"], ["other"]])
            assert conn.call(b"a") == b"a"
        finally:
            net.close()

    def test_crash_recover_delegate_to_inner(self):
        net = ChaosNetwork(TcpNetwork())
        try:
            net.host("server").listen("svc", lambda d: d)
            conn = net.host("client").connect("server/svc")
            assert conn.call(b"a") == b"a"
            net.crash("server")
            with pytest.raises(CommunicationError):
                conn.call(b"b")
            net.recover("server")
            assert conn.call(b"c") == b"c"
        finally:
            net.close()
        stats = net.stats()
        assert stats["crashes"] == 1 and stats["recoveries"] == 1


class TestSchedule:
    def test_scheduled_crash_and_recover(self):
        plan = FaultPlan(
            seed=0,
            schedule=((0.0, "crash", "server"), (0.15, "recover", "server")),
        )
        net = ChaosNetwork(InMemoryNetwork(), plan)
        try:
            net.host("server").listen("svc", lambda d: d)
            conn = net.host("client").connect("server/svc")
            net.start()
            with pytest.raises(CommunicationError):
                conn.call(b"a")  # the crash event fires before delivery
            deadline = threading.Event()
            deadline.wait(0.2)  # let the recover event come due
            assert conn.call(b"b") == b"b"
        finally:
            net.close()
        stats = net.stats()
        assert stats["crashes"] == 1 and stats["recoveries"] == 1


class TestStats:
    def test_stats_account_for_messages(self):
        net = ChaosNetwork(InMemoryNetwork(), FaultPlan(seed=9, loss=0.5))
        try:
            net.host("server").listen("svc", lambda d: d)
            conn = net.host("client").connect("server/svc")
            for _ in range(30):
                try:
                    conn.call(b"x")
                except CommunicationError:
                    pass
        finally:
            net.close()
        stats = net.stats()
        assert stats["messages"] == 60
        assert stats["lost"] > 0
        assert stats["delivered"] > 0
        net.reset_stats()
        assert net.stats()["messages"] == 0
