"""Unit tests for the wire value-type registry."""

import pytest

from repro.serialization.registry import TypeRegistry, value_type
from repro.util.errors import MarshalError


class TestTypeRegistry:
    def test_default_conversions(self):
        registry = TypeRegistry()

        class Pair:
            def __init__(self, a, b):
                self.a, self.b = a, b

        registry.register("t.Pair", Pair)
        name, state = registry.encode(Pair(1, 2))
        assert name == "t.Pair"
        assert state == {"a": 1, "b": 2}
        rebuilt = registry.decode(name, state)
        assert isinstance(rebuilt, Pair)
        assert (rebuilt.a, rebuilt.b) == (1, 2)

    def test_custom_conversions(self):
        registry = TypeRegistry()

        class Celsius:
            def __init__(self, degrees):
                self.degrees = degrees

        registry.register(
            "t.Celsius",
            Celsius,
            to_dict=lambda c: {"kelvin": c.degrees + 273.15},
            from_dict=lambda s: Celsius(s["kelvin"] - 273.15),
        )
        name, state = registry.encode(Celsius(20.0))
        assert state == {"kelvin": 293.15}
        assert registry.decode(name, state).degrees == pytest.approx(20.0)

    def test_encode_unregistered(self):
        with pytest.raises(MarshalError):
            TypeRegistry().encode(object())

    def test_decode_unknown_name(self):
        with pytest.raises(MarshalError):
            TypeRegistry().decode("no.Such", {})

    def test_reregistration_replaces(self):
        registry = TypeRegistry()

        class V1:
            pass

        class V2:
            pass

        registry.register("t.V", V1)
        registry.register("t.V", V2)
        assert registry.name_for(V2()) == "t.V"
        assert registry.name_for(V1()) is None

    def test_to_dict_must_return_dict(self):
        registry = TypeRegistry()

        class Bad:
            pass

        registry.register("t.Bad", Bad, to_dict=lambda o: "not a dict")
        with pytest.raises(MarshalError, match="must return a dict"):
            registry.encode(Bad())

    def test_value_type_decorator(self):
        registry = TypeRegistry()

        @value_type("t.Decorated", registry=registry)
        class Decorated:
            def __init__(self, x):
                self.x = x

        assert registry.name_for(Decorated(1)) == "t.Decorated"
