"""Gather policies and sparse replica-id regressions (PR 10).

Policy mechanics over fake platforms: ``first`` and ``quorum:k`` must
complete without waiting on a straggler, a drained scatter without a quorum
must fail loudly, and the ``CQOS_GATHER_POLICY`` knob must reach the
protocol.  Sparse-id coverage pins the satellite fixes: ActiveRep,
TotalOrder and PassiveRepServer iterate the platform's *real* replica ids
instead of assuming ``range(1, N+1)``.
"""

import time

import pytest

from repro.core.client import CactusClient
from repro.core.platform import GATHER_FIRST, GATHER_QUORUM
from repro.core.request import Request
from repro.core.server import CactusServer
from repro.qos import ActiveRep, PassiveRepServer, TotalOrder
from repro.util.errors import CommunicationError, ConfigurationError
from tests.unit.test_core_components import FakeClientPlatform, FakeServerPlatform


def make_client(platform, extra):
    return CactusClient.with_base(platform, extra, request_timeout=5.0)


def run_request(client, operation="echo", params=("v",)):
    request = Request("obj", operation, list(params))
    return request, client.cactus_request(request)


class SlowReplicaPlatform(FakeClientPlatform):
    """One replica (the straggler) answers after a long sleep."""

    def __init__(self, servers: int, straggler: int, delay: float = 2.0):
        super().__init__(servers=servers)
        self.straggler = straggler
        self.delay = delay

    def invoke_server(self, server, request):
        if server == self.straggler:
            time.sleep(self.delay)
        return super().invoke_server(server, request)


class DivergentPlatform(FakeClientPlatform):
    """Every replica answers with a different value: no quorum possible."""

    def invoke_server(self, server, request):
        self.invocations.append((server, request.operation, list(request.get_params())))
        return f"v{server}"


class TestGatherPolicies:
    def test_first_returns_before_the_straggler(self):
        platform = SlowReplicaPlatform(servers=3, straggler=3, delay=2.0)
        client = make_client(platform, [ActiveRep(gather_policy="first")])
        try:
            started = time.monotonic()
            _, result = run_request(client)
            elapsed = time.monotonic() - started
            assert result == "v"
            assert elapsed < platform.delay / 2
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_first_skips_an_early_failure(self):
        platform = SlowReplicaPlatform(servers=3, straggler=3, delay=2.0)
        platform.fail_servers.add(1)
        client = make_client(platform, [ActiveRep(gather_policy="first")])
        try:
            _, result = run_request(client)
            assert result == "v"  # replica 2's success wins despite 1 failing
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_quorum_two_of_three_ignores_straggler(self):
        platform = SlowReplicaPlatform(servers=3, straggler=3, delay=2.0)
        client = make_client(platform, [ActiveRep(gather_policy="quorum:2")])
        try:
            started = time.monotonic()
            _, result = run_request(client)
            elapsed = time.monotonic() - started
            assert result == "v"
            assert elapsed < platform.delay / 2
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_quorum_exhaustion_fails_loudly(self):
        platform = DivergentPlatform(servers=3)
        client = make_client(platform, [ActiveRep(gather_policy="quorum:2")])
        try:
            with pytest.raises(CommunicationError, match="quorum"):
                run_request(client)
            # Every replica was still asked (active replication sends to all).
            assert sorted(s for s, _, _ in platform.invocations) == [1, 2, 3]
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_env_knob_selects_the_policy(self, monkeypatch):
        monkeypatch.setenv("CQOS_GATHER_POLICY", "quorum:3")
        platform = FakeClientPlatform(servers=3)
        client = make_client(platform, [ActiveRep()])
        try:
            protocol: ActiveRep = client.micro_protocol("ActiveRep")
            assert (protocol._mode, protocol._quorum_k) == (GATHER_QUORUM, 3)
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv("CQOS_GATHER_POLICY", "quorum:3")
        platform = FakeClientPlatform(servers=3)
        client = make_client(platform, [ActiveRep(gather_policy="first")])
        try:
            protocol: ActiveRep = client.micro_protocol("ActiveRep")
            assert protocol._mode == GATHER_FIRST
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_invalid_policy_is_loud(self):
        platform = FakeClientPlatform(servers=3)
        with pytest.raises(ConfigurationError):
            make_client(platform, [ActiveRep(gather_policy="bogus")])


# -- sparse replica ids ------------------------------------------------------


class SparseClientPlatform(FakeClientPlatform):
    """Client platform whose replica group has sparse logical ids."""

    def __init__(self, ids=(3, 7, 9)):
        super().__init__(servers=len(ids))
        self.ids = tuple(ids)

    def server_ids(self):
        return self.ids


class SparseServerPlatform(FakeServerPlatform):
    """Server platform with a sparse replica group and scriptable liveness."""

    def __init__(self, me=2, ids=(2, 5, 9)):
        super().__init__()
        self.me = me
        self.ids = tuple(ids)
        self.dead: set[int] = set()
        self.status_probes: list[int] = []

    def my_replica(self) -> int:
        return self.me

    def num_replicas(self) -> int:
        return len(self.ids)

    def replica_ids(self):
        return self.ids

    def peer_status(self, replica: int) -> bool:
        self.status_probes.append(replica)
        return replica not in self.dead


def _poll(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestSparseReplicaIds:
    def test_active_rep_fans_out_to_sparse_ids(self):
        platform = SparseClientPlatform(ids=(3, 7, 9))
        client = make_client(platform, [ActiveRep()])
        try:
            run_request(client)
            assert _poll(lambda: len(platform.invocations) >= 3)
            assert sorted(s for s, _, _ in platform.invocations) == [3, 7, 9]
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_num_servers_caps_the_sparse_group(self):
        platform = SparseClientPlatform(ids=(3, 7, 9))
        client = make_client(platform, [ActiveRep(num_servers=2)])
        try:
            run_request(client)
            assert _poll(lambda: len(platform.invocations) >= 2)
            time.sleep(0.05)
            assert sorted(s for s, _, _ in platform.invocations) == [3, 7]
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_total_order_announces_to_sparse_peers(self):
        platform = SparseServerPlatform(me=2, ids=(2, 5, 9))
        server = CactusServer.with_base(platform, [TotalOrder()])
        try:
            protocol: TotalOrder = server.micro_protocol("TotalOrder")
            with server.shared.lock:
                protocol._sequencer = 2  # this replica coordinates
            result = server.cactus_invoke(Request("obj", "echo", ["x"]))
            assert result == "x"
            assert _poll(lambda: len(platform.peer_messages) >= 2)
            announced = {replica for replica, kind, _ in platform.peer_messages}
            kinds = {kind for _, kind, _ in platform.peer_messages}
            assert announced == {5, 9}  # never 1..3's phantom range
            assert kinds == {"order"}
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_sequencer_election_probes_only_real_ids(self):
        platform = SparseServerPlatform(me=5, ids=(2, 5, 9))
        platform.dead.add(2)
        server = CactusServer.with_base(platform, [TotalOrder()])
        try:
            protocol: TotalOrder = server.micro_protocol("TotalOrder")
            protocol._elect_sequencer()
            assert protocol.sequencer == 5  # lowest *live* sparse id
            # The historical range(1, N+1) walk would have probed 1 and 3.
            assert set(platform.status_probes) <= set(platform.ids)
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_passive_forwarding_reaches_sparse_backups(self):
        platform = SparseServerPlatform(me=2, ids=(2, 5, 9))
        server = CactusServer.with_base(platform, [PassiveRepServer()])
        try:
            result = server.cactus_invoke(Request("obj", "echo", ["y"]))
            assert result == "y"
            forwarded = {replica for replica, kind, _ in platform.peer_messages}
            assert forwarded == {5, 9}
        finally:
            server.shutdown()
            server.runtime.shutdown()
