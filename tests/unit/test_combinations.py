"""Unit tests for the composability matrix (paper §3.5 claims)."""

import pytest

from repro.qos.combinations import (
    FT_COMBINATIONS,
    all_combinations,
    count_combinations,
    validate_configuration,
)
from repro.util.errors import ConfigurationError


class TestPaperClaims:
    def test_five_fault_tolerance_combinations(self):
        assert len(FT_COMBINATIONS) == 5

    def test_over_100_combinations(self):
        # The paper: "configured in over 100 different combinations".
        assert count_combinations() > 100
        assert count_combinations() == 6 * 8 * 4  # (1+5) x 2^3 x (1+3)

    def test_all_combinations_are_unique(self):
        combos = all_combinations()
        assert len({c.label() for c in combos}) == len(combos)

    def test_every_combination_validates(self):
        for combo in all_combinations():
            validate_configuration(combo.client_protocols(), combo.server_protocols())

    def test_combination_protocol_names_exist(self):
        from repro.cactus.config import micro_protocol_registry

        registry = micro_protocol_registry()
        for combo in all_combinations():
            for name in combo.client_protocols() + combo.server_protocols():
                assert name in registry, name


class TestValidation:
    def test_active_and_passive_conflict(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            validate_configuration(["ActiveRep", "PassiveRep"], [])

    def test_two_acceptance_protocols_conflict(self):
        with pytest.raises(ConfigurationError, match="acceptance"):
            validate_configuration(["ActiveRep", "FirstSuccess", "MajorityVote"], [])

    def test_acceptance_requires_active(self):
        with pytest.raises(ConfigurationError, match="ActiveRep"):
            validate_configuration(["MajorityVote"], [])

    def test_total_order_requires_active(self):
        with pytest.raises(ConfigurationError, match="ActiveRep"):
            validate_configuration([], ["TotalOrder"])

    def test_queue_schedulers_conflict(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            validate_configuration([], ["QueuedSched", "TimedSched"])

    def test_priority_composes_with_queued(self):
        validate_configuration([], ["PrioritySched", "QueuedSched"])

    def test_privacy_must_be_paired(self):
        with pytest.raises(ConfigurationError, match="DesPrivacyServer"):
            validate_configuration(["DesPrivacy"], [])
        with pytest.raises(ConfigurationError, match="DesPrivacy"):
            validate_configuration([], ["DesPrivacyServer"])

    def test_integrity_must_be_paired(self):
        with pytest.raises(ConfigurationError, match="SignedIntegrityServer"):
            validate_configuration(["SignedIntegrity"], [])

    def test_passive_must_be_paired(self):
        with pytest.raises(ConfigurationError, match="PassiveRepServer"):
            validate_configuration(["PassiveRep"], [])

    def test_valid_full_stack(self):
        validate_configuration(
            ["ActiveRep", "MajorityVote", "DesPrivacy", "SignedIntegrity"],
            [
                "TotalOrder",
                "DesPrivacyServer",
                "SignedIntegrityServer",
                "AccessControl",
                "TimedSched",
            ],
        )
