"""Unit tests for dynamic customization (rBoot/rControl, config service)."""

import pytest

from repro.cactus.composite import CompositeProtocol, MicroProtocol
from repro.cactus.config import MicroProtocolSpec, register_micro_protocol
from repro.cactus.dynamic import (
    ConfigurationService,
    RBoot,
    RControl,
    dynamic_composite,
    fetch_configuration,
    peer_config_source,
    serve_configuration,
)
from repro.net.memory import InMemoryNetwork
from repro.util.errors import ConfigurationError


@register_micro_protocol("_DynLoaded")
class DynLoaded(MicroProtocol):
    name = "_DynLoaded"

    def __init__(self, tag: str = "default"):
        super().__init__()
        self.tag = tag


@pytest.fixture
def network():
    net = InMemoryNetwork()
    yield net
    net.close()


class TestRBootRControl:
    def test_local_source_loads_protocols(self):
        specs = [MicroProtocolSpec("_DynLoaded", {"tag": "local"})]
        composite = dynamic_composite("dyn", lambda: specs)
        try:
            loaded = composite.micro_protocol("_DynLoaded")
            assert loaded.tag == "local"
            assert "rBoot" in composite.micro_protocol_names()
            assert "rControl" in composite.micro_protocol_names()
        finally:
            composite.shutdown()
            composite.runtime.shutdown()

    def test_rcontrol_loads_more_at_runtime(self):
        composite = dynamic_composite("dyn", lambda: [])
        try:
            control: RControl = composite.micro_protocol("rControl")
            control.load([MicroProtocolSpec("_DynLoaded", {"tag": "late"})])
            assert composite.micro_protocol("_DynLoaded").tag == "late"
            assert control.loaded_names() == ["_DynLoaded"]
        finally:
            composite.shutdown()
            composite.runtime.shutdown()

    def test_unknown_protocol_fails_boot(self):
        with pytest.raises(ConfigurationError):
            dynamic_composite("dyn", lambda: [MicroProtocolSpec("NoSuch")])


class TestPeerDownload:
    def test_client_downloads_from_server(self, network):
        server_host = network.host("server")
        specs = [MicroProtocolSpec("_DynLoaded", {"tag": "from-server"})]
        listener = serve_configuration(server_host, lambda: specs)
        try:
            fetched = fetch_configuration(network.host("client"), "server")
            assert fetched == specs
            composite = dynamic_composite(
                "dyn", peer_config_source(network.host("client"), "server")
            )
            try:
                assert composite.micro_protocol("_DynLoaded").tag == "from-server"
            finally:
                composite.shutdown()
                composite.runtime.shutdown()
        finally:
            listener.close()


class TestConfigurationService:
    def test_per_user_service_pairs(self, network):
        service = ConfigurationService(network)
        try:
            service.define(
                "alice", "bank", [MicroProtocolSpec("_DynLoaded", {"tag": "alice-bank"})]
            )
            service.define(
                "bob", "bank", [MicroProtocolSpec("_DynLoaded", {"tag": "bob-bank"})]
            )
            source = ConfigurationService.source(
                network, "client-a", "config-service", "alice", "bank"
            )
            assert source()[0].params["tag"] == "alice-bank"
            source_b = ConfigurationService.source(
                network, "client-b", "config-service", "bob", "bank"
            )
            assert source_b()[0].params["tag"] == "bob-bank"
        finally:
            service.close()

    def test_undefined_pair_fails(self, network):
        service = ConfigurationService(network)
        try:
            source = ConfigurationService.source(
                network, "client", "config-service", "eve", "bank"
            )
            with pytest.raises(Exception):
                source()
        finally:
            service.close()
