"""Unit tests for the IDL lexer, parser, and compiler."""

import pytest

from repro.idl import compile_idl, parse_idl, tokenize
from repro.idl.ast import BasicType, NamedType, SequenceType
from repro.idl.lexer import IdlSyntaxError
from repro.serialization.registry import TypeRegistry
from repro.util.errors import ConfigurationError, MarshalError


class TestLexer:
    def test_tokens_and_positions(self):
        tokens = tokenize("interface Foo {\n};")
        kinds = [(t.kind, t.value) for t in tokens]
        assert kinds == [
            ("keyword", "interface"),
            ("identifier", "Foo"),
            ("punct", "{"),
            ("punct", "}"),
            ("punct", ";"),
            ("eof", ""),
        ]
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[3].line == 2

    def test_comments_are_skipped(self):
        tokens = tokenize("// line\n/* block\nstill block */ module")
        assert [t.value for t in tokens if t.kind != "eof"] == ["module"]

    def test_scope_operator(self):
        tokens = tokenize("a::b")
        assert [t.value for t in tokens][:3] == ["a", "::", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(IdlSyntaxError, match="unterminated"):
            tokenize("/* never ends")

    def test_bad_character(self):
        with pytest.raises(IdlSyntaxError, match="unexpected character"):
            tokenize("interface $bad {};")


class TestParser:
    def test_full_grammar(self):
        spec = parse_idl(
            """
            module m {
              struct S { long a; sequence<string> b; };
              exception E { string msg; };
              interface I {
                readonly attribute double ro;
                attribute long rw;
                oneway void fire();
                S build(in long x, in S template) raises (E);
              };
              interface J : I { void extra(); };
            };
            """
        )
        module = spec.definitions[0]
        assert module.name == "m"
        interface = module.definitions[2]
        assert interface.name == "I"
        assert [a.name for a in interface.attributes] == ["ro", "rw"]
        assert interface.attributes[0].readonly
        ops = {op.name: op for op in interface.operations}
        assert ops["fire"].oneway
        assert ops["build"].raises == ["E"]
        assert isinstance(ops["build"].params[1].type, NamedType)
        derived = module.definitions[3]
        assert derived.bases == ["I"]

    def test_multi_word_types(self):
        spec = parse_idl(
            "interface T { long long big(in unsigned short a, in unsigned long long b); };"
        )
        op = spec.definitions[0].operations[0]
        assert op.return_type == BasicType("long long")
        assert op.params[0].type == BasicType("unsigned short")
        assert op.params[1].type == BasicType("unsigned long long")

    def test_nested_sequences(self):
        spec = parse_idl("interface T { sequence<sequence<long>> grid(); };")
        rt = spec.definitions[0].operations[0].return_type
        assert rt == SequenceType(SequenceType(BasicType("long")))

    def test_missing_semicolon(self):
        with pytest.raises(IdlSyntaxError):
            parse_idl("interface I { void f() }")

    def test_param_requires_direction(self):
        with pytest.raises(IdlSyntaxError, match="in/out/inout"):
            parse_idl("interface I { void f(long x); };")


class TestCompiler:
    def test_attribute_expansion(self):
        compiled = compile_idl(
            "interface A { readonly attribute double x; attribute string y; };",
            TypeRegistry(),
        )
        ops = compiled.interface("A").operations
        assert set(ops) == {"_get_x", "_get_y", "_set_y"}

    def test_inheritance_flattened(self):
        compiled = compile_idl(
            "interface A { void base(); }; interface B : A { void extra(); };",
            TypeRegistry(),
        )
        assert set(compiled.interface("B").operations) == {"base", "extra"}
        assert compiled.interface("B").bases == ("A",)

    def test_scoped_resolution(self):
        compiled = compile_idl(
            """
            module outer {
              struct S { long v; };
              module inner {
                interface I { S get(); };
              };
            };
            """,
            TypeRegistry(),
        )
        op = compiled.interface("outer::inner::I").operation("get")
        assert op.return_type == NamedType("outer::S")

    def test_unresolved_name(self):
        with pytest.raises(ConfigurationError, match="unresolved"):
            compile_idl("interface I { Missing get(); };", TypeRegistry())

    def test_out_params_rejected(self):
        with pytest.raises(ConfigurationError, match="not supported"):
            compile_idl("interface I { void f(out long x); };", TypeRegistry())

    def test_interface_as_value_rejected(self):
        with pytest.raises(ConfigurationError, match="object references"):
            compile_idl(
                "interface A {}; interface B { void f(in A ref); };", TypeRegistry()
            )

    def test_oneway_must_return_void(self):
        with pytest.raises(ConfigurationError, match="must return void"):
            compile_idl("interface I { oneway long f(); };", TypeRegistry())

    def test_raises_must_name_exception(self):
        with pytest.raises(ConfigurationError, match="non-exception"):
            compile_idl(
                "struct S { long v; }; interface I { void f() raises (S); };",
                TypeRegistry(),
            )

    def test_duplicate_definition(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            compile_idl("struct S { long a; }; struct S { long b; };", TypeRegistry())

    def test_simple_name_lookup_ambiguity(self):
        compiled = compile_idl(
            "module a { interface X {}; }; module b { interface X {}; };",
            TypeRegistry(),
        )
        with pytest.raises(ConfigurationError, match="ambiguous"):
            compiled.interface("X")
        assert compiled.interface("a::X").name == "a::X"


class TestConformance:
    @pytest.fixture
    def compiled(self):
        return compile_idl(
            """
            struct Pt { double x; double y; };
            exception Bad { string why; };
            interface T {
              void take_octet(in octet o);
              void take_short(in short s);
              void take_seq(in sequence<long> xs);
              void take_pt(in Pt p);
              double ret();
            };
            """,
            TypeRegistry(),
        )

    def test_octet_range(self, compiled):
        op = compiled.interface("T").operation("take_octet")
        op.check_args((255,), compiled)
        with pytest.raises(MarshalError):
            op.check_args((256,), compiled)
        with pytest.raises(MarshalError):
            op.check_args((True,), compiled)  # bool is not an octet

    def test_short_range(self, compiled):
        op = compiled.interface("T").operation("take_short")
        op.check_args((-32768,), compiled)
        with pytest.raises(MarshalError):
            op.check_args((40000,), compiled)

    def test_sequence_elements_checked(self, compiled):
        op = compiled.interface("T").operation("take_seq")
        op.check_args(([1, 2, 3],), compiled)
        with pytest.raises(MarshalError):
            op.check_args(([1, "no"],), compiled)

    def test_struct_instance_checked(self, compiled):
        op = compiled.interface("T").operation("take_pt")
        pt = compiled.structs["Pt"](x=1.0, y=2.0)
        op.check_args((pt,), compiled)
        with pytest.raises(MarshalError):
            op.check_args(({"x": 1.0},), compiled)

    def test_arity_checked(self, compiled):
        op = compiled.interface("T").operation("ret")
        with pytest.raises(MarshalError, match="takes 0"):
            op.check_args((1,), compiled)

    def test_result_checked(self, compiled):
        op = compiled.interface("T").operation("ret")
        op.check_result(1.5, compiled)
        op.check_result(2, compiled)  # int acceptable for double
        with pytest.raises(MarshalError):
            op.check_result("no", compiled)

    def test_exception_class_behaviour(self, compiled):
        bad = compiled.exceptions["Bad"]
        exc = bad(why="reason")
        assert exc == bad(why="reason")
        assert exc != bad(why="other")
        assert "reason" in str(exc)
        with pytest.raises(TypeError):
            bad(nope=1)
