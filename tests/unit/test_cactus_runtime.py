"""Unit tests for the Cactus runtime (timers, priorities, shutdown)."""

import threading
import time

import pytest

from repro.cactus.runtime import CactusRuntime, default_worker_count
from repro.util.clock import VirtualClock
from repro.util.concurrency import current_thread_priority, thread_priority


@pytest.fixture
def runtime():
    rt = CactusRuntime(workers=4, name="test-rt")
    yield rt
    rt.shutdown()


class TestSubmit:
    def test_runs_on_pool(self, runtime):
        assert runtime.submit(lambda: threading.current_thread().name).result(2.0).startswith(
            "test-rt"
        )

    def test_priority_inherited(self, runtime):
        with thread_priority(7):
            future = runtime.submit(current_thread_priority)
        assert future.result(2.0) == 7

    def test_default_worker_count_bounds(self):
        count = default_worker_count()
        assert 4 <= count <= 16


class TestSubmitDelayed:
    def test_fires_after_delay(self, runtime):
        done = threading.Event()
        start = time.monotonic()
        runtime.submit_delayed(0.05, done.set)
        assert done.wait(2.0)
        assert time.monotonic() - start >= 0.04

    def test_does_not_occupy_pool_workers(self):
        """Many armed timers must not starve the pool (regression: TotalOrder
        failover timers once consumed every worker for their full delay)."""
        rt = CactusRuntime(workers=2, name="starve-rt")
        try:
            for _ in range(10):
                rt.submit_delayed(5.0, lambda: None)
            # With 10 pending 5s timers and only 2 workers, immediate work
            # must still run promptly.
            assert rt.submit(lambda: "alive").result(1.0) == "alive"
        finally:
            rt.shutdown()

    def test_shares_one_timer_thread(self):
        """Armed delays multiplex onto one heap-driven timer thread."""
        rt = CactusRuntime(workers=2, name="wheel-rt")
        try:
            for _ in range(25):
                rt.submit_delayed(5.0, lambda: None)
            timers = [
                t for t in threading.enumerate() if t.name == "wheel-rt-timer"
            ]
            assert len(timers) == 1
        finally:
            rt.shutdown()

    def test_cancellation(self, runtime):
        fired = threading.Event()
        cancelled = threading.Event()
        runtime.submit_delayed(0.05, fired.set, cancelled=cancelled.is_set)
        cancelled.set()
        time.sleep(0.15)
        assert not fired.is_set()

    def test_result_ferried(self, runtime):
        future = runtime.submit_delayed(0.01, lambda: 42)
        assert future.result(2.0) == 42

    def test_exception_ferried(self, runtime):
        future = runtime.submit_delayed(0.01, lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(2.0)

    def test_virtual_clock_timer(self):
        clock = VirtualClock()
        rt = CactusRuntime(clock=clock, workers=2, name="virt-rt")
        try:
            fired = threading.Event()
            rt.submit_delayed(10.0, fired.set)
            time.sleep(0.05)
            assert not fired.is_set()
            for _ in range(100):
                if clock.pending_sleepers():
                    break
                time.sleep(0.005)
            clock.advance(10.0)
            assert fired.wait(2.0)
        finally:
            rt.shutdown()

    def test_shutdown_suppresses_pending_timers(self):
        rt = CactusRuntime(workers=2, name="shutdown-rt")
        fired = threading.Event()
        rt.submit_delayed(0.05, fired.set)
        rt.shutdown()
        time.sleep(0.15)
        assert not fired.is_set()
