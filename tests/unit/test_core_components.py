"""Unit tests for CQoS core pieces against in-memory fake platforms.

These avoid the middleware substrates entirely: a fake ClientPlatform /
ServerPlatform lets each core behaviour (stub bookkeeping, skeleton control
routing, Cactus client/server blocking semantics) be tested in isolation.
"""

import pytest

from repro.core.client import CactusClient
from repro.core.interfaces import ClientPlatform, ServerPlatform
from repro.core.request import PB_CLIENT_ID, PB_PRIORITY, PB_REQUEST_ID, Request
from repro.core.server import CactusServer
from repro.core.skeleton import CONTROL_OPERATION, CqosSkeleton
from repro.core.stub import make_cqos_stub_class
from repro.idl.compiler import compile_idl
from repro.serialization.registry import TypeRegistry
from repro.util.errors import CommunicationError, ConfigurationError

IDL = """
interface Echo {
  any echo(in any value);
  void poke();
};
"""


class FakeClientPlatform(ClientPlatform):
    """Answers invocations locally; scriptable failures."""

    def __init__(self, servers: int = 1):
        self.servers = servers
        self.bound: list[int] = []
        self.invocations: list[tuple[int, str, list]] = []
        self.fail_servers: set[int] = set()

    def num_servers(self) -> int:
        return self.servers

    def bind(self, server: int) -> None:
        self.bound.append(server)

    def server_status(self, server: int) -> bool:
        return True

    def invoke_server(self, server: int, request: Request):
        self.invocations.append((server, request.operation, list(request.get_params())))
        if server in self.fail_servers:
            raise CommunicationError(f"server {server} scripted to fail")
        if request.operation == "echo":
            return request.get_param(0)
        return None


class FakeServerPlatform(ServerPlatform):
    def __init__(self):
        self.invoked: list[Request] = []
        self.peer_messages: list[tuple[int, str, dict]] = []

    def invoke_servant(self, request: Request):
        self.invoked.append(request)
        if request.operation == "echo":
            return request.get_param(0)
        return None

    def my_replica(self) -> int:
        return 1

    def num_replicas(self) -> int:
        return 3

    def peer_invoke(self, replica: int, kind: str, payload: dict):
        self.peer_messages.append((replica, kind, payload))
        return True

    def peer_status(self, replica: int) -> bool:
        return True


@pytest.fixture
def echo_interface():
    return compile_idl(IDL, TypeRegistry()).interface("Echo")


class TestCqosStub:
    def test_generated_interface(self, echo_interface):
        stub_class = make_cqos_stub_class(echo_interface)
        stub = stub_class(FakeClientPlatform(), "obj")
        assert callable(stub.echo) and callable(stub.poke)

    def test_passthrough_invocation(self, echo_interface):
        platform = FakeClientPlatform()
        stub = make_cqos_stub_class(echo_interface)(platform, "obj")
        assert stub.echo("hello") == "hello"
        server, operation, params = platform.invocations[0]
        assert (server, operation, params) == (1, "echo", ["hello"])
        assert platform.bound == [1]  # bound at first request

    def test_piggyback_identity_and_priority(self, echo_interface):
        platform = FakeClientPlatform()
        stub = make_cqos_stub_class(echo_interface)(
            platform, "obj", client_id="alice", priority=8
        )
        stub.poke()
        # Inspect what crossed the platform: rebuild from the invocation.
        client = CactusClient.with_base(platform)
        request = stub._make_request("poke", ())
        assert request.piggyback[PB_CLIENT_ID] == "alice"
        assert request.piggyback[PB_PRIORITY] == 8
        assert request.piggyback[PB_REQUEST_ID] == request.request_id
        client.shutdown()
        client.runtime.shutdown()

    def test_arity_enforced(self, echo_interface):
        stub = make_cqos_stub_class(echo_interface)(FakeClientPlatform(), "obj")
        with pytest.raises(TypeError):
            stub.echo()
        with pytest.raises(TypeError):
            stub.poke(1)

    def test_with_cactus_client(self, echo_interface):
        platform = FakeClientPlatform()
        client = CactusClient.with_base(platform)
        try:
            stub = make_cqos_stub_class(echo_interface)(
                platform, "obj", cactus_client=client
            )
            assert stub.echo(42) == 42
        finally:
            client.shutdown()
            client.runtime.shutdown()


class TestCactusClient:
    def test_blocking_request(self):
        platform = FakeClientPlatform()
        client = CactusClient.with_base(platform)
        try:
            request = Request("obj", "echo", ["x"])
            assert client.cactus_request(request) == "x"
            assert request.completed
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_failure_propagates(self):
        platform = FakeClientPlatform()
        platform.fail_servers.add(1)
        client = CactusClient.with_base(platform, request_timeout=5.0)
        try:
            with pytest.raises(CommunicationError):
                client.cactus_request(Request("obj", "poke", []))
        finally:
            client.shutdown()
            client.runtime.shutdown()

    def test_async_request(self):
        platform = FakeClientPlatform()
        client = CactusClient.with_base(platform)
        try:
            request = client.cactus_request_async(Request("obj", "echo", [7]))
            assert request.wait(5.0) == 7
        finally:
            client.shutdown()
            client.runtime.shutdown()


class TestCactusServer:
    def test_blocking_invoke(self):
        platform = FakeServerPlatform()
        server = CactusServer.with_base(platform)
        try:
            assert server.cactus_invoke(Request("obj", "echo", ["v"])) == "v"
            assert len(platform.invoked) == 1
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_priority_policy_applied(self):
        platform = FakeServerPlatform()
        server = CactusServer.with_base(platform, priority_policy=lambda r: 9)
        try:
            request = Request("obj", "poke", [])
            server.cactus_invoke(request)
            assert request.priority == 9
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_unhandled_control_kind_rejected(self):
        platform = FakeServerPlatform()
        server = CactusServer.with_base(platform)
        try:
            with pytest.raises(ConfigurationError, match="configuration mismatch"):
                server.handle_control("mystery", {}, sender=2)
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_control_routed_to_event(self):
        platform = FakeServerPlatform()
        server = CactusServer.with_base(platform)
        try:
            seen = []

            def handler(occurrence):
                message = occurrence.args[0]
                seen.append((message.kind, message.sender, dict(message.payload)))
                message.respond("ack")

            server.bind("control:custom", handler)
            reply = server.handle_control("custom", {"k": 1}, sender=3)
            assert reply == "ack"
            assert seen == [("custom", 3, {"k": 1})]
        finally:
            server.shutdown()
            server.runtime.shutdown()


class TestCqosSkeleton:
    def test_passthrough(self):
        platform = FakeServerPlatform()
        skeleton = CqosSkeleton("obj", platform, cactus_server=None)
        assert skeleton.handle_invocation("echo", ["z"], {}) == "z"

    def test_request_identity_preserved(self):
        platform = FakeServerPlatform()
        server = CactusServer.with_base(platform)
        try:
            skeleton = CqosSkeleton("obj", platform, cactus_server=server)
            skeleton.handle_invocation("poke", [], {PB_REQUEST_ID: "client-id-1"})
            assert platform.invoked[0].request_id == "client-id-1"
        finally:
            server.shutdown()
            server.runtime.shutdown()

    def test_control_ping_without_cactus(self):
        skeleton = CqosSkeleton("obj", FakeServerPlatform(), cactus_server=None)
        assert skeleton.handle_invocation(CONTROL_OPERATION, ["ping", 0, {}], {}) is True

    def test_non_ping_control_without_cactus_rejected(self):
        skeleton = CqosSkeleton("obj", FakeServerPlatform(), cactus_server=None)
        with pytest.raises(ConfigurationError):
            skeleton.handle_invocation(CONTROL_OPERATION, ["order", 1, {}], {})
