"""Unit tests for Cactus events: binding, ordering, halting, raise modes."""

import threading
import time

import pytest

from repro.cactus.composite import CompositeProtocol
from repro.cactus.events import ORDER_DEFAULT, ORDER_FIRST, ORDER_LAST
from repro.util.concurrency import (
    DEFAULT_PRIORITY,
    current_thread_priority,
    set_thread_priority,
)
from repro.util.errors import ConfigurationError


@pytest.fixture(params=["compiled", "reference"])
def composite(request):
    """Every test in this module runs against both dispatch executors."""
    comp = CompositeProtocol("test", compiled_dispatch=(request.param == "compiled"))
    yield comp
    comp.shutdown()
    comp.runtime.shutdown()


class TestBinding:
    def test_handlers_run_in_order(self, composite):
        calls = []
        composite.bind("ev", lambda occ: calls.append("last"), order=ORDER_LAST)
        composite.bind("ev", lambda occ: calls.append("first"), order=ORDER_FIRST)
        composite.bind("ev", lambda occ: calls.append("mid"), order=ORDER_DEFAULT)
        composite.raise_event("ev")
        assert calls == ["first", "mid", "last"]

    def test_equal_order_runs_in_bind_order(self, composite):
        calls = []
        for i in range(4):
            composite.bind("ev", lambda occ, i=i: calls.append(i))
        composite.raise_event("ev")
        assert calls == [0, 1, 2, 3]

    def test_static_args(self, composite):
        calls = []
        composite.bind("ev", lambda occ, tag: calls.append(tag), static_args=("a",))
        composite.bind("ev", lambda occ, tag: calls.append(tag), static_args=("b",))
        composite.raise_event("ev")
        assert calls == ["a", "b"]

    def test_dynamic_args(self, composite):
        seen = []
        composite.bind("ev", lambda occ: seen.append(occ.args))
        composite.raise_event("ev", 1, "two")
        assert seen == [(1, "two")]

    def test_unbind(self, composite):
        calls = []
        binding = composite.bind("ev", lambda occ: calls.append(1))
        composite.raise_event("ev")
        binding.unbind()
        composite.raise_event("ev")
        assert calls == [1]
        binding.unbind()  # idempotent

    def test_multiple_binds_of_same_handler(self, composite):
        calls = []

        def handler(occ, n):
            calls.append(n)

        for n in range(3):
            composite.bind("ev", handler, static_args=(n,))
        composite.raise_event("ev")
        assert calls == [0, 1, 2]

    def test_event_created_on_first_use(self, composite):
        assert composite.event_names() == []
        composite.event("lazy")
        assert composite.event_names() == ["lazy"]

    def test_invalid_event_name(self, composite):
        with pytest.raises(ConfigurationError):
            composite.raise_event("")


class TestHalt:
    def test_halt_skips_later_orders(self, composite):
        calls = []

        def early(occ):
            calls.append("early")
            occ.halt()

        composite.bind("ev", early, order=10)
        composite.bind("ev", lambda occ: calls.append("late"), order=20)
        composite.raise_event("ev")
        assert calls == ["early"]

    def test_halt_lets_same_order_peers_run(self, composite):
        calls = []

        def halting(occ, n):
            calls.append(n)
            occ.halt()

        composite.bind("ev", halting, order=10, static_args=(1,))
        composite.bind("ev", halting, order=10, static_args=(2,))
        composite.bind("ev", lambda occ: calls.append("base"), order=ORDER_LAST)
        composite.raise_event("ev")
        assert calls == [1, 2]

    def test_halt_all_skips_everything(self, composite):
        calls = []

        def halting(occ):
            calls.append("halter")
            occ.halt_all()

        composite.bind("ev", halting, order=10)
        composite.bind("ev", lambda occ: calls.append("peer"), order=10)
        composite.bind("ev", lambda occ: calls.append("late"), order=20)
        composite.raise_event("ev")
        assert calls == ["halter"]


class TestRaiseModes:
    def test_async_raise_returns_future(self, composite):
        done = threading.Event()
        composite.bind("ev", lambda occ: done.set())
        future = composite.raise_event("ev", mode="async")
        future.result(2.0)
        assert done.is_set()

    def test_async_preserves_raiser_priority(self, composite):
        seen = []
        composite.bind("ev", lambda occ: seen.append(current_thread_priority()))
        set_thread_priority(8)
        try:
            composite.raise_event("ev", mode="async").result(2.0)
        finally:
            set_thread_priority(DEFAULT_PRIORITY)
        assert seen == [8]

    def test_async_explicit_priority(self, composite):
        seen = []
        composite.bind("ev", lambda occ: seen.append(current_thread_priority()))
        composite.raise_event("ev", mode="async", priority=2).result(2.0)
        assert seen == [2]

    def test_delayed_raise_fires(self, composite):
        done = threading.Event()
        composite.bind("tick", lambda occ: done.set())
        composite.raise_event("tick", delay=0.02)
        assert done.wait(2.0)

    def test_delayed_raise_cancellable(self, composite):
        fired = threading.Event()
        composite.bind("tick", lambda occ: fired.set())
        handle = composite.raise_event("tick", delay=0.05)
        handle.cancel()
        time.sleep(0.15)
        assert not fired.is_set()

    def test_unknown_mode_rejected(self, composite):
        with pytest.raises(ConfigurationError):
            composite.raise_event("ev", mode="bogus")

    def test_blocking_raise_runs_in_caller_thread(self, composite):
        seen = []
        composite.bind("ev", lambda occ: seen.append(threading.current_thread()))
        composite.raise_event("ev")
        assert seen == [threading.current_thread()]


class TestHaltState:
    """The occurrence's public halt state stays truthful after the raise."""

    def test_halt_state_visible_after_raise(self, composite):
        composite.bind("ev", lambda occ: occ.halt(), order=10)
        composite.bind("ev", lambda occ: None, order=20)
        occurrence = composite.event("ev")._execute((), None)
        assert occurrence.halted
        assert not occurrence.halted_all

    def test_halt_all_state_visible_after_raise(self, composite):
        composite.bind("ev", lambda occ: occ.halt_all(), order=10)
        occurrence = composite.event("ev")._execute((), None)
        assert occurrence.halted
        assert occurrence.halted_all

    def test_unhalted_raise_reports_clean_state(self, composite):
        composite.bind("ev", lambda occ: None)
        occurrence = composite.event("ev")._execute((), None)
        assert not occurrence.halted
        assert not occurrence.halted_all

    def test_state_not_cleared_by_later_handlers(self, composite):
        # The executor used to reset halt flags before each handler; the
        # non-halting same-order peer must not wipe the first peer's halt.
        composite.bind("ev", lambda occ: occ.halt(), order=10)
        composite.bind("ev", lambda occ: None, order=10)
        occurrence = composite.event("ev")._execute((), None)
        assert occurrence.halted


class TestSnapshotVersioning:
    def test_bind_and_unbind_bump_version(self, composite):
        event = composite.event("ev")
        v0 = event.version
        binding = event.bind(lambda occ: None)
        assert event.version == v0 + 1
        binding.unbind()
        assert event.version == v0 + 2

    def test_raise_does_not_bump_version(self, composite):
        event = composite.event("ev")
        event.bind(lambda occ: None)
        version = event.version
        composite.raise_event("ev")
        composite.raise_event("ev")
        assert event.version == version

    def test_bindings_listing_matches_execution_order(self, composite):
        event = composite.event("ev")
        event.bind(lambda occ: None, order=ORDER_LAST)
        event.bind(lambda occ: None, order=ORDER_FIRST)
        event.bind(lambda occ: None, order=ORDER_DEFAULT)
        assert [b.order for b in event.bindings()] == [
            ORDER_FIRST,
            ORDER_DEFAULT,
            ORDER_LAST,
        ]


class TestTracing:
    def test_causal_edges_recorded(self, composite):
        composite.bind("a", lambda occ: composite.raise_event("b"))
        composite.bind("b", lambda occ: composite.raise_event("c"))
        composite.bind("c", lambda occ: None)
        composite.enable_tracing()
        composite.raise_event("a")
        assert composite.trace_edges() == {("a", "b"), ("b", "c")}

    def test_async_edges_attribute_to_raising_event(self, composite):
        done = threading.Event()
        composite.bind("a", lambda occ: composite.raise_event("b", mode="async"))
        composite.bind("b", lambda occ: done.set())
        composite.enable_tracing()
        composite.raise_event("a")
        assert done.wait(2.0)
        assert ("a", "b") in composite.trace_edges()

    def test_tracing_disabled_records_nothing(self, composite):
        composite.bind("a", lambda occ: composite.raise_event("b"))
        composite.bind("b", lambda occ: None)
        composite.raise_event("a")
        assert composite.trace_edges() == set()

    def test_top_level_raise_has_no_edge(self, composite):
        composite.bind("a", lambda occ: None)
        composite.enable_tracing()
        composite.raise_event("a")
        assert composite.trace_edges() == set()
