"""Unit tests for the Cactus message abstraction."""

import pytest

from repro.cactus.message import Message
from repro.util.errors import ConfigurationError


class TestMessage:
    def test_payload_and_attributes(self):
        message = Message("payload", priority=3)
        assert message.payload == "payload"
        assert message.get_attribute("priority") == 3

    def test_attribute_lifecycle(self):
        message = Message()
        assert not message.has_attribute("seq")
        message.set_attribute("seq", 7)
        assert message.has_attribute("seq")
        assert message.require_attribute("seq") == 7
        assert message.remove_attribute("seq") == 7
        assert message.get_attribute("seq", "gone") == "gone"

    def test_require_missing_raises(self):
        with pytest.raises(ConfigurationError):
            Message().require_attribute("absent")

    def test_independent_attribute_spaces(self):
        # Two "micro-protocols" annotate without clobbering each other.
        message = Message(b"data")
        message.set_attribute("privacy.ct", b"ct")
        message.set_attribute("order.seq", 1)
        assert sorted(message.attribute_names()) == ["order.seq", "privacy.ct"]

    def test_wire_roundtrip(self):
        message = Message([1, 2], kind="forward", seq=9)
        rebuilt = Message.from_wire(message.to_wire())
        assert rebuilt.payload == [1, 2]
        assert rebuilt.get_attribute("kind") == "forward"
        assert rebuilt.get_attribute("seq") == 9

    def test_wire_is_codec_friendly(self):
        from repro.serialization.jser import jser_dumps, jser_loads

        wire = Message("p", a=1).to_wire()
        assert jser_loads(jser_dumps(wire)) == wire
