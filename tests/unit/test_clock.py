"""Unit tests for the clock abstraction."""

import threading
import time

from repro.util.clock import RealClock, VirtualClock


class TestRealClock:
    def test_now_is_monotonic(self):
        clock = RealClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_blocks_roughly(self):
        clock = RealClock()
        start = time.monotonic()
        clock.sleep(0.02)
        assert time.monotonic() - start >= 0.015

    def test_sleep_zero_or_negative_returns_immediately(self):
        clock = RealClock()
        start = time.monotonic()
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert time.monotonic() - start < 0.05


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=10.0).now() == 10.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_sleep_wakes_on_advance(self):
        clock = VirtualClock()
        woke = threading.Event()

        def sleeper():
            clock.sleep(1.0)
            woke.set()

        thread = threading.Thread(target=sleeper, daemon=True)
        thread.start()
        # Wait until the sleeper is parked.
        for _ in range(100):
            if clock.pending_sleepers() == 1:
                break
            time.sleep(0.005)
        assert clock.pending_sleepers() == 1
        clock.advance(0.5)
        assert not woke.is_set()
        clock.advance(0.6)
        assert woke.wait(1.0)

    def test_sleep_zero_returns_immediately(self):
        clock = VirtualClock()
        clock.sleep(0.0)  # must not block
        assert clock.pending_sleepers() == 0

    def test_multiple_sleepers_wake_in_deadline_order(self):
        clock = VirtualClock()
        order = []
        lock = threading.Lock()

        def sleeper(duration, tag):
            clock.sleep(duration)
            with lock:
                order.append(tag)

        threads = [
            threading.Thread(target=sleeper, args=(3.0, "late"), daemon=True),
            threading.Thread(target=sleeper, args=(1.0, "early"), daemon=True),
        ]
        for t in threads:
            t.start()
        for _ in range(100):
            if clock.pending_sleepers() == 2:
                break
            time.sleep(0.005)
        clock.advance(1.5)
        for _ in range(100):
            with lock:
                if order:
                    break
            time.sleep(0.005)
        with lock:
            assert order == ["early"]
        clock.advance(2.0)
        for t in threads:
            t.join(timeout=1.0)
        with lock:
            assert order == ["early", "late"]
