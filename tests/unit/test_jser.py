"""Unit tests for the Java-serialization-like codec."""

import math

import pytest

from repro.serialization.jser import jser_dumps, jser_loads
from repro.serialization.registry import TypeRegistry
from repro.util.errors import MarshalError


class TestRoundtrip:
    CASES = [
        None,
        True,
        False,
        0,
        1,
        -1,
        127,
        -128,
        2**63 - 1,
        -(2**63),
        2**200,
        -(2**200),
        0.0,
        -2.75,
        "",
        "unicode ✓",
        b"",
        b"\x80\xff",
        [],
        [1, [2, [3]]],
        (1, "two"),
        {},
        {"a": 1, 2: "b"},
    ]

    @pytest.mark.parametrize("value", CASES, ids=[repr(c)[:40] for c in CASES])
    def test_roundtrip(self, value):
        assert jser_loads(jser_dumps(value)) == value

    def test_nan(self):
        assert math.isnan(jser_loads(jser_dumps(float("nan"))))

    def test_bool_identity(self):
        assert jser_loads(jser_dumps(True)) is True
        assert jser_loads(jser_dumps(False)) is False
        assert not isinstance(jser_loads(jser_dumps(0)), bool)


class TestSharedStructure:
    def test_aliased_list_preserved(self):
        inner = [1, 2]
        outer = [inner, inner]
        decoded = jser_loads(jser_dumps(outer))
        assert decoded[0] is decoded[1]

    def test_cyclic_list(self):
        cyc = [1]
        cyc.append(cyc)
        decoded = jser_loads(jser_dumps(cyc))
        assert decoded[0] == 1
        assert decoded[1] is decoded

    def test_cyclic_dict(self):
        d = {}
        d["self"] = d
        decoded = jser_loads(jser_dumps(d))
        assert decoded["self"] is decoded

    def test_aliased_value_type(self):
        registry = TypeRegistry()

        class Node:
            def __init__(self, tag):
                self.tag = tag

        registry.register("test.Node", Node)
        node = Node("n")
        decoded = jser_loads(jser_dumps([node, node], registry), registry)
        assert decoded[0] is decoded[1]
        assert decoded[0].tag == "n"


class TestErrors:
    def test_unregistered_type(self):
        class Mystery:
            pass

        with pytest.raises(MarshalError, match="register"):
            jser_dumps(Mystery())

    def test_truncated(self):
        data = jser_dumps([1, 2, 3])
        with pytest.raises(MarshalError):
            jser_loads(data[:-1])

    def test_bad_tag(self):
        with pytest.raises(MarshalError):
            jser_loads(b"\xee")

    def test_dangling_reference(self):
        # TAG_REF (12) to a handle that was never defined.
        with pytest.raises(MarshalError, match="dangling"):
            jser_loads(bytes([12, 5]))

    def test_exception_instances_roundtrip(self):
        from repro.idl.compiler import compile_idl

        compiled = compile_idl("exception Oops { string why; };")
        exc = compiled.exceptions["Oops"](why="it broke")
        decoded = jser_loads(jser_dumps(exc))
        assert decoded == exc
        assert isinstance(decoded, BaseException)
