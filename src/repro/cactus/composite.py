"""Composite protocols and the micro-protocol base class.

A :class:`CompositeProtocol` owns a namespace of events, a runtime, shared
data, and a set of started micro-protocols.  A :class:`MicroProtocol`
implements one service property as event handlers; its ``start()`` binds
them and ``stop()`` unbinds them, so configurations can also change during
execution (the dynamic-customization path).

Raise modes:

- ``composite.raise_event(name, *args)`` — blocking: handlers run in the
  calling thread; the call returns when all (non-halted) handlers have run;
- ``mode="async"`` — non-blocking: handlers run on the runtime pool, at the
  caller's priority unless ``priority=`` is given (the paper's modified
  raise operation);
- ``delay=seconds`` — time-driven execution; returns a cancellable handle.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from repro.cactus.events import (
    Binding,
    DelayedRaise,
    Event,
    Handler,
    ORDER_DEFAULT,
    _handling,
    compiled_dispatch_default,
    current_event,
    validate_event_name,
)
from repro.cactus.runtime import CactusRuntime
from repro.util.concurrency import ResultFuture
from repro.util.errors import ConfigurationError


class SharedData:
    """A small thread-safe key/value store shared by micro-protocols."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._data: dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._data.get(key, default)

    def set(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value

    def setdefault(self, key: str, value: Any) -> Any:
        with self._lock:
            return self._data.setdefault(key, value)

    def update(self, key: str, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Atomically replace ``key`` with ``fn(current)``; returns the new value."""
        with self._lock:
            new_value = fn(self._data.get(key, default))
            self._data[key] = new_value
            return new_value

    def pop(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._data.pop(key, default)

    @property
    def lock(self) -> threading.RLock:
        """The store's lock, for multi-key critical sections."""
        return self._lock


class CompositeProtocol:
    """A container of micro-protocols coordinating through events."""

    def __init__(
        self,
        name: str,
        runtime: CactusRuntime | None = None,
        compiled_dispatch: bool | None = None,
    ):
        self.name = name
        self.runtime = runtime or CactusRuntime(name=f"{name}-rt")
        self.shared = SharedData()
        # Dispatch executor choice for every event of this composite; None
        # defers to the CQOS_COMPILED_DISPATCH environment escape hatch.
        if compiled_dispatch is None:
            compiled_dispatch = compiled_dispatch_default()
        self.compiled_dispatch = bool(compiled_dispatch)
        self._events: dict[str, Event] = {}
        self._events_lock = threading.Lock()
        self._micro_protocols: dict[str, "MicroProtocol"] = {}
        self._mp_lock = threading.Lock()
        # Causality tracing (Figure 3 reproduction).
        self._trace_lock = threading.Lock()
        self._tracing = False
        self._trace_edges: set[tuple[str, str]] = set()

    # -- events ----------------------------------------------------------

    def event(self, name: str) -> Event:
        """Return the event named ``name``, creating it on first use."""
        # Lock-free hit: the dict is only ever grown, and dict reads are
        # atomic under the GIL; creation double-checks under the lock.
        event = self._events.get(name)
        if event is not None:
            return event
        validate_event_name(name)
        with self._events_lock:
            event = self._events.get(name)
            if event is None:
                event = Event(self, name, compiled=self.compiled_dispatch)
                self._events[name] = event
            return event

    def delete_event(self, name: str) -> None:
        with self._events_lock:
            self._events.pop(name, None)

    def event_names(self) -> list[str]:
        with self._events_lock:
            return sorted(self._events)

    def bind(
        self,
        event_name: str,
        handler: Handler,
        order: int = ORDER_DEFAULT,
        static_args: tuple = (),
    ) -> Binding:
        return self.event(event_name).bind(handler, order=order, static_args=static_args)

    def raise_event(
        self,
        event_name: str,
        *args: Any,
        mode: str = "blocking",
        delay: float = 0.0,
        priority: int | None = None,
    ) -> ResultFuture | DelayedRaise | None:
        """Raise an event (see module docstring for modes).

        Returns None for blocking raises, a future for async raises, and a
        cancellable :class:`DelayedRaise` handle when ``delay`` is set.
        """
        # Lock-free event lookup (events are only ever added) and inlined
        # current_event(self): both run on every raise.
        event = self._events.get(event_name)
        if event is None:
            event = self.event(event_name)
        stack = getattr(_handling, "stack", None)
        parent: str | None = None
        if stack is None:
            stack = []
            _handling.stack = stack
        elif stack:
            owner, parent = stack[-1]
            if owner is not self:
                parent = None
            elif self._tracing:
                self._record_edge(parent, event_name)
        if mode == "blocking" and delay == 0.0:
            event.raise_count += 1
            event._raise_blocking(args, parent, stack)
            return None
        return self._raise_slow(event, args, mode, delay, priority, parent)

    def _raise_slow(
        self,
        event: Event,
        args: tuple,
        mode: str,
        delay: float,
        priority: int | None,
        parent: str | None,
    ) -> ResultFuture | DelayedRaise | None:
        """Delayed, async, and invalid-mode raises (off the hot path)."""
        if mode != "blocking" and mode != "async":
            raise ConfigurationError(f"unknown raise mode {mode!r}")
        event.raise_count += 1
        if delay > 0.0:
            handle = DelayedRaise()
            self.runtime.submit_delayed(
                delay,
                event._execute,
                args,
                parent,
                priority=priority,
                cancelled=lambda: handle.cancelled,
            )
            return handle
        if mode == "async":
            return self.runtime.submit(event._execute, args, parent, priority=priority)
        event._raise_blocking(args, parent)
        return None

    # -- micro-protocols ----------------------------------------------------

    def add_micro_protocol(self, micro_protocol: "MicroProtocol") -> "MicroProtocol":
        """Install and start a micro-protocol (also the dynamic-load path)."""
        with self._mp_lock:
            if micro_protocol.name in self._micro_protocols:
                raise ConfigurationError(
                    f"micro-protocol {micro_protocol.name!r} already configured in {self.name}"
                )
            self._micro_protocols[micro_protocol.name] = micro_protocol
        micro_protocol._attach(self)
        micro_protocol.start()
        return micro_protocol

    def configure(self, micro_protocols: Iterable["MicroProtocol"]) -> None:
        """Static customization: install a whole configuration at once."""
        for micro_protocol in micro_protocols:
            self.add_micro_protocol(micro_protocol)

    def remove_micro_protocol(self, name: str) -> None:
        with self._mp_lock:
            micro_protocol = self._micro_protocols.pop(name, None)
        if micro_protocol is not None:
            micro_protocol.stop()

    def micro_protocol(self, name: str) -> "MicroProtocol":
        with self._mp_lock:
            micro_protocol = self._micro_protocols.get(name)
        if micro_protocol is None:
            raise ConfigurationError(f"no micro-protocol {name!r} in {self.name}")
        return micro_protocol

    def micro_protocol_names(self) -> list[str]:
        with self._mp_lock:
            return sorted(self._micro_protocols)

    def shutdown(self) -> None:
        with self._mp_lock:
            micro_protocols = list(self._micro_protocols.values())
            self._micro_protocols.clear()
        for micro_protocol in micro_protocols:
            micro_protocol.stop()

    # -- tracing ---------------------------------------------------------------

    def enable_tracing(self) -> None:
        with self._trace_lock:
            self._tracing = True
            self._trace_edges.clear()

    def disable_tracing(self) -> None:
        with self._trace_lock:
            self._tracing = False

    def trace_edges(self) -> set[tuple[str, str]]:
        """Observed (raising event -> raised event) causal edges."""
        with self._trace_lock:
            return set(self._trace_edges)

    def _record_edge(self, parent: str | None, child: str) -> None:
        if parent is None:
            return
        with self._trace_lock:
            if self._tracing:
                self._trace_edges.add((parent, child))

    # -- observability -----------------------------------------------------

    def event_stats(self) -> dict[str, int]:
        """Raise counts per event name since creation (or the last reset).

        Counters live on the events themselves (maintained without a lock
        on the raise path): exact for causally-serial flows, best-effort
        when one event is raised from many threads at once.
        """
        with self._events_lock:
            events = list(self._events.values())
        return {event.name: event.raise_count for event in events if event.raise_count}

    def reset_event_stats(self) -> None:
        with self._events_lock:
            for event in self._events.values():
                event.raise_count = 0

    def protocol_stats(self) -> dict[str, dict[str, int]]:
        """Per-micro-protocol counters (only protocols that counted anything).

        The second observability surface next to :meth:`event_stats`:
        micro-protocols report what they *did* (retries, breaker trips,
        deadline sheds, stale serves, …) via :meth:`MicroProtocol.incr`, and
        experiments chart availability from these numbers.
        """
        with self._mp_lock:
            micro_protocols = list(self._micro_protocols.values())
        stats = {}
        for micro_protocol in micro_protocols:
            counters = micro_protocol.stats()
            if counters:
                stats[micro_protocol.name] = counters
        return stats


class MicroProtocol:
    """Base class for micro-protocols.

    Subclasses implement :meth:`start` by calling :meth:`bind` for each
    handler; bindings are tracked so :meth:`stop` (and therefore dynamic
    reconfiguration) cleans up automatically.
    """

    #: Default instance name; instances may override via constructor.
    name = "micro-protocol"

    def __init__(self, name: str | None = None):
        if name is not None:
            self.name = name
        self._composite: CompositeProtocol | None = None
        self._bindings: list[Binding] = []
        self._counters: dict[str, int] = {}
        self._counters_lock = threading.Lock()

    def _attach(self, composite: CompositeProtocol) -> None:
        self._composite = composite

    @property
    def composite(self) -> CompositeProtocol:
        if self._composite is None:
            raise ConfigurationError(
                f"micro-protocol {self.name!r} is not attached to a composite"
            )
        return self._composite

    @property
    def shared(self) -> SharedData:
        return self.composite.shared

    def bind(
        self,
        event_name: str,
        handler: Handler,
        order: int = ORDER_DEFAULT,
        static_args: tuple = (),
    ) -> Binding:
        binding = self.composite.bind(event_name, handler, order=order, static_args=static_args)
        self._bindings.append(binding)
        return binding

    def raise_event(self, event_name: str, *args: Any, **kwargs: Any):
        return self.composite.raise_event(event_name, *args, **kwargs)

    def start(self) -> None:
        """Bind handlers.  Subclasses override."""

    def stop(self) -> None:
        """Unbind all handlers bound through :meth:`bind`."""
        for binding in self._bindings:
            binding.unbind()
        self._bindings.clear()

    # -- observability -----------------------------------------------------

    def incr(self, counter: str, amount: int = 1) -> None:
        """Bump a named counter (surfaces in ``composite.protocol_stats()``)."""
        with self._counters_lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def stats(self) -> dict[str, int]:
        """Snapshot of this micro-protocol's counters."""
        with self._counters_lock:
            return dict(self._counters)
