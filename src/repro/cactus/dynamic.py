"""Dynamic customization: the rBoot/rControl mechanism.

In Cactus/J, dynamic customization works through two generic
micro-protocols: *rBoot* knows only how to connect to a code source and
accept rControl as a Java archive; *rControl* then loads the actual
micro-protocols of the configuration and stays resident so more can be
loaded during execution.

The reproduction keeps the two-stage structure and the deployment benefit
(a composite constructor that starts only ``RBoot`` gets its real
configuration from elsewhere) but substitutes *loading by registered name*
for Java bytecode transfer: shipping executable code between simulated
hosts would add risk without adding fidelity, since what the experiments
exercise is *which* micro-protocols run, not how their code arrives.  The
substitution is recorded in DESIGN.md.

Configuration sources (the paper's three deployment options):

- a peer composite (client downloads from server or vice versa), served by
  :func:`serve_configuration` over the network;
- an external :class:`ConfigurationService` holding configurations per
  ``(user, service)`` pair;
- a local callable, for tests.

As in the prototype, dynamic customization happens when the composite
protocol is created and initialized; ``RControl.load()`` remains available
afterwards for explicitly loading more micro-protocols at run time.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.cactus.composite import CompositeProtocol, MicroProtocol
from repro.cactus.config import MicroProtocolSpec, build_micro_protocols
from repro.net.transport import Host, Listener, Network
from repro.serialization.jser import jser_dumps, jser_loads
from repro.util.errors import ConfigurationError

ConfigSource = Callable[[], list[MicroProtocolSpec]]

CONFIG_SERVICE_NAME = "cactus-config"


class RControl(MicroProtocol):
    """Loads and manages the micro-protocols of a dynamic configuration.

    Remains installed for the composite's lifetime so new micro-protocols
    can be loaded during execution.
    """

    name = "rControl"

    def __init__(self) -> None:
        super().__init__()
        self._loaded: list[str] = []
        self._lock = threading.Lock()

    def load(self, specs: list[MicroProtocolSpec]) -> list[MicroProtocol]:
        """Instantiate ``specs`` and install them into the composite."""
        instances = build_micro_protocols(specs)
        for instance in instances:
            self.composite.add_micro_protocol(instance)
            with self._lock:
                self._loaded.append(instance.name)
        return instances

    def loaded_names(self) -> list[str]:
        with self._lock:
            return list(self._loaded)


class RBoot(MicroProtocol):
    """Minimal bootstrap: fetch the configuration, hand it to rControl.

    The composite constructor needs to start only this micro-protocol to
    support full dynamic customization.
    """

    name = "rBoot"

    def __init__(self, source: ConfigSource):
        super().__init__()
        self._source = source
        self.control: RControl | None = None

    def start(self) -> None:
        specs = self._source()
        control = RControl()
        self.composite.add_micro_protocol(control)
        control.load(specs)
        self.control = control


def serve_configuration(
    host: Host, specs_provider: Callable[[], list[MicroProtocolSpec]]
) -> Listener:
    """Expose a composite's configuration for peers to download.

    The paper's prototype ships the client configuration from the Cactus
    server over a separate TCP connection; this is that side channel.
    """

    def handle(_request: bytes) -> bytes:
        return jser_dumps([spec.to_wire() for spec in specs_provider()])

    return host.listen(CONFIG_SERVICE_NAME, handle)


def fetch_configuration(host: Host, peer_host_name: str) -> list[MicroProtocolSpec]:
    """Download a configuration served by :func:`serve_configuration`."""
    connection = host.connect(f"{peer_host_name}/{CONFIG_SERVICE_NAME}")
    try:
        payload = jser_loads(connection.call(b"get"))
    finally:
        connection.close()
    return [MicroProtocolSpec.from_wire(item) for item in payload]


def peer_config_source(host: Host, peer_host_name: str) -> ConfigSource:
    """A :class:`RBoot` source that downloads from a peer at start time."""
    return lambda: fetch_configuration(host, peer_host_name)


class ConfigurationService:
    """External configuration service: configurations per (user, service).

    "An external configuration service allows the properties — and thus the
    configurations — to be defined for all [user,service] pairs without
    requiring direct manual configuration of protocols."
    """

    def __init__(self, network: Network, host_name: str = "config-service"):
        self._network = network
        self._host = network.host(host_name)
        self.host_name = host_name
        self._lock = threading.Lock()
        self._table: dict[tuple[str, str], list[MicroProtocolSpec]] = {}
        self._listener = self._host.listen(CONFIG_SERVICE_NAME, self._handle)

    def define(self, user: str, service: str, specs: list[MicroProtocolSpec]) -> None:
        """Install the configuration for a (user, service) pair."""
        with self._lock:
            self._table[(user, service)] = list(specs)

    def _lookup(self, user: str, service: str) -> list[MicroProtocolSpec]:
        with self._lock:
            specs = self._table.get((user, service))
        if specs is None:
            raise ConfigurationError(f"no configuration for user={user!r} service={service!r}")
        return specs

    def _handle(self, request: bytes) -> bytes:
        query = jser_loads(request)
        specs = self._lookup(query["user"], query["service"])
        return jser_dumps([spec.to_wire() for spec in specs])

    def close(self) -> None:
        self._listener.close()

    @staticmethod
    def source(
        network: Network,
        client_host_name: str,
        service_host_name: str,
        user: str,
        service: str,
    ) -> ConfigSource:
        """A :class:`RBoot` source that queries the configuration service."""

        def fetch() -> list[MicroProtocolSpec]:
            host = network.host(client_host_name)
            connection = host.connect(f"{service_host_name}/{CONFIG_SERVICE_NAME}")
            try:
                payload = jser_loads(
                    connection.call(jser_dumps({"user": user, "service": service}))
                )
            finally:
                connection.close()
            return [MicroProtocolSpec.from_wire(item) for item in payload]

        return fetch


def dynamic_composite(
    name: str,
    source: ConfigSource,
    runtime=None,
    compiled_dispatch: bool | None = None,
) -> CompositeProtocol:
    """Create a composite whose constructor starts only rBoot (full dynamic).

    ``compiled_dispatch`` picks the event executor for the composite (None
    defers to ``CQOS_COMPILED_DISPATCH``); micro-protocols loaded later by
    rControl bind into whichever executor the composite was created with —
    dynamic reconfiguration invalidates and recompiles the per-event
    handler chains through the normal bind/unbind versioning.
    """
    composite = CompositeProtocol(
        name, runtime=runtime, compiled_dispatch=compiled_dispatch
    )
    composite.add_micro_protocol(RBoot(source))
    return composite
