"""The Cactus message abstraction.

Cactus provides a message type "designed to facilitate development of
configurable services": a payload plus a bag of named attributes that
micro-protocols may add, read, and remove independently — so a privacy
micro-protocol can attach a ciphertext attribute while an ordering
micro-protocol attaches a sequence number, neither knowing about the other.

In CQoS the role of the message is mostly played by the abstract request
(:mod:`repro.core.request`), but the replica control plane (total-order
announcements, passive-replication forwarding) ships :class:`Message`
instances, and it is exercised directly by tests.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.util.errors import ConfigurationError


class Message:
    """A payload with micro-protocol-extensible named attributes."""

    def __init__(self, payload: Any = None, **attributes: Any):
        self.payload = payload
        self._attributes: dict[str, Any] = dict(attributes)

    def set_attribute(self, name: str, value: Any) -> None:
        self._attributes[name] = value

    def get_attribute(self, name: str, default: Any = None) -> Any:
        return self._attributes.get(name, default)

    def require_attribute(self, name: str) -> Any:
        if name not in self._attributes:
            raise ConfigurationError(f"message lacks required attribute {name!r}")
        return self._attributes[name]

    def remove_attribute(self, name: str) -> Any:
        return self._attributes.pop(name, None)

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def attribute_names(self) -> Iterator[str]:
        return iter(sorted(self._attributes))

    def to_wire(self) -> dict:
        """A codec-friendly dict representation."""
        return {"payload": self.payload, "attributes": dict(self._attributes)}

    @classmethod
    def from_wire(cls, wire: dict) -> "Message":
        message = cls(wire.get("payload"))
        message._attributes = dict(wire.get("attributes", {}))
        return message

    def __repr__(self) -> str:
        names = ",".join(self.attribute_names())
        return f"Message(payload={self.payload!r}, attributes=[{names}])"
