"""The Cactus runtime: event execution threads and delayed raises.

Wraps a :class:`~repro.util.concurrency.PriorityExecutor` (the thread pool
the paper mentions adding to Cactus/J as a performance optimization) and a
clock for delayed raises.  The two section-3.4 runtime changes live here:

1. asynchronous raises accept an explicit ``priority`` for the thread that
   executes the handlers (the modified ``raise()`` operation);
2. without an explicit priority, handlers execute at the raising thread's
   priority (priority preservation), which the executor guarantees.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.util.clock import Clock, RealClock
from repro.util.concurrency import PriorityExecutor, ResultFuture


def default_worker_count() -> int:
    """Pool size scaled to the machine: 4 per core, at least 4, at most 16.

    Every composite protocol owns a pool; a replicated deployment holds
    many composites, so oversized pools just add scheduler pressure
    (especially on single-core hosts).
    """
    return max(4, min(16, 4 * (os.cpu_count() or 1)))


class CactusRuntime:
    """Execution resources shared by the composite protocols of one process."""

    def __init__(
        self,
        clock: Clock | None = None,
        workers: int | None = None,
        name: str = "cactus",
    ):
        self.clock = clock or RealClock()
        if workers is None:
            workers = default_worker_count()
        self._executor = PriorityExecutor(workers=workers, name=name)
        self._closed = False

    def submit(
        self, fn: Callable[..., None], *args, priority: int | None = None
    ) -> ResultFuture:
        """Run ``fn(*args)`` on the pool (at the caller's priority by default)."""
        return self._executor.submit(fn, *args, priority=priority)

    def submit_delayed(
        self,
        delay: float,
        fn: Callable[..., None],
        *args,
        priority: int | None = None,
        cancelled: Callable[[], bool] | None = None,
    ) -> ResultFuture:
        """Run ``fn(*args)`` after ``delay`` seconds of this runtime's clock.

        The delay is served by a dedicated daemon timer thread — never by a
        pool worker, since a sleeping worker would starve the pool (a
        composite with many armed timers, e.g. TotalOrder failover checks,
        must still execute events).  After the delay the callable runs on
        the pool at the requested priority.  ``cancelled`` is consulted
        after the sleep; a true result skips the call.
        """
        import threading

        future = ResultFuture()
        if priority is None:
            from repro.util.concurrency import current_thread_priority

            priority = current_thread_priority()

        def execute() -> None:
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - ferried to the future
                future.set_exception(exc)

        def timer() -> None:
            self.clock.sleep(delay)
            if self._closed or (cancelled is not None and cancelled()):
                future.set_result(None)
                return
            try:
                self._executor.submit(execute, priority=priority)
            except RuntimeError:
                future.set_result(None)  # runtime shut down meanwhile

        threading.Thread(target=timer, daemon=True, name="cactus-timer").start()
        return future

    def shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=False)

    @property
    def pending(self) -> int:
        return self._executor.pending
