"""The Cactus runtime: event execution threads and delayed raises.

Wraps a :class:`~repro.util.concurrency.PriorityExecutor` (the thread pool
the paper mentions adding to Cactus/J as a performance optimization) and a
clock for delayed raises.  The two section-3.4 runtime changes live here:

1. asynchronous raises accept an explicit ``priority`` for the thread that
   executes the handlers (the modified ``raise()`` operation);
2. without an explicit priority, handlers execute at the raising thread's
   priority (priority preservation), which the executor guarantees.
"""

from __future__ import annotations

import heapq
import os
import threading
from typing import Callable

from repro.util.clock import Clock, RealClock
from repro.util.concurrency import (
    PriorityExecutor,
    ResultFuture,
    current_thread_priority,
)


class _TimerWheel:
    """One shared daemon thread serving all of a runtime's delayed raises.

    Armed timers sit in a deadline heap; the thread does a condition timed
    wait until the earliest deadline, fires that action, and re-waits.  A
    composite with hundreds of armed failover timers therefore costs one
    thread, not one per raise.  Only used with :class:`RealClock` — a
    virtual clock's time advances by explicit calls, so its timers must
    park inside ``clock.sleep`` where the test driver can see them.
    """

    def __init__(self, clock: Clock, name: str):
        self._clock = clock
        self._name = name
        self._cond = threading.Condition()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._thread: threading.Thread | None = None
        self._closed = False

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("timer wheel is closed")
            deadline = self._clock.now() + max(delay, 0.0)
            self._seq += 1
            heapq.heappush(self._heap, (deadline, self._seq, action))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, daemon=True, name=f"{self._name}-timer"
                )
                self._thread.start()
            elif self._heap[0][2] is action:
                # New earliest deadline: re-arm the wait.
                self._cond.notify()

    def close(self) -> None:
        """Stop the thread and fire remaining actions immediately.

        Each action re-checks runtime state, so firing after shutdown
        resolves its future to None rather than running the callable."""
        with self._cond:
            self._closed = True
            drained = [action for _, _, action in self._heap]
            self._heap.clear()
            self._cond.notify()
        for action in drained:
            action()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._closed:
                    if not self._heap:
                        self._cond.wait()
                        continue
                    remaining = self._heap[0][0] - self._clock.now()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                if self._closed:
                    return
                _, _, action = heapq.heappop(self._heap)
            action()


def default_worker_count() -> int:
    """Pool size scaled to the machine: 4 per core, at least 4, at most 16.

    Every composite protocol owns a pool; a replicated deployment holds
    many composites, so oversized pools just add scheduler pressure
    (especially on single-core hosts).
    """
    return max(4, min(16, 4 * (os.cpu_count() or 1)))


class CactusRuntime:
    """Execution resources shared by the composite protocols of one process."""

    def __init__(
        self,
        clock: Clock | None = None,
        workers: int | None = None,
        name: str = "cactus",
    ):
        self.clock = clock or RealClock()
        if workers is None:
            workers = default_worker_count()
        self._executor = PriorityExecutor(workers=workers, name=name)
        self._closed = False
        # Delayed raises share one heap-driven timer thread under a real
        # clock; virtual clocks keep a dedicated sleeper per raise so the
        # deterministic-test driver can observe and release it.
        self._timers = (
            _TimerWheel(self.clock, name) if isinstance(self.clock, RealClock) else None
        )

    def submit(
        self, fn: Callable[..., None], *args, priority: int | None = None
    ) -> ResultFuture:
        """Run ``fn(*args)`` on the pool (at the caller's priority by default)."""
        return self._executor.submit(fn, *args, priority=priority)

    def submit_delayed(
        self,
        delay: float,
        fn: Callable[..., None],
        *args,
        priority: int | None = None,
        cancelled: Callable[[], bool] | None = None,
    ) -> ResultFuture:
        """Run ``fn(*args)`` after ``delay`` seconds of this runtime's clock.

        The delay is never served by a pool worker, since a sleeping worker
        would starve the pool (a composite with many armed timers, e.g.
        TotalOrder failover checks, must still execute events).  Under a
        real clock all delays share the runtime's single heap-driven timer
        thread; under a virtual clock each raise parks its own sleeper in
        ``clock.sleep`` so test drivers can observe and release it.  After
        the delay the callable runs on the pool at the requested priority.
        ``cancelled`` is consulted when the delay elapses; a true result
        skips the call.
        """
        future = ResultFuture()
        if priority is None:
            priority = current_thread_priority()

        def execute() -> None:
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - ferried to the future
                future.set_exception(exc)

        def fire() -> None:
            if self._closed or (cancelled is not None and cancelled()):
                future.set_result(None)
                return
            try:
                self._executor.submit(execute, priority=priority)
            except RuntimeError:
                future.set_result(None)  # runtime shut down meanwhile

        if self._timers is not None:
            self._timers.schedule(delay, fire)
            return future

        def timer() -> None:
            self.clock.sleep(delay)
            fire()

        threading.Thread(target=timer, daemon=True, name="cactus-timer").start()
        return future

    def shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            if self._timers is not None:
                self._timers.close()
            self._executor.shutdown(wait=False)

    @property
    def pending(self) -> int:
        return self._executor.pending
