"""Static configuration of composite protocols.

The paper offers two static-customization routes: modifying the composite
protocol's constructor, or a configuration file read at construction time.
This module provides the second one:

- micro-protocol classes register under stable names
  (:func:`register_micro_protocol`);
- a configuration is a list of :class:`MicroProtocolSpec` (name +
  parameters), writable as plain text, one micro-protocol per line::

      # client configuration
      ActiveRep
      MajorityVote
      DesPrivacy key_name=bank-des

- :func:`build_micro_protocols` instantiates a configuration against the
  registry, producing the list a composite's ``configure()`` takes.

The same registry is what the dynamic path (:mod:`repro.cactus.dynamic`)
loads from, standing in for Cactus/J's Java dynamic code loading — we load
trusted registered classes by name rather than shipping bytecode.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.cactus.composite import MicroProtocol

_registry: dict[str, type] = {}
_registry_lock = threading.Lock()


def register_micro_protocol(name: str, cls: type | None = None):
    """Register a micro-protocol class under ``name``.

    Usable directly or as a class decorator::

        @register_micro_protocol("ActiveRep")
        class ActiveRep(MicroProtocol): ...
    """

    def do_register(target: type) -> type:
        with _registry_lock:
            existing = _registry.get(name)
            if existing is not None and existing is not target:
                raise ConfigurationError(f"micro-protocol name {name!r} already registered")
            _registry[name] = target
        return target

    if cls is not None:
        return do_register(cls)
    return do_register


def micro_protocol_registry() -> dict[str, type]:
    """A snapshot of the registered micro-protocol classes."""
    with _registry_lock:
        return dict(_registry)


@dataclass
class MicroProtocolSpec:
    """One configured micro-protocol: registered name + keyword parameters."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_wire(cls, wire: dict) -> "MicroProtocolSpec":
        return cls(name=wire["name"], params=dict(wire.get("params", {})))


def _parse_scalar(text: str) -> Any:
    """Parse a config scalar: int, float, bool, or string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_config_text(text: str) -> list[MicroProtocolSpec]:
    """Parse the one-micro-protocol-per-line configuration format."""
    specs: list[MicroProtocolSpec] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        params: dict[str, Any] = {}
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"config line {line_number}: parameter {part!r} is not key=value"
                )
            params[key] = _parse_scalar(value)
        specs.append(MicroProtocolSpec(name=parts[0], params=params))
    return specs


def load_config_file(path: str) -> list[MicroProtocolSpec]:
    """Read and parse a configuration file."""
    with open(path, encoding="utf-8") as handle:
        return parse_config_text(handle.read())


def build_micro_protocols(specs: list[MicroProtocolSpec]) -> list["MicroProtocol"]:
    """Instantiate a configuration against the registry."""
    registry = micro_protocol_registry()
    instances = []
    for spec in specs:
        cls = registry.get(spec.name)
        if cls is None:
            known = ", ".join(sorted(registry)) or "<none>"
            raise ConfigurationError(
                f"unknown micro-protocol {spec.name!r}; registered: {known}"
            )
        try:
            instances.append(cls(**spec.params))
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters for micro-protocol {spec.name!r}: {exc}"
            ) from exc
    return instances
