"""Cactus: the configurable-protocol framework (Cactus/J analog).

A Cactus *composite protocol* is a container of *micro-protocols*: software
modules structured as collections of *event handlers*.  Customization is
choosing which micro-protocols to start; coordination between them happens
through events:

- handlers bind to named events with an explicit **order** and optional
  **static arguments** (passed on every activation);
- events are **raised** blocking (handlers run in the raising thread, caller
  continues when all complete), non-blocking (handlers run on the runtime's
  priority pool), or with a **delay**;
- a handler can **halt** an occurrence, overriding later-ordered handlers —
  the mechanism base micro-protocols rely on when they bind ``ORDER_LAST``;
- the two Cactus/J runtime changes from the paper's section 3.4 are
  reproduced: ``raise_event`` accepts an explicit thread priority, and
  handlers otherwise run at the raiser's priority.

:mod:`repro.cactus.dynamic` reproduces rBoot/rControl-style dynamic
customization, loading micro-protocols by registered name from a peer or a
configuration service at composite-creation time.
"""

from repro.cactus.events import (
    Binding,
    Event,
    Occurrence,
    ORDER_DEFAULT,
    ORDER_EARLY,
    ORDER_FIRST,
    ORDER_LAST,
    ORDER_LATE,
)
from repro.cactus.runtime import CactusRuntime
from repro.cactus.composite import CompositeProtocol, MicroProtocol
from repro.cactus.message import Message
from repro.cactus.config import (
    MicroProtocolSpec,
    build_micro_protocols,
    micro_protocol_registry,
    parse_config_text,
    register_micro_protocol,
)
from repro.cactus.dynamic import ConfigurationService, RBoot, RControl

__all__ = [
    "Event",
    "Occurrence",
    "Binding",
    "ORDER_FIRST",
    "ORDER_EARLY",
    "ORDER_DEFAULT",
    "ORDER_LATE",
    "ORDER_LAST",
    "CactusRuntime",
    "CompositeProtocol",
    "MicroProtocol",
    "Message",
    "MicroProtocolSpec",
    "register_micro_protocol",
    "micro_protocol_registry",
    "build_micro_protocols",
    "parse_config_text",
    "ConfigurationService",
    "RBoot",
    "RControl",
]
