"""Cactus events, bindings, and occurrence execution.

Semantics (from the paper, sections 2.3.1 and 3.1):

- binding attaches a handler to an event with an *order* and optional
  *static arguments* passed on every activation (ActiveRep binds its
  assigner once per server replica, the replica number being the static
  argument);
- raising executes **all** bound handlers in ascending order (ties run in
  binding order);
- a handler may call :meth:`Occurrence.halt`, which prevents handlers bound
  with a **strictly greater** order from running while letting same-order
  peers complete — this is the override mechanism: base handlers bind
  ``ORDER_LAST``, so any earlier handler can replace the default behaviour
  ("the actAssigner handlers override the base assigner by executing before
  it and halting further execution associated with the event").
  :meth:`Occurrence.halt_all` stops everything, including same-order peers;
- handlers see the dynamic arguments of the raise through
  :attr:`Occurrence.args`.

Causal tracing: when enabled on the composite, every ``raise`` records an
edge from the event whose handler performed the raise — the data behind the
Figure 3 reproduction.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Callable

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.cactus.composite import CompositeProtocol

ORDER_FIRST = 0
ORDER_EARLY = 25
ORDER_DEFAULT = 50
ORDER_LATE = 75
ORDER_LAST = 100

Handler = Callable[..., None]

# Thread-local stack of (composite, event name) currently being handled,
# for causality tracing.  Scoped per composite: with an in-process network
# a server composite's dispatch can run on a thread that is still inside a
# *client* composite's handler, and that cross-composite context must not
# produce edges.
_handling = threading.local()


def _handling_stack() -> list[tuple[object, str]]:
    stack = getattr(_handling, "stack", None)
    if stack is None:
        stack = []
        _handling.stack = stack
    return stack


def current_event(composite: object | None = None) -> str | None:
    """The event this thread is handling (within ``composite``, if given)."""
    stack = _handling_stack()
    if not stack:
        return None
    if composite is None:
        return stack[-1][1]
    owner, name = stack[-1]
    return name if owner is composite else None


class Binding:
    """One handler attached to one event."""

    _ids = itertools.count(1)

    def __init__(self, event: "Event", handler: Handler, order: int, static_args: tuple):
        self.event = event
        self.handler = handler
        self.order = order
        self.static_args = static_args
        self.id = next(Binding._ids)
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def unbind(self) -> None:
        """Detach this handler from the event.  Idempotent."""
        if self._active:
            self._active = False
            self.event._remove(self)

    def __repr__(self) -> str:
        name = getattr(self.handler, "__name__", repr(self.handler))
        return f"Binding({self.event.name}, {name}, order={self.order})"


class Occurrence:
    """One raise of an event: the object handlers receive first."""

    def __init__(self, event: "Event", args: tuple, parent_event: str | None):
        self.event = event
        self.args = args
        self.parent_event = parent_event
        self._halt_order: int | None = None
        self._halt_all = False

    @property
    def composite(self) -> "CompositeProtocol":
        return self.event.composite

    def halt(self) -> None:
        """Skip handlers bound with a strictly greater order (override)."""
        self._halt_all = True  # refined per-handler in _execute

    def halt_all(self) -> None:
        """Skip every remaining handler, including same-order peers."""
        self._halt_all = True
        self._halt_order = -1


class Event:
    """A named event owned by a composite protocol."""

    def __init__(self, composite: "CompositeProtocol", name: str):
        self.composite = composite
        self.name = name
        self._lock = threading.Lock()
        self._bindings: list[Binding] = []

    def bind(self, handler: Handler, order: int = ORDER_DEFAULT, static_args: tuple = ()) -> Binding:
        """Attach ``handler``; it runs on every raise as
        ``handler(occurrence, *static_args)``."""
        binding = Binding(self, handler, order, tuple(static_args))
        with self._lock:
            self._bindings.append(binding)
            self._bindings.sort(key=lambda b: (b.order, b.id))
        return binding

    def _remove(self, binding: Binding) -> None:
        with self._lock:
            if binding in self._bindings:
                self._bindings.remove(binding)

    def bindings(self) -> list[Binding]:
        with self._lock:
            return list(self._bindings)

    def handler_count(self) -> int:
        with self._lock:
            return len(self._bindings)

    def _execute(self, args: tuple, parent_event: str | None) -> Occurrence:
        """Run all handlers in order; honours halt semantics.

        Returns the occurrence so callers can inspect halt state.
        """
        occurrence = Occurrence(self, args, parent_event)
        snapshot = self.bindings()
        stack = _handling_stack()
        halted_after: int | None = None  # order threshold set by halt()
        for binding in snapshot:
            if not binding.active:
                continue
            if occurrence._halt_order == -1:
                break  # halt_all
            if halted_after is not None and binding.order > halted_after:
                break
            stack.append((self.composite, self.name))
            try:
                occurrence._halt_all = False
                binding.handler(occurrence, *binding.static_args)
                if occurrence._halt_all and occurrence._halt_order != -1:
                    # halt(): let same-order peers run, stop later orders.
                    halted_after = binding.order
            finally:
                stack.pop()
        return occurrence

    def __repr__(self) -> str:
        return f"Event({self.name}, handlers={self.handler_count()})"


class DelayedRaise:
    """Handle for a delayed raise; supports cancellation before firing."""

    def __init__(self) -> None:
        self._cancelled = threading.Event()

    def cancel(self) -> None:
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()


def validate_event_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"invalid event name: {name!r}")
    return name
