"""Cactus events, bindings, and occurrence execution.

Semantics (from the paper, sections 2.3.1 and 3.1):

- binding attaches a handler to an event with an *order* and optional
  *static arguments* passed on every activation (ActiveRep binds its
  assigner once per server replica, the replica number being the static
  argument);
- raising executes **all** bound handlers in ascending order (ties run in
  binding order);
- a handler may call :meth:`Occurrence.halt`, which prevents handlers bound
  with a **strictly greater** order from running while letting same-order
  peers complete — this is the override mechanism: base handlers bind
  ``ORDER_LAST``, so any earlier handler can replace the default behaviour
  ("the actAssigner handlers override the base assigner by executing before
  it and halting further execution associated with the event").
  :meth:`Occurrence.halt_all` stops everything, including same-order peers;
- handlers see the dynamic arguments of the raise through
  :attr:`Occurrence.args`.

Causal tracing: when enabled on the composite, every ``raise`` records an
edge from the event whose handler performed the raise — the data behind the
Figure 3 reproduction.

Dispatch executors
------------------

Every event carries two executors with identical observable semantics:

- the **reference executor** is the paper-shaped interpretation loop: take
  the binding lock, copy the binding list, run handlers one by one;
- the **compiled executor** is the fast path (mirroring the
  ``SignaturePlan`` idea from the marshalling layer): ``bind``/``unbind``
  bump a version and invalidate a copy-on-write *snapshot*; the raise path
  reads an immutable pre-compiled handler chain — a flat tuple of
  ``(binding, handler, order, static_args)`` — with **no lock and no list
  copy**, enters the causality stack once per raise instead of once per
  handler, and recycles :class:`Occurrence` objects through a per-thread
  freelist when the raise provably did not leak them.

The compiled path is the default; set ``CQOS_COMPILED_DISPATCH=0`` to fall
back to the reference executor everywhere (the escape hatch), or pass
``compiled_dispatch=`` to a composite to pick per instance.  The
differential suite (tests/unit/test_dispatch_fastpath.py) drives randomized
binding sets through both executors and requires identical handler
sequences and trace edges.
"""

from __future__ import annotations

import itertools
import os
import threading
from bisect import insort
from sys import getrefcount
from typing import TYPE_CHECKING, Callable

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.cactus.composite import CompositeProtocol

ORDER_FIRST = 0
ORDER_EARLY = 25
ORDER_DEFAULT = 50
ORDER_LATE = 75
ORDER_LAST = 100

Handler = Callable[..., None]

#: Environment escape hatch: ``0``/``false``/``no``/``off`` disables the
#: compiled executor for every composite that does not pick explicitly.
COMPILED_DISPATCH_ENV = "CQOS_COMPILED_DISPATCH"


def compiled_dispatch_default() -> bool:
    """Whether new composites use the compiled executor (env-controlled)."""
    value = os.environ.get(COMPILED_DISPATCH_ENV, "1").strip().lower()
    return value not in ("0", "false", "no", "off")


# Thread-local stack of (composite, event name) currently being handled,
# for causality tracing.  Scoped per composite: with an in-process network
# a server composite's dispatch can run on a thread that is still inside a
# *client* composite's handler, and that cross-composite context must not
# produce edges.
_handling = threading.local()


def _handling_stack() -> list[tuple[object, str]]:
    stack = getattr(_handling, "stack", None)
    if stack is None:
        stack = []
        _handling.stack = stack
    return stack


def current_event(composite: object | None = None) -> str | None:
    """The event this thread is handling (within ``composite``, if given)."""
    stack = _handling_stack()
    if not stack:
        return None
    if composite is None:
        return stack[-1][1]
    owner, name = stack[-1]
    return name if owner is composite else None


# Per-thread Occurrence freelist.  An occurrence is recycled only when the
# refcount proves the raise did not leak it (see Event._raise_blocking), so
# a handler that stashes its occurrence keeps a stable, truthful object.
_occ_pool_local = threading.local()

_OCC_POOL_LIMIT = 64


def _occ_pool() -> list["Occurrence"]:
    pool = getattr(_occ_pool_local, "pool", None)
    if pool is None:
        pool = []
        _occ_pool_local.pool = pool
    return pool


class Binding:
    """One handler attached to one event."""

    __slots__ = ("event", "handler", "order", "static_args", "id", "_active")

    _ids = itertools.count(1)

    def __init__(self, event: "Event", handler: Handler, order: int, static_args: tuple):
        self.event = event
        self.handler = handler
        self.order = order
        self.static_args = static_args
        self.id = next(Binding._ids)
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def unbind(self) -> None:
        """Detach this handler from the event.  Idempotent.

        Takes effect immediately, including for raises already in flight:
        both executors re-check ``active`` before each activation.
        """
        if self._active:
            self._active = False
            self.event._remove(self)

    def __repr__(self) -> str:
        name = getattr(self.handler, "__name__", repr(self.handler))
        return f"Binding({self.event.name}, {name}, order={self.order})"


def _binding_sort_key(binding: Binding) -> tuple[int, int]:
    return (binding.order, binding.id)


class Occurrence:
    """One raise of an event: the object handlers receive first.

    Halt state is *truthful*: :attr:`halted` / :attr:`halted_all` report
    whether any handler of this raise called :meth:`halt` /
    :meth:`halt_all`, and stay set after the raise completes.  The
    executors track their chaining decisions in executor-local variables
    instead of mutating this public state back and forth.
    """

    __slots__ = ("event", "args", "parent_event", "_halt", "_halt_all")

    def __init__(self, event: "Event", args: tuple, parent_event: str | None):
        self.event = event
        self.args = args
        self.parent_event = parent_event
        self._halt = False
        self._halt_all = False

    @property
    def composite(self) -> "CompositeProtocol":
        return self.event.composite

    def halt(self) -> None:
        """Skip handlers bound with a strictly greater order (override)."""
        self._halt = True

    def halt_all(self) -> None:
        """Skip every remaining handler, including same-order peers."""
        self._halt = True
        self._halt_all = True

    @property
    def halted(self) -> bool:
        """True once any handler of this raise called ``halt`` (or ``halt_all``)."""
        return self._halt

    @property
    def halted_all(self) -> bool:
        """True once any handler of this raise called ``halt_all``."""
        return self._halt_all


class Event:
    """A named event owned by a composite protocol.

    Mutation (``bind``/``unbind``) happens under ``_lock`` on the sorted
    ``_bindings`` list and *invalidates* the compiled snapshot by bumping
    ``_version`` and setting ``_dirty``.  The snapshot — an immutable
    ``(binding, handler, order, static_args)`` tuple — is rebuilt lazily on
    the next raise (or introspection), under the same lock.  Raises
    therefore observe a consistent point-in-time binding set without taking
    the lock or copying a list, and a configure()-time burst of N binds
    compiles the chain once, not N times.
    """

    def __init__(self, composite: "CompositeProtocol", name: str, compiled: bool | None = None):
        self.composite = composite
        self.name = name
        self._lock = threading.Lock()
        self._bindings: list[Binding] = []  # kept sorted by (order, id)
        self._version = 0
        self._dirty = False
        self._chain: tuple[tuple[Binding, Handler, int, tuple], ...] = ()
        # Shared, pre-allocated causality-stack entry for every raise.
        self._stack_entry = (composite, name)
        #: Raises since creation (or the last stats reset).  Maintained
        #: without a lock: exact for the causally-serial flows experiments
        #: assert on, best-effort under truly concurrent raises.
        self.raise_count = 0
        if compiled is None:
            compiled = compiled_dispatch_default()
        self._compiled = bool(compiled)
        # Bound once so the dispatch branch costs nothing per raise.
        if self._compiled:
            self._execute = self._execute_compiled
            self._raise_blocking = self._raise_blocking_compiled
        else:
            self._execute = self._execute_reference
            # No pooling on the reference path; the returned occurrence is
            # simply dropped by the blocking raise.
            self._raise_blocking = self._execute_reference

    @property
    def compiled(self) -> bool:
        """Whether this event dispatches through the compiled executor."""
        return self._compiled

    @property
    def version(self) -> int:
        """Monotonic binding-set version (bumped by every bind/unbind)."""
        with self._lock:
            return self._version

    def bind(self, handler: Handler, order: int = ORDER_DEFAULT, static_args: tuple = ()) -> Binding:
        """Attach ``handler``; it runs on every raise as
        ``handler(occurrence, *static_args)``."""
        binding = Binding(self, handler, order, tuple(static_args))
        with self._lock:
            # Ids are monotonic, so insort lands a new binding after its
            # same-order peers: O(n) insert, no full re-sort per bind.
            insort(self._bindings, binding, key=_binding_sort_key)
            self._invalidate_locked()
        return binding

    def _remove(self, binding: Binding) -> None:
        with self._lock:
            if binding in self._bindings:
                self._bindings.remove(binding)
                self._invalidate_locked()

    def _invalidate_locked(self) -> None:
        self._version += 1
        self._dirty = True

    def _refresh_chain(self) -> tuple[tuple[Binding, Handler, int, tuple], ...]:
        """Rebuild the compiled chain from the current binding list."""
        with self._lock:
            if self._dirty:
                chain = tuple(
                    (b, b.handler, b.order, b.static_args) for b in self._bindings
                )
                self._chain = chain
                self._dirty = False
            return self._chain

    def bindings(self) -> list[Binding]:
        with self._lock:
            return list(self._bindings)

    def handler_count(self) -> int:
        with self._lock:
            return len(self._bindings)

    # -- executors -------------------------------------------------------

    def _execute_reference(
        self,
        args: tuple,
        parent_event: str | None,
        stack: list | None = None,
    ) -> Occurrence:
        """The interpretation loop, preserved as the seed implementation
        shipped it: per-raise lock + binding-list copy, per-handler
        causality push/pop.  (Only the halt-state handling differs: the
        executor tracks chaining decisions locally so the occurrence's
        public state stays truthful.)

        Returns the occurrence so callers can inspect halt state.
        """
        occurrence = Occurrence(self, args, parent_event)
        snapshot = self.bindings()
        if stack is None:
            stack = _handling_stack()
        halted_after: int | None = None  # order threshold set by halt()
        for binding in snapshot:
            if not binding.active:
                continue
            if halted_after is not None and binding.order > halted_after:
                break
            stack.append((self.composite, self.name))
            try:
                binding.handler(occurrence, *binding.static_args)
            finally:
                stack.pop()
            if occurrence._halt_all:
                break  # halt_all(): nothing else runs, not even peers
            if occurrence._halt and halted_after is None:
                # halt(): let same-order peers run, stop later orders.
                halted_after = binding.order
        return occurrence

    def _execute_compiled(
        self,
        args: tuple,
        parent_event: str | None,
        stack: list | None = None,
    ) -> Occurrence:
        """The fast path: immutable chain, no lock, one stack entry."""
        chain = self._chain
        if self._dirty:
            chain = self._refresh_chain()
        pool = getattr(_occ_pool_local, "pool", None)
        if pool is None:
            pool = _occ_pool()
        if pool:
            occurrence = pool.pop()
            occurrence.event = self
            occurrence.args = args
            occurrence.parent_event = parent_event
            occurrence._halt = False
            occurrence._halt_all = False
        else:
            occurrence = Occurrence(self, args, parent_event)
        if not chain:
            return occurrence
        if stack is None:
            stack = _handling_stack()
        stack.append(self._stack_entry)
        entries = iter(chain)
        try:
            for binding, handler, order, static_args in entries:
                if not binding._active:
                    continue
                if static_args:
                    handler(occurrence, *static_args)
                else:
                    handler(occurrence)
                if occurrence._halt:  # halt_all implies halt: one read
                    if occurrence._halt_all:
                        break
                    # halt(): finish same-order peers, skip the rest.
                    # Only the first halt sets the threshold, so later
                    # halt() calls in the tail are no-ops (as before).
                    threshold = order
                    for binding, handler, order, static_args in entries:
                        if order > threshold:
                            break
                        if not binding._active:
                            continue
                        if static_args:
                            handler(occurrence, *static_args)
                        else:
                            handler(occurrence)
                        if occurrence._halt_all:
                            break
                    break
        finally:
            stack.pop()
        return occurrence

    def _raise_blocking_compiled(
        self,
        args: tuple,
        parent_event: str | None,
        stack: list | None = None,
    ) -> None:
        """Blocking raise on the fast path: execute, then recycle if safe.

        The executor body is intentionally inlined from
        :meth:`_execute_compiled` (one call frame per raise matters at this
        altitude; keep the two in lockstep).  Recycling is refcount-gated:
        exactly two references (the local below plus ``getrefcount``'s
        argument) prove no handler kept the occurrence, so reuse cannot
        mutate state anyone can still observe.
        """
        chain = self._chain
        if self._dirty:
            chain = self._refresh_chain()
        pool = getattr(_occ_pool_local, "pool", None)
        if pool is None:
            pool = _occ_pool()
        if pool:
            occurrence = pool.pop()
            occurrence.event = self
            occurrence.args = args
            occurrence.parent_event = parent_event
            occurrence._halt = False
            occurrence._halt_all = False
        else:
            occurrence = Occurrence(self, args, parent_event)
        if chain:
            if stack is None:
                stack = _handling_stack()
            stack.append(self._stack_entry)
            entries = iter(chain)
            try:
                for binding, handler, order, static_args in entries:
                    if not binding._active:
                        continue
                    if static_args:
                        handler(occurrence, *static_args)
                    else:
                        handler(occurrence)
                    if occurrence._halt:  # halt_all implies halt: one read
                        if occurrence._halt_all:
                            break
                        # halt(): finish same-order peers, skip the rest.
                        # Only the first halt sets the threshold, so later
                        # halt() calls in the tail are no-ops (as before).
                        threshold = order
                        for binding, handler, order, static_args in entries:
                            if order > threshold:
                                break
                            if not binding._active:
                                continue
                            if static_args:
                                handler(occurrence, *static_args)
                            else:
                                handler(occurrence)
                            if occurrence._halt_all:
                                break
                        break
            finally:
                stack.pop()
        if getrefcount(occurrence) == 2 and len(pool) < _OCC_POOL_LIMIT:
            occurrence.event = None  # type: ignore[assignment] - parked
            occurrence.args = ()
            occurrence.parent_event = None
            pool.append(occurrence)

    def __repr__(self) -> str:
        return f"Event({self.name}, handlers={self.handler_count()})"


class DelayedRaise:
    """Handle for a delayed raise; supports cancellation before firing."""

    def __init__(self) -> None:
        self._cancelled = threading.Event()

    def cancel(self) -> None:
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()


def validate_event_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"invalid event name: {name!r}")
    return name
