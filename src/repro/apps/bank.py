"""The BankAccount test application (paper section 5).

"The performance of the approach was tested using a simple BankAccount
object that provides operations for setting and retrieving the balance of
a bank account."  ``set_balance``/``get_balance`` are the two operations
every benchmark table measures in pairs; the IDL also declares the richer
operations the examples use (deposit/withdraw/transfer history).

``work_loops`` models servant CPU cost: each operation spins a small
arithmetic loop, so contention benchmarks (Table 3) have something to
contend over.  Zero by default.
"""

from __future__ import annotations

import threading

from repro.idl.compiler import CompiledIdl, compile_idl

BANK_IDL = """
module bank {
  exception InsufficientFunds {
    string reason;
    double requested;
    double available;
  };

  struct Movement {
    string kind;
    double amount;
    double balance_after;
  };

  interface BankAccount {
    double get_balance();
    void set_balance(in double amount);
    double deposit(in double amount);
    double withdraw(in double amount) raises (InsufficientFunds);
    sequence<any> history(in long count);
    string owner();
  };
};
"""

_lock = threading.Lock()
_compiled: CompiledIdl | None = None


def bank_compiled() -> CompiledIdl:
    """The compiled bank IDL (compiled once per process)."""
    global _compiled
    with _lock:
        if _compiled is None:
            _compiled = compile_idl(BANK_IDL)
        return _compiled


def bank_interface():
    """The BankAccount interface metadata."""
    return bank_compiled().interface("bank::BankAccount")


class BankAccount:
    """The servant: deterministic, thread-safe, optionally CPU-weighted."""

    def __init__(self, owner: str = "alice", balance: float = 0.0, work_loops: int = 0):
        self._owner = owner
        self._balance = float(balance)
        self._work_loops = work_loops
        self._history: list[dict] = []
        self._state_lock = threading.Lock()

    def _work(self) -> None:
        # Synthetic servant CPU cost (integer spin, GIL-bound like the rest
        # of the simulation, which is what makes contention visible).
        acc = 0
        for i in range(self._work_loops):
            acc += i * i
        if acc < 0:  # pragma: no cover - keeps the loop from being elided
            raise AssertionError

    def _record(self, kind: str, amount: float) -> None:
        self._history.append(
            {"kind": kind, "amount": amount, "balance_after": self._balance}
        )

    # -- IDL operations -----------------------------------------------------

    def get_balance(self) -> float:
        with self._state_lock:
            self._work()
            return self._balance

    def set_balance(self, amount: float) -> None:
        with self._state_lock:
            self._work()
            self._balance = float(amount)
            self._record("set", amount)

    def deposit(self, amount: float) -> float:
        with self._state_lock:
            self._work()
            self._balance += amount
            self._record("deposit", amount)
            return self._balance

    def withdraw(self, amount: float) -> float:
        with self._state_lock:
            self._work()
            if amount > self._balance:
                raise bank_compiled().exceptions["bank::InsufficientFunds"](
                    reason="insufficient funds",
                    requested=amount,
                    available=self._balance,
                )
            self._balance -= amount
            self._record("withdraw", amount)
            return self._balance

    def history(self, count: int) -> list:
        with self._state_lock:
            return [dict(m) for m in self._history[-count:]]

    def owner(self) -> str:
        return self._owner
