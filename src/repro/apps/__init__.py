"""Example application objects used by tests, benchmarks, and examples.

- :mod:`repro.apps.bank` — the paper's BankAccount measurement object;
- :mod:`repro.apps.auction` — an order-sensitive auction house (the
  "more realistic application" of the paper's future-work list).
"""

from repro.apps.bank import (
    BANK_IDL,
    BankAccount,
    bank_compiled,
    bank_interface,
)
from repro.apps.auction import (
    AUCTION_IDL,
    AuctionHouse,
    auction_compiled,
    auction_interface,
)

__all__ = [
    "BANK_IDL",
    "BankAccount",
    "bank_compiled",
    "bank_interface",
    "AUCTION_IDL",
    "AuctionHouse",
    "auction_compiled",
    "auction_interface",
]
