"""A replication-sensitive application: an auction house.

Where BankAccount shows overheads, the auction house shows *correctness*
stakes: ``place_bid`` outcomes depend on execution order (a bid must beat
the current leader), so replicas processing concurrent bids in different
orders genuinely diverge — the workload total ordering exists for.  The
paper's near-term future work includes "experimenting with more realistic
applications"; this is one.

The servant is deterministic (no clocks, no randomness) so active
replication reproduces state exactly.
"""

from __future__ import annotations

import threading

from repro.idl.compiler import CompiledIdl, compile_idl

AUCTION_IDL = """
module auction {
  exception NoSuchAuction { string item; };
  exception AuctionClosed { string item; };
  exception BidTooLow {
    string item;
    double offered;
    double minimum;
  };

  interface AuctionHouse {
    void open_auction(in string item, in double reserve);
    double place_bid(in string item, in string bidder, in double amount)
        raises (NoSuchAuction, AuctionClosed, BidTooLow);
    any leader(in string item) raises (NoSuchAuction);
    string close_auction(in string item) raises (NoSuchAuction, AuctionClosed);
    sequence<any> bid_history(in string item) raises (NoSuchAuction);
    long auctions_open();
  };
};
"""

_lock = threading.Lock()
_compiled: CompiledIdl | None = None


def auction_compiled() -> CompiledIdl:
    """The compiled auction IDL (compiled once per process)."""
    global _compiled
    with _lock:
        if _compiled is None:
            _compiled = compile_idl(AUCTION_IDL)
        return _compiled


def auction_interface():
    return auction_compiled().interface("auction::AuctionHouse")


class _Auction:
    def __init__(self, reserve: float):
        self.reserve = reserve
        self.open = True
        self.leader: str | None = None
        self.leading_amount = 0.0
        self.history: list[dict] = []


class AuctionHouse:
    """The servant: order-sensitive, deterministic, thread-safe."""

    def __init__(self, min_increment: float = 1.0):
        self._min_increment = min_increment
        self._auctions: dict[str, _Auction] = {}
        self._state_lock = threading.Lock()

    def _get(self, item: str) -> _Auction:
        auction = self._auctions.get(item)
        if auction is None:
            raise auction_compiled().exceptions["auction::NoSuchAuction"](item=item)
        return auction

    # -- IDL operations ------------------------------------------------------

    def open_auction(self, item: str, reserve: float) -> None:
        with self._state_lock:
            # Re-opening an existing item resets it; deterministic either way.
            self._auctions[item] = _Auction(reserve)

    def place_bid(self, item: str, bidder: str, amount: float) -> float:
        """Accept the bid iff it beats reserve and leader + increment.

        Returns the new leading amount.  The outcome depends on every prior
        accepted bid — the order-sensitivity that makes this the total-order
        demonstration workload.
        """
        compiled = auction_compiled()
        with self._state_lock:
            auction = self._get(item)
            if not auction.open:
                raise compiled.exceptions["auction::AuctionClosed"](item=item)
            minimum = max(
                auction.reserve,
                auction.leading_amount + (self._min_increment if auction.leader else 0.0),
            )
            if amount < minimum:
                raise compiled.exceptions["auction::BidTooLow"](
                    item=item, offered=amount, minimum=minimum
                )
            auction.leader = bidder
            auction.leading_amount = amount
            auction.history.append({"bidder": bidder, "amount": amount})
            return amount

    def leader(self, item: str):
        with self._state_lock:
            auction = self._get(item)
            if auction.leader is None:
                return None
            return [auction.leader, auction.leading_amount]

    def close_auction(self, item: str) -> str:
        with self._state_lock:
            auction = self._get(item)
            if not auction.open:
                raise auction_compiled().exceptions["auction::AuctionClosed"](item=item)
            auction.open = False
            return auction.leader or ""

    def bid_history(self, item: str) -> list:
        with self._state_lock:
            return [dict(entry) for entry in self._get(item).history]

    def auctions_open(self) -> int:
        with self._state_lock:
            return sum(1 for auction in self._auctions.values() if auction.open)
