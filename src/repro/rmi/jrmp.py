"""JRMP-like wire protocol: call and return messages over the jser codec.

A call carries the target object id, method name, argument list, a context
dict (the piggyback slot CQoS uses), and a oneway flag.  Returns come in
three kinds: a value, a marshalled application exception (a registered IDL
exception instance), or a system-level failure description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.serialization.jser import jser_dumps, jser_loads
from repro.util.errors import MarshalError

_KIND_CALL = "call"
_KIND_RETURN = "return"
_KIND_THROW = "throw"
_KIND_SYSTEM = "system"


@dataclass
class CallMessage:
    object_id: str
    method: str
    arguments: list
    context: dict = field(default_factory=dict)
    oneway: bool = False


@dataclass
class ReturnMessage:
    value: Any = None
    exception: BaseException | None = None
    system_error: dict | None = None  # {"type": ..., "message": ...}


# Frames are positional tuples, not keyed dicts: JRMP is a lean stream
# protocol, and tuples skip the codec's reference-handle bookkeeping —
# one of the reasons the RMI substrate benchmarks lighter than the ORB,
# matching the paper's RMI-vs-Visibroker observation.


def encode_call(message: CallMessage) -> bytes:
    return jser_dumps(
        (
            _KIND_CALL,
            message.object_id,
            message.method,
            tuple(message.arguments),
            message.context,
            message.oneway,
        )
    )


def encode_return(message: ReturnMessage) -> bytes:
    if message.system_error is not None:
        return jser_dumps((_KIND_SYSTEM, message.system_error))
    if message.exception is not None:
        return jser_dumps((_KIND_THROW, message.exception))
    return jser_dumps((_KIND_RETURN, message.value))


def decode(frame: bytes) -> CallMessage | ReturnMessage:
    payload = jser_loads(frame)
    if not isinstance(payload, tuple) or not payload:
        raise MarshalError("malformed JRMP frame")
    kind = payload[0]
    if kind == _KIND_CALL:
        if len(payload) != 6:
            raise MarshalError("malformed JRMP call frame")
        return CallMessage(
            object_id=payload[1],
            method=payload[2],
            arguments=list(payload[3]),
            context=dict(payload[4]),
            oneway=bool(payload[5]),
        )
    if len(payload) != 2:
        raise MarshalError("malformed JRMP return frame")
    if kind == _KIND_RETURN:
        return ReturnMessage(value=payload[1])
    if kind == _KIND_THROW:
        exception = payload[1]
        if not isinstance(exception, BaseException):
            raise MarshalError("JRMP throw frame did not carry an exception")
        return ReturnMessage(exception=exception)
    if kind == _KIND_SYSTEM:
        return ReturnMessage(system_error=dict(payload[1]))
    raise MarshalError(f"unknown JRMP message kind: {kind!r}")
