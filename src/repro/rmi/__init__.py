"""A Java-RMI-like platform: the second middleware substrate.

Structurally simpler than the ORB, matching the paper's observation that
"RMI is simpler than CORBA and does not have concepts such as POA and DSI":

- remote objects are *exported* from an :class:`~repro.rmi.runtime.RmiRuntime`
  (one endpoint per runtime, object ids route inside it);
- clients hold :class:`~repro.rmi.runtime.RemoteRef` values and invoke through
  generated stubs (:func:`~repro.rmi.runtime.make_rmi_stub_class`);
- a bootstrap :mod:`registry <repro.rmi.registry>` maps generic names to
  remote references (``java.rmi.Naming`` analog);
- the wire protocol (:mod:`repro.rmi.jrmp`) encodes calls with the
  Java-serialization-like tagged codec.

For CQoS, the important RMI idiosyncrasies are reproduced: there are no
server-side skeletons, so the CQoS skeleton is a *generic remote object*
exporting a single ``invoke`` method (the paper's simulated DSI), and
replicas register under the ``"OID_CQoS_Skeleton_i"`` naming convention.
"""

from repro.rmi.runtime import (
    GenericRemoteObject,
    RemoteRef,
    RmiRuntime,
    make_rmi_stub_class,
)
from repro.rmi.registry import (
    REGISTRY_HOST,
    RegistryClient,
    RmiRegistry,
    registry_client,
    start_registry,
)

__all__ = [
    "RmiRuntime",
    "RemoteRef",
    "GenericRemoteObject",
    "make_rmi_stub_class",
    "RmiRegistry",
    "RegistryClient",
    "start_registry",
    "registry_client",
    "REGISTRY_HOST",
]
