"""The RMI registry: a bootstrap naming service for remote references.

``java.rmi.Naming`` analog: a well-known generic remote object (host
``"rmi-registry"``, object id ``"registry"``) mapping string names to
:class:`~repro.rmi.runtime.RemoteRef` values.  It is itself served through
the generic-invoke path, so the registry needs no IDL of its own.

The CQoS/RMI replica convention from the paper lives on top of this: the
skeleton for replica ``i`` of object ``OID`` registers as
``"OID_CQoS_Skeleton_i"``.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.rmi.runtime import GENERIC_INTERFACE, RemoteRef, RmiRuntime
from repro.util.errors import BindError

REGISTRY_HOST = "rmi-registry"
REGISTRY_OBJECT_ID = "registry"


class RmiRegistry:
    """The registry servant (a generic remote object)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._table: dict[str, RemoteRef] = {}

    # Generic remote-object entry point -----------------------------------

    def invoke(self, method: str, arguments: list, context: dict) -> Any:
        handler = getattr(self, f"do_{method}", None)
        if handler is None:
            raise BindError(f"registry has no operation {method!r}")
        return handler(*arguments)

    # Operations -----------------------------------------------------------

    def do_bind(self, name: str, ref: RemoteRef) -> None:
        with self._lock:
            if name in self._table:
                raise BindError(f"name already bound: {name!r}")
            self._table[name] = ref

    def do_rebind(self, name: str, ref: RemoteRef) -> None:
        with self._lock:
            self._table[name] = ref

    def do_lookup(self, name: str) -> RemoteRef:
        with self._lock:
            ref = self._table.get(name)
        if ref is None:
            raise BindError(f"name not bound: {name!r}")
        return ref

    def do_unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._table:
                raise BindError(f"name not bound: {name!r}")
            del self._table[name]

    def do_list(self, prefix: str) -> list[str]:
        with self._lock:
            return sorted(name for name in self._table if name.startswith(prefix))


def start_registry(runtime: RmiRuntime) -> RmiRegistry:
    """Export a registry at the well-known object id on ``runtime``.

    The runtime should live on the ``REGISTRY_HOST`` host (or whatever
    ``registry_host`` the client runtimes were configured with).
    """
    registry = RmiRegistry()
    runtime.export_generic(registry, object_id=REGISTRY_OBJECT_ID)
    return registry


def registry_ref(registry_host: str = REGISTRY_HOST, service: str = "rmi") -> RemoteRef:
    """The well-known reference to the registry."""
    return RemoteRef(
        interface_name=GENERIC_INTERFACE,
        address=f"{registry_host}/{service}",
        object_id=REGISTRY_OBJECT_ID,
    )


class RegistryClient:
    """Client wrapper: the ``java.rmi.Naming`` static-methods analog."""

    def __init__(self, runtime: RmiRuntime, registry_host: str | None = None):
        self._runtime = runtime
        self._ref = registry_ref(registry_host or runtime.registry_host)

    def bind(self, name: str, ref: RemoteRef) -> None:
        self._runtime.call(self._ref, "bind", [name, ref])

    def rebind(self, name: str, ref: RemoteRef) -> None:
        self._runtime.call(self._ref, "rebind", [name, ref])

    def lookup(self, name: str) -> RemoteRef:
        return self._runtime.call(self._ref, "lookup", [name])

    def unbind(self, name: str) -> None:
        self._runtime.call(self._ref, "unbind", [name])

    def list(self, prefix: str = "") -> list[str]:
        return list(self._runtime.call(self._ref, "list", [prefix]))


def registry_client(runtime: RmiRuntime) -> RegistryClient:
    """Build a :class:`RegistryClient` for ``runtime``'s configured registry."""
    return RegistryClient(runtime)
