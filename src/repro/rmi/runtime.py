"""RMI runtime: exporting remote objects, remote references, and stubs.

One :class:`RmiRuntime` per logical host serves all of that host's exported
objects from a single endpoint (the JVM model).  Two export flavours exist:

- :meth:`RmiRuntime.export` — a typed servant dispatched by interface
  metadata, the ordinary RMI remote object;
- :meth:`RmiRuntime.export_generic` — an object exposing only
  ``invoke(method, arguments, context)``.  This reproduces the paper's RMI
  CQoS skeleton, which "exports only a generic invoke method
  (``java.lang.Object invoke(java.lang.Object[])``)" to simulate CORBA's DSI.

Compared to the ORB, the client path is deliberately lighter (no run-time
conformance checking of arguments — the Java static-typing analog), which is
one reason the RMI rows of Table 1 show smaller absolute overheads.
"""

from __future__ import annotations

import threading
from typing import Any, Protocol, runtime_checkable

from repro.idl.compiler import CompiledIdl, IdlRemoteException, InterfaceDef
from repro.net.pool import ConnectionPool
from repro.net.transport import Connection, Network, blocking_handler
from repro.rmi import jrmp
from repro.serialization.registry import global_registry
from repro.util.errors import (
    BindError,
    CommunicationError,
    InvocationError,
    rehydrate_system_error,
)
from repro.util.ids import IdGenerator


class RemoteRef:
    """A serializable reference to one exported remote object."""

    def __init__(self, interface_name: str, address: str, object_id: str):
        self.interface_name = interface_name
        self.address = address
        self.object_id = object_id

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RemoteRef)
            and self.interface_name == other.interface_name
            and self.address == other.address
            and self.object_id == other.object_id
        )

    def __hash__(self) -> int:
        return hash((self.interface_name, self.address, self.object_id))

    def __repr__(self) -> str:
        return f"RemoteRef({self.interface_name}, {self.address}, {self.object_id})"


# Remote references themselves cross the wire (the registry stores them).
global_registry.register("rmi.RemoteRef", RemoteRef)

GENERIC_INTERFACE = "rmi.Generic"


@runtime_checkable
class GenericRemoteObject(Protocol):
    """The shape of a generically exported object (the CQoS skeleton)."""

    def invoke(self, method: str, arguments: list, context: dict) -> Any: ...


class _Export:
    def __init__(self, servant, interface: InterfaceDef | None):
        self.servant = servant
        self.interface = interface  # None => generic export

    @property
    def is_generic(self) -> bool:
        return self.interface is None


class RmiRuntime:
    """One RMI-like runtime bound to one logical host of a network."""

    def __init__(
        self,
        network: Network,
        host_name: str,
        compiled: CompiledIdl,
        service: str = "rmi",
        registry_host: str = "rmi-registry",
    ):
        self._network = network
        self.host_name = host_name
        self.compiled = compiled
        self._service = service
        self.registry_host = registry_host
        self._host = network.host(host_name)
        self._listener = None
        self._exports: dict[str, _Export] = {}
        self._lock = threading.Lock()
        self._ids = IdGenerator(host_name)
        self._pool = ConnectionPool(self._host)

    # -- lifecycle ---------------------------------------------------------

    @property
    def endpoint_address(self) -> str:
        return f"{self.host_name}/{self._service}"

    def start(self) -> "RmiRuntime":
        if self._listener is None:
            self._listener = self._host.listen(self._service, self._handle_frame)
        return self

    def shutdown(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self._pool.close()
        with self._lock:
            self._exports.clear()

    # -- export ------------------------------------------------------------

    def export(
        self, servant, interface: InterfaceDef, object_id: str | None = None
    ) -> RemoteRef:
        """Export a typed servant; returns its remote reference."""
        return self._export(servant, interface, object_id)

    def export_generic(self, servant, object_id: str | None = None) -> RemoteRef:
        """Export an object with a generic ``invoke`` method (CQoS skeleton)."""
        if not isinstance(servant, GenericRemoteObject):
            raise BindError("generic exports must provide invoke(method, arguments, context)")
        return self._export(servant, None, object_id)

    def _export(self, servant, interface: InterfaceDef | None, object_id: str | None) -> RemoteRef:
        if object_id is None:
            object_id = f"obj-{self._ids.next_int()}"
        with self._lock:
            if object_id in self._exports:
                raise BindError(f"object id {object_id!r} already exported")
            self._exports[object_id] = _Export(servant, interface)
        return RemoteRef(
            interface_name=interface.name if interface else GENERIC_INTERFACE,
            address=self.endpoint_address,
            object_id=object_id,
        )

    def unexport(self, ref: RemoteRef) -> None:
        with self._lock:
            self._exports.pop(ref.object_id, None)

    # -- client side --------------------------------------------------------

    def _connection(self, address: str) -> Connection:
        return self._pool.get(address)

    def drop_connection(self, address: str, connection: Connection | None = None) -> None:
        self._pool.drop(address, connection)

    def call(
        self,
        ref: RemoteRef,
        method: str,
        arguments: list,
        context: dict | None = None,
        oneway: bool = False,
        timeout: float | None = None,
    ) -> Any:
        """Invoke ``method`` on the remote object behind ``ref``."""
        frame = jrmp.encode_call(
            jrmp.CallMessage(
                object_id=ref.object_id,
                method=method,
                arguments=arguments,
                context=context or {},
                oneway=oneway,
            )
        )
        connection = self._connection(ref.address)
        try:
            reply_frame = connection.call(frame, timeout=timeout)
        except CommunicationError:
            self.drop_connection(ref.address, connection)
            raise
        return self._decode_return(reply_frame)

    def call_async(
        self,
        ref: RemoteRef,
        method: str,
        arguments: list,
        context: dict | None = None,
        timeout: float | None = None,
    ):
        """Non-blocking :meth:`call`; returns a ReplyFuture of the value.

        Encoded eagerly with the same encoder (wire bytes identical to the
        blocking path); JRMP decode runs lazily on the consumer's thread.
        Never raises — submit-time failures settle the future.
        """
        frame = jrmp.encode_call(
            jrmp.CallMessage(
                object_id=ref.object_id,
                method=method,
                arguments=arguments,
                context=context or {},
                oneway=False,
            )
        )
        try:
            connection = self._connection(ref.address)
        except Exception as exc:  # noqa: BLE001 - delivered via the future
            from repro.net.transport import ReplyFuture

            return ReplyFuture.failed(exc)

        def on_error(exc: BaseException):
            if isinstance(exc, CommunicationError):
                self.drop_connection(ref.address, connection)
            raise exc

        return connection.call_async(frame, timeout=timeout).then(
            self._decode_return, on_error
        )

    def _decode_return(self, reply_frame: bytes) -> Any:
        """Decode a raw JRMP return frame; map the error taxonomy."""
        reply = jrmp.decode(reply_frame)
        if not isinstance(reply, jrmp.ReturnMessage):
            raise CommunicationError("expected a JRMP return message")
        if reply.system_error is not None:
            raise rehydrate_system_error(
                reply.system_error.get("type", "SystemError"),
                reply.system_error.get("message", ""),
            )
        if reply.exception is not None:
            raise reply.exception
        return reply.value

    # -- server side ----------------------------------------------------------

    # Servant dispatch can block (request.wait, replica forwarding): the
    # async engine must keep it off the event loop.
    @blocking_handler
    def _handle_frame(self, frame: bytes) -> bytes:
        message = jrmp.decode(frame)
        if not isinstance(message, jrmp.CallMessage):
            return jrmp.encode_return(
                jrmp.ReturnMessage(
                    system_error={"type": "BadMessage", "message": "expected a call"}
                )
            )
        if message.oneway:
            threading.Thread(
                target=self._dispatch, args=(message,), daemon=True, name="rmi-oneway"
            ).start()
            return jrmp.encode_return(jrmp.ReturnMessage(value=None))
        return jrmp.encode_return(self._dispatch(message))

    def _dispatch(self, message: jrmp.CallMessage) -> jrmp.ReturnMessage:
        try:
            with self._lock:
                export = self._exports.get(message.object_id)
            if export is None:
                raise BindError(f"no exported object {message.object_id!r}")
            if export.is_generic:
                value = export.servant.invoke(
                    message.method, message.arguments, message.context
                )
            else:
                operation = export.interface.operation(message.method)
                method = getattr(export.servant, message.method, None)
                if method is None:
                    raise InvocationError(
                        "NoSuchMethod", f"servant lacks method {message.method!r}"
                    )
                value = method(*message.arguments)
                if not operation.oneway:
                    operation.check_result(value, self.compiled)
            return jrmp.ReturnMessage(value=value)
        except IdlRemoteException as exc:
            return jrmp.ReturnMessage(exception=exc)
        except BaseException as exc:  # noqa: BLE001 - mapped to a system error
            return jrmp.ReturnMessage(
                system_error={"type": type(exc).__name__, "message": str(exc)}
            )


class RmiStub:
    """Base class for generated RMI stubs."""

    def __init__(self, runtime: RmiRuntime, ref: RemoteRef):
        self._runtime = runtime
        self._ref = ref

    @property
    def ref(self) -> RemoteRef:
        return self._ref


def _make_method(name: str, arity: int, oneway: bool):
    def method(self, *args):
        if len(args) != arity:
            raise TypeError(f"{name}() takes {arity} arguments, got {len(args)}")
        return self._runtime.call(self._ref, name, list(args), oneway=oneway)

    method.__name__ = name
    method.__doc__ = f"Remote method {name!r}."
    return method


def make_rmi_stub_class(interface: InterfaceDef) -> type:
    """Generate the RMI stub class for ``interface`` (``rmic`` analog)."""
    namespace: dict[str, Any] = {
        "__doc__": f"RMI stub for interface {interface.name}.",
        "__idl_interface__": interface,
    }
    for operation in interface.operations.values():
        namespace[operation.name] = _make_method(
            operation.name, len(operation.params), operation.oneway
        )
    return type(f"{interface.simple_name}Stub_RMI", (RmiStub,), namespace)
