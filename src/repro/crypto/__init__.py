"""Cryptographic substrate for the security micro-protocols.

The paper's ``DesPrivacy`` micro-protocol encrypts request parameters and
reply values with DES; integrity uses a signature-based scheme.  Neither
algorithm is available here as a dependency, so:

- :mod:`repro.crypto.des` is a from-scratch pure-Python DES (ECB and CBC
  modes, PKCS#5 padding) validated against published test vectors, and
- :mod:`repro.crypto.mac` implements the HMAC construction (RFC 2104) over
  :mod:`hashlib` digests for the signature scheme.
- :mod:`repro.crypto.keys` is a tiny shared-key store standing in for the
  out-of-band key distribution the paper assumes.
"""

from repro.crypto.des import DesCipher, des_decrypt, des_encrypt
from repro.crypto.mac import hmac_digest, hmac_verify
from repro.crypto.keys import KeyStore

__all__ = [
    "DesCipher",
    "des_encrypt",
    "des_decrypt",
    "hmac_digest",
    "hmac_verify",
    "KeyStore",
]
