"""Shared-key store standing in for out-of-band key distribution.

The paper assumes clients and servers already share keys (key distribution
is listed as a *possible additional* micro-protocol, not part of the
prototype).  :class:`KeyStore` is that assumption made explicit: a named map
of symmetric keys that both sides of a deployment are constructed with.
"""

from __future__ import annotations

import os
import threading

from repro.util.errors import ConfigurationError


class KeyStore:
    """A thread-safe named store of symmetric keys.

    >>> ks = KeyStore()
    >>> key = ks.generate("bank-des", length=8)
    >>> ks.get("bank-des") == key
    True
    """

    def __init__(self, keys: dict[str, bytes] | None = None):
        self._lock = threading.Lock()
        self._keys: dict[str, bytes] = dict(keys or {})

    def add(self, name: str, key: bytes) -> None:
        """Install a key under ``name`` (replacing any existing key)."""
        with self._lock:
            self._keys[name] = bytes(key)

    def generate(self, name: str, length: int = 16) -> bytes:
        """Generate, install, and return a random key of ``length`` bytes."""
        key = os.urandom(length)
        self.add(name, key)
        return key

    def get(self, name: str) -> bytes:
        """Return the key named ``name``; raise if absent."""
        with self._lock:
            key = self._keys.get(name)
        if key is None:
            raise ConfigurationError(f"no key named {name!r} in key store")
        return key

    def has(self, name: str) -> bool:
        with self._lock:
            return name in self._keys

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._keys)
