"""HMAC construction (RFC 2104) for the signature-based integrity scheme.

The paper's integrity micro-protocol signs the request parameters and reply
value.  With only symmetric keys in the prototype, a keyed MAC is the
signature scheme: we implement the HMAC construction explicitly over a
:mod:`hashlib` digest (the hash primitive is the only borrowed piece; the
construction itself, including key normalization and the ipad/opad scheme,
is spelled out here).
"""

from __future__ import annotations

import hashlib
import hmac as _stdlib_hmac  # only for compare_digest semantics
from typing import Callable

_IPAD = 0x36
_OPAD = 0x5C


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """Compute HMAC(key, message) with the named hashlib digest.

    Implements RFC 2104 directly:
    ``H((K' ^ opad) || H((K' ^ ipad) || message))`` where ``K'`` is the key
    padded (or first hashed, if longer than the block size) to the digest's
    block length.
    """
    make_hash: Callable[..., "hashlib._Hash"] = getattr(hashlib, hash_name)
    block_size = make_hash().block_size
    if len(key) > block_size:
        key = make_hash(key).digest()
    key = key.ljust(block_size, b"\x00")
    inner = make_hash(bytes(b ^ _IPAD for b in key) + message).digest()
    return make_hash(bytes(b ^ _OPAD for b in key) + inner).digest()


def hmac_verify(
    key: bytes, message: bytes, signature: bytes, hash_name: str = "sha256"
) -> bool:
    """Constant-time verification of a signature from :func:`hmac_digest`."""
    expected = hmac_digest(key, message, hash_name)
    return _stdlib_hmac.compare_digest(expected, signature)
