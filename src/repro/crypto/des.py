"""Pure-Python DES (FIPS 46-3) with ECB/CBC modes and PKCS#5 padding.

The paper's ``DesPrivacy`` micro-protocol encrypts request parameters and
reply values with DES.  This is a from-scratch implementation of the exact
algorithm so the Table 2 "Privacy" rows exercise a genuinely CPU-bound
cipher, preserving the paper's cost shape (crypto dominates the response
time on both platforms).

Implementation notes:

- all permutations (IP, FP, E, P, PC-1, PC-2) are applied through
  precomputed byte-indexed lookup tables, the standard software
  optimization, so encrypting kilobyte payloads in the benchmarks is
  tolerable while remaining readable;
- the S-box and P permutations are fused into ``_SP`` tables at import time;
- correctness is pinned by published test vectors in
  ``tests/unit/test_des.py`` and round-trip property tests.

DES is used here because the paper uses it; it is *not* a recommendation —
single DES has been breakable by exhaustive key search since the 1990s.
"""

from __future__ import annotations

import os

from repro.util.errors import MarshalError

# --- Standard DES tables (FIPS 46-3), 1-based bit positions from the MSB ---

_IP = [
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
]

_FP = [
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
]

_E = [
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
]

_P = [
    16, 7, 20, 21,
    29, 12, 28, 17,
    1, 15, 23, 26,
    5, 18, 31, 10,
    2, 8, 24, 14,
    32, 27, 3, 9,
    19, 13, 30, 6,
    22, 11, 4, 25,
]

_PC1 = [
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
]

_PC2 = [
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
]

_SHIFTS = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]

_SBOXES = [
    [
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    [
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    [
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    [
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    [
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    [
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    [
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    [
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
]


class _BytewisePermutation:
    """A bit permutation applied via per-input-byte lookup tables.

    ``spec[i]`` is the 1-based (from the MSB) input bit that becomes output
    bit ``i``.  ``in_width`` must be a multiple of 8.
    """

    def __init__(self, spec: list[int], in_width: int):
        if in_width % 8:
            raise ValueError("in_width must be a multiple of 8")
        self._n_bytes = in_width // 8
        out_width = len(spec)
        luts = [[0] * 256 for _ in range(self._n_bytes)]
        for out_pos, in_pos in enumerate(spec):
            in_idx = in_pos - 1
            byte_idx, bit_idx = divmod(in_idx, 8)
            bit_in_byte = 7 - bit_idx
            out_shift = out_width - 1 - out_pos
            lut = luts[byte_idx]
            for byte_val in range(256):
                if (byte_val >> bit_in_byte) & 1:
                    lut[byte_val] |= 1 << out_shift
        self._luts = luts

    def apply(self, value: int) -> int:
        result = 0
        n = self._n_bytes
        for i, lut in enumerate(self._luts):
            result |= lut[(value >> ((n - 1 - i) * 8)) & 0xFF]
        return result


_IP_PERM = _BytewisePermutation(_IP, 64)
_FP_PERM = _BytewisePermutation(_FP, 64)
_E_PERM = _BytewisePermutation(_E, 32)
_PC1_PERM = _BytewisePermutation(_PC1, 64)
_PC2_PERM = _BytewisePermutation(_PC2, 56)


def _build_sp_tables() -> list[list[int]]:
    """Fuse each S-box with the P permutation: SP[i][six_bits] -> 32 bits."""
    p_perm = _BytewisePermutation(_P, 32)
    tables = []
    for box_index, box in enumerate(_SBOXES):
        shift = 28 - 4 * box_index
        table = []
        for six in range(64):
            row = ((six & 0x20) >> 4) | (six & 0x01)
            col = (six >> 1) & 0x0F
            table.append(p_perm.apply(box[row][col] << shift))
        tables.append(table)
    return tables


_SP = _build_sp_tables()

_BLOCK = 8


def _rotl28(value: int, n: int) -> int:
    return ((value << n) | (value >> (28 - n))) & 0x0FFFFFFF


def _key_schedule(key: bytes) -> list[int]:
    """Derive the 16 48-bit round subkeys from an 8-byte key."""
    key_int = int.from_bytes(key, "big")
    cd = _PC1_PERM.apply(key_int)
    c = (cd >> 28) & 0x0FFFFFFF
    d = cd & 0x0FFFFFFF
    subkeys = []
    for shift in _SHIFTS:
        c = _rotl28(c, shift)
        d = _rotl28(d, shift)
        subkeys.append(_PC2_PERM.apply((c << 28) | d))
    return subkeys


def _feistel(right: int, subkey: int) -> int:
    x = _E_PERM.apply(right) ^ subkey
    sp = _SP
    return (
        sp[0][(x >> 42) & 0x3F]
        | sp[1][(x >> 36) & 0x3F]
        | sp[2][(x >> 30) & 0x3F]
        | sp[3][(x >> 24) & 0x3F]
        | sp[4][(x >> 18) & 0x3F]
        | sp[5][(x >> 12) & 0x3F]
        | sp[6][(x >> 6) & 0x3F]
        | sp[7][x & 0x3F]
    )


def _crypt_block(block: int, subkeys: list[int]) -> int:
    x = _IP_PERM.apply(block)
    left = (x >> 32) & 0xFFFFFFFF
    right = x & 0xFFFFFFFF
    for subkey in subkeys:
        left, right = right, left ^ _feistel(right, subkey)
    # Final swap (R16 || L16) then the inverse permutation.
    return _FP_PERM.apply((right << 32) | left)


def _pkcs5_pad(data: bytes) -> bytes:
    pad = _BLOCK - (len(data) % _BLOCK)
    return data + bytes([pad]) * pad


def _pkcs5_unpad(data: bytes) -> bytes:
    if not data or len(data) % _BLOCK:
        raise MarshalError("invalid DES ciphertext length")
    pad = data[-1]
    if not 1 <= pad <= _BLOCK or data[-pad:] != bytes([pad]) * pad:
        raise MarshalError("invalid PKCS#5 padding")
    return data[:-pad]


class DesCipher:
    """A DES cipher bound to one key, supporting ECB and CBC modes.

    >>> cipher = DesCipher(bytes.fromhex("133457799BBCDFF1"))
    >>> cipher.decrypt(cipher.encrypt(b"attack at dawn"))
    b'attack at dawn'
    """

    def __init__(self, key: bytes, mode: str = "CBC"):
        if len(key) != _BLOCK:
            raise ValueError("DES key must be exactly 8 bytes")
        if mode not in ("ECB", "CBC"):
            raise ValueError(f"unsupported mode: {mode}")
        self.mode = mode
        self._enc_keys = _key_schedule(key)
        self._dec_keys = list(reversed(self._enc_keys))

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 8-byte block (no padding, no chaining)."""
        if len(block) != _BLOCK:
            raise ValueError("block must be 8 bytes")
        value = int.from_bytes(block, "big")
        return _crypt_block(value, self._enc_keys).to_bytes(_BLOCK, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 8-byte block (no padding, no chaining)."""
        if len(block) != _BLOCK:
            raise ValueError("block must be 8 bytes")
        value = int.from_bytes(block, "big")
        return _crypt_block(value, self._dec_keys).to_bytes(_BLOCK, "big")

    def encrypt(self, data: bytes, iv: bytes | None = None) -> bytes:
        """Encrypt ``data`` with PKCS#5 padding.

        In CBC mode a random IV is generated when not supplied and prepended
        to the ciphertext, so :meth:`decrypt` needs no extra state.
        """
        padded = _pkcs5_pad(data)
        out = bytearray()
        if self.mode == "ECB":
            for i in range(0, len(padded), _BLOCK):
                out += self.encrypt_block(padded[i : i + _BLOCK])
            return bytes(out)
        if iv is None:
            iv = os.urandom(_BLOCK)
        elif len(iv) != _BLOCK:
            raise ValueError("IV must be 8 bytes")
        out += iv
        prev = int.from_bytes(iv, "big")
        for i in range(0, len(padded), _BLOCK):
            block = int.from_bytes(padded[i : i + _BLOCK], "big") ^ prev
            prev = _crypt_block(block, self._enc_keys)
            out += prev.to_bytes(_BLOCK, "big")
        return bytes(out)

    def decrypt(self, data: bytes) -> bytes:
        """Invert :meth:`encrypt`, validating and stripping the padding."""
        if self.mode == "ECB":
            if not data or len(data) % _BLOCK:
                raise MarshalError("invalid DES ciphertext length")
            out = bytearray()
            for i in range(0, len(data), _BLOCK):
                out += self.decrypt_block(data[i : i + _BLOCK])
            return _pkcs5_unpad(bytes(out))
        if len(data) < 2 * _BLOCK or len(data) % _BLOCK:
            raise MarshalError("invalid DES ciphertext length")
        prev = int.from_bytes(data[:_BLOCK], "big")
        out = bytearray()
        for i in range(_BLOCK, len(data), _BLOCK):
            block = int.from_bytes(data[i : i + _BLOCK], "big")
            out += (_crypt_block(block, self._dec_keys) ^ prev).to_bytes(_BLOCK, "big")
            prev = block
        return _pkcs5_unpad(bytes(out))


def des_encrypt(key: bytes, data: bytes, mode: str = "CBC") -> bytes:
    """One-shot DES encryption (PKCS#5 padded; CBC prepends its IV)."""
    return DesCipher(key, mode).encrypt(data)


def des_decrypt(key: bytes, data: bytes, mode: str = "CBC") -> bytes:
    """One-shot DES decryption matching :func:`des_encrypt`."""
    return DesCipher(key, mode).decrypt(data)
