"""Deployment façade: assemble complete CQoS systems in a few calls.

:class:`CqosDeployment` owns one network, one middleware platform choice
("corba" or "rmi"), its bootstrap service (naming service / RMI registry),
and the hosts it creates.  Typical use::

    network = InMemoryNetwork()
    dep = CqosDeployment(network, platform="corba", compiled=compiled)
    dep.add_replicas("acct", lambda: BankAccount(), iface, replicas=3,
                     server_micro_protocols=lambda: [TotalOrder(), ServerBase()])
    stub = dep.client_stub("acct", iface,
                           client_micro_protocols=lambda: [ActiveRep(), MajorityVote(), ClientBase()])
    stub.set_balance(100.0)

Micro-protocol configurations are passed as zero-argument factories (each
replica and each client needs fresh instances), as
:class:`~repro.cactus.config.MicroProtocolSpec` lists, or as plain
registered-name lists — the latter two go through the static-configuration
machinery of :mod:`repro.cactus.config`.

The Table 1 ladder is directly expressible: ``plain_stub`` /
``deploy_plain_replica`` give the original-platform rung;
``client_stub(..., with_cactus_client=False)`` and
``add_replicas(..., server_micro_protocols=None)`` give the interceptor-only
rungs.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import MicroProtocolSpec, build_micro_protocols
from repro.core.client import CactusClient
from repro.core.request import Request
from repro.core.server import CactusServer
from repro.core.skeleton import CqosSkeleton
from repro.core.stub import CqosStub, make_cqos_stub_class
from repro.core.adapters.corba import (
    CorbaClientPlatform,
    corba_replica_name,
    install_corba_replica,
)
from repro.core.adapters.rmi import (
    RmiClientPlatform,
    install_rmi_replica,
    rmi_skeleton_name,
)
from repro.core.adapters.http import (
    HttpClientPlatform,
    http_replica_name,
    install_http_replica,
)
from repro.http.client import HttpClient, make_http_stub_class
from repro.http.registry import (
    REGISTRY_HOST as HTTP_REGISTRY_HOST,
    HttpRegistryClient,
    start_http_registry,
)
from repro.http.server import HttpObjectServer
from repro.idl.compiler import CompiledIdl, InterfaceDef
from repro.net.transport import Network
from repro.orb.naming import NAMING_HOST, naming_client, start_naming_service
from repro.orb.orb import Orb
from repro.orb.stubs import make_static_stub_class
from repro.rmi.registry import REGISTRY_HOST, registry_client, start_registry
from repro.rmi.runtime import RmiRuntime, make_rmi_stub_class
from repro.util.errors import ConfigurationError
from repro.util.ids import IdGenerator

# A micro-protocol configuration, in any accepted form.
MpConfig = (
    Callable[[], list[MicroProtocol]]
    | Sequence[MicroProtocolSpec]
    | Sequence[str]
    | None
)


def _instantiate(config: MpConfig) -> list[MicroProtocol] | None:
    """Normalize a configuration into fresh micro-protocol instances."""
    if config is None:
        return None
    if callable(config):
        return list(config())
    specs = [
        spec if isinstance(spec, MicroProtocolSpec) else MicroProtocolSpec(str(spec))
        for spec in config
    ]
    return build_micro_protocols(specs)


class CqosDeployment:
    """One network + one platform + the CQoS objects deployed on it."""

    PLATFORMS = ("corba", "rmi", "http")

    def __init__(
        self,
        network: Network,
        platform: str,
        compiled: CompiledIdl,
        request_timeout: float | None = 30.0,
        compiled_dispatch: bool | None = None,
    ):
        if platform not in self.PLATFORMS:
            raise ConfigurationError(
                f"platform must be one of {self.PLATFORMS}, not {platform!r}"
            )
        self.network = network
        self.platform = platform
        self.compiled = compiled
        self.request_timeout = request_timeout
        # Event-dispatch executor for every Cactus composite this deployment
        # creates; None defers to the CQOS_COMPILED_DISPATCH escape hatch.
        self.compiled_dispatch = compiled_dispatch
        self._ids = IdGenerator("dep")
        self._lock = threading.Lock()
        self._orbs: list[Orb] = []
        self._runtimes: list[RmiRuntime] = []
        self._http_servers: list[HttpObjectServer] = []
        self._http_clients: list[HttpClient] = []
        self._cactus: list[CactusServer | CactusClient] = []
        self._replica_hosts: dict[tuple[str, int], str] = {}
        self._bootstrap()

    @classmethod
    def over_tcp(
        cls,
        platform: str,
        compiled: CompiledIdl,
        engine: str | None = None,
        **kwargs: Any,
    ) -> "CqosDeployment":
        """Deploy over loopback TCP with an explicit execution engine.

        ``engine`` is ``"threaded"``, ``"async"``, or ``None`` to defer to
        the ``CQOS_ENGINE`` environment default — the whole selection lives
        below the transport interface, so the deployment (stubs, skeletons,
        QoS micro-protocols) is byte-for-byte the same either way.
        """
        from repro.net.tcp import TcpNetwork

        return cls(TcpNetwork(engine=engine), platform, compiled, **kwargs)

    # -- bootstrap -------------------------------------------------------

    def _bootstrap(self) -> None:
        if self.platform == "corba":
            self._naming_orb = self._new_orb(NAMING_HOST).start()
            self.naming = start_naming_service(self._naming_orb)
        elif self.platform == "rmi":
            self._registry_runtime = self._new_rmi(REGISTRY_HOST).start()
            self.registry = start_registry(self._registry_runtime)
        else:
            self._registry_http = self._new_http_server(HTTP_REGISTRY_HOST).start()
            self.registry = start_http_registry(self._registry_http)

    def _new_orb(self, host_name: str) -> Orb:
        orb = Orb(self.network, host_name, self.compiled)
        with self._lock:
            self._orbs.append(orb)
        return orb

    def _new_rmi(self, host_name: str) -> RmiRuntime:
        runtime = RmiRuntime(self.network, host_name, self.compiled)
        with self._lock:
            self._runtimes.append(runtime)
        return runtime

    def _new_http_server(self, host_name: str) -> HttpObjectServer:
        server = HttpObjectServer(self.network, host_name, self.compiled)
        with self._lock:
            self._http_servers.append(server)
        return server

    def _new_http_client(self, host_name: str) -> HttpClient:
        client = HttpClient(self.network, host_name)
        with self._lock:
            self._http_clients.append(client)
        return client

    def _http_registry_client(self, host_name: str) -> tuple[HttpClient, HttpRegistryClient]:
        client = self._new_http_client(host_name)
        return client, HttpRegistryClient(client)

    def _track(self, composite: CactusServer | CactusClient) -> None:
        with self._lock:
            self._cactus.append(composite)

    # -- server side ------------------------------------------------------

    def replica_host_name(self, object_id: str, replica: int) -> str:
        return f"{object_id}-server-{replica}"

    def add_replicas(
        self,
        object_id: str,
        servant_factory: Callable[[], Any],
        interface: InterfaceDef,
        replicas: int = 1,
        server_micro_protocols: MpConfig = "with_base",
        priority_policy: Callable[[Request], int] | None = None,
        observers: Sequence[Any] | None = None,
    ) -> list[CqosSkeleton]:
        """Deploy ``replicas`` CQoS-intercepted replicas of one object.

        ``server_micro_protocols`` configures each replica's Cactus server:

        - the string ``"with_base"`` (default) — ServerBase only;
        - a factory / spec list / name list — those protocols *plus*
          ServerBase appended last;
        - ``None`` — no Cactus server at all (pass-through skeleton).

        ``observers`` attaches kernel
        :class:`~repro.core.platform.InvocationObserver` hooks to every
        replica's skeleton boundary and servant dispatch.
        """
        skeletons: list[CqosSkeleton] = []
        for replica in range(1, replicas + 1):
            host_name = self.replica_host_name(object_id, replica)
            self._replica_hosts[(object_id, replica)] = host_name
            factory = self._server_factory(
                object_id, replica, server_micro_protocols, priority_policy
            )
            servant = servant_factory()
            if self.platform == "corba":
                orb = self._new_orb(host_name).start()
                skeleton = install_corba_replica(
                    orb,
                    object_id,
                    replica,
                    servant,
                    interface,
                    cactus_server_factory=factory,
                    total_replicas=replicas,
                    observers=observers,
                )
            elif self.platform == "rmi":
                runtime = self._new_rmi(host_name).start()
                skeleton = install_rmi_replica(
                    runtime,
                    object_id,
                    replica,
                    servant,
                    interface,
                    cactus_server_factory=factory,
                    total_replicas=replicas,
                    observers=observers,
                )
            else:
                http_server = self._new_http_server(host_name).start()
                http_client, registry = self._http_registry_client(host_name)
                skeleton = install_http_replica(
                    http_server,
                    http_client,
                    registry,
                    object_id,
                    replica,
                    servant,
                    interface,
                    cactus_server_factory=factory,
                    total_replicas=replicas,
                    observers=observers,
                )
            skeletons.append(skeleton)
        return skeletons

    def _server_factory(
        self,
        object_id: str,
        replica: int,
        config: MpConfig | str,
        priority_policy: Callable[[Request], int] | None,
    ):
        if config is None:
            return None

        def factory(platform) -> CactusServer:
            if config == "with_base":
                server = CactusServer.with_base(
                    platform,
                    name=f"cactus-server-{object_id}-{replica}",
                    request_timeout=self.request_timeout,
                    priority_policy=priority_policy,
                    compiled_dispatch=self.compiled_dispatch,
                )
            else:
                extra = _instantiate(config) or []
                server = CactusServer.with_base(
                    platform,
                    extra,
                    name=f"cactus-server-{object_id}-{replica}",
                    request_timeout=self.request_timeout,
                    priority_policy=priority_policy,
                    compiled_dispatch=self.compiled_dispatch,
                )
            self._track(server)
            return server

        return factory

    def deploy_plain_replica(
        self,
        object_id: str,
        servant: Any,
        interface: InterfaceDef,
        replica: int = 1,
    ) -> None:
        """Deploy an *un-intercepted* servant under the replica name.

        Table 1 rungs "Original" and "+CQoS stub" target this: the original
        platform-generated skeleton serves the object, but the reference is
        published under the CQoS replica naming convention so CQoS stubs
        can still find it.
        """
        host_name = self.replica_host_name(object_id, replica)
        self._replica_hosts[(object_id, replica)] = host_name
        if self.platform == "corba":
            orb = self._new_orb(host_name).start()
            poa = orb.create_poa(f"{object_id}_plain_poa_{replica}")
            ior = poa.activate_object(object_id, servant, interface=interface)
            naming_client(orb).rebind(
                corba_replica_name(object_id, replica), orb.object_to_string(ior)
            )
        elif self.platform == "rmi":
            runtime = self._new_rmi(host_name).start()
            ref = runtime.export(servant, interface, object_id=object_id)
            registry_client(runtime).rebind(rmi_skeleton_name(object_id, replica), ref)
        else:
            http_server = self._new_http_server(host_name).start()
            http_server.mount(object_id, servant, interface)
            _, registry = self._http_registry_client(host_name)
            registry.rebind(
                http_replica_name(object_id, replica),
                http_server.endpoint_address,
                object_id,
            )

    # -- client side --------------------------------------------------------

    def client_stub(
        self,
        object_id: str,
        interface: InterfaceDef,
        client_micro_protocols: MpConfig | str = "with_base",
        with_cactus_client: bool = True,
        client_id: str | None = None,
        priority: int | None = None,
        host_name: str | None = None,
        runtime_workers: int | None = None,
        observers: Sequence[Any] | None = None,
        router=None,
    ) -> CqosStub:
        """Create a CQoS stub for ``object_id`` on a fresh client host.

        ``client_micro_protocols`` mirrors ``add_replicas``:
        ``"with_base"`` → ClientBase only; a config → those plus ClientBase;
        it is ignored when ``with_cactus_client=False`` (pass-through stub,
        Table 1's "+CQoS stub" rung).  ``observers`` attaches kernel
        :class:`~repro.core.platform.InvocationObserver` hooks to the stub
        boundary and every wire send.  ``router`` attaches a
        :class:`~repro.core.routing.router.ShardRouter` so replica discovery
        goes through the sharded directory view (see
        :class:`~repro.core.shardspace.ShardSpace`).
        """
        host = host_name or f"client-{self._ids.next_int()}"
        if self.platform == "corba":
            orb = self._new_orb(host)
            platform = CorbaClientPlatform(
                orb, object_id, observers=observers, router=router
            )
        elif self.platform == "rmi":
            runtime = self._new_rmi(host)
            platform = RmiClientPlatform(
                runtime, object_id, observers=observers, router=router
            )
        else:
            http_client, registry = self._http_registry_client(host)
            platform = HttpClientPlatform(
                http_client, registry, object_id, observers=observers, router=router
            )
        cactus_client: CactusClient | None = None
        if with_cactus_client:
            # Replication against gated replicas parks invocation legs on
            # pool workers until each replica answers; callers that mix
            # replication with server-side queuing size the pool up.
            runtime = None
            if runtime_workers is not None:
                from repro.cactus.runtime import CactusRuntime

                runtime = CactusRuntime(
                    workers=runtime_workers, name=f"cactus-client-{host}-rt"
                )
            if client_micro_protocols == "with_base":
                cactus_client = CactusClient.with_base(
                    platform,
                    name=f"cactus-client-{host}",
                    request_timeout=self.request_timeout,
                    runtime=runtime,
                    compiled_dispatch=self.compiled_dispatch,
                )
            else:
                extra = _instantiate(client_micro_protocols) or []
                cactus_client = CactusClient.with_base(
                    platform,
                    extra,
                    name=f"cactus-client-{host}",
                    request_timeout=self.request_timeout,
                    runtime=runtime,
                    compiled_dispatch=self.compiled_dispatch,
                )
            self._track(cactus_client)
        stub_class = make_cqos_stub_class(interface)
        return stub_class(
            platform,
            object_id,
            cactus_client=cactus_client,
            client_id=client_id,
            priority=priority,
            observers=observers,
        )

    def shard_space(self, groups, **kwargs):
        """Create a sharded object space over this deployment.

        ``groups`` maps group name → member count; see
        :class:`~repro.core.shardspace.ShardSpace`.
        """
        from repro.core.shardspace import ShardSpace

        return ShardSpace(self, groups, **kwargs)

    def plain_stub(
        self,
        object_id: str,
        interface: InterfaceDef,
        replica: int = 1,
        host_name: str | None = None,
    ):
        """Create the *original* platform stub (baseline, no CQoS).

        Targets a replica deployed with :meth:`deploy_plain_replica`.
        """
        host = host_name or f"client-{self._ids.next_int()}"
        if self.platform == "corba":
            orb = self._new_orb(host)
            ior_text = naming_client(orb).resolve(corba_replica_name(object_id, replica))
            ref = orb.string_to_object(ior_text)
            stub_class = make_static_stub_class(interface)
            return stub_class(orb, ref.ior)
        if self.platform == "rmi":
            runtime = self._new_rmi(host)
            ref = registry_client(runtime).lookup(rmi_skeleton_name(object_id, replica))
            stub_class = make_rmi_stub_class(interface)
            return stub_class(runtime, ref)
        http_client, registry = self._http_registry_client(host)
        address, oid = registry.lookup(http_replica_name(object_id, replica))
        stub_class = make_http_stub_class(interface)
        return stub_class(http_client, address, oid)

    # -- fault injection convenience -------------------------------------------

    def crash_replica(self, object_id: str, replica: int) -> None:
        host = self._replica_hosts.get((object_id, replica))
        if host is None:
            raise ConfigurationError(f"unknown replica {replica} of {object_id!r}")
        self.network.crash(host)

    def recover_replica(self, object_id: str, replica: int) -> None:
        host = self._replica_hosts.get((object_id, replica))
        if host is None:
            raise ConfigurationError(f"unknown replica {replica} of {object_id!r}")
        self.network.recover(host)

    # -- teardown ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            composites = list(self._cactus)
            orbs = list(self._orbs)
            runtimes = list(self._runtimes)
            http_servers = list(self._http_servers)
            http_clients = list(self._http_clients)
            self._cactus.clear()
            self._orbs.clear()
            self._runtimes.clear()
            self._http_servers.clear()
            self._http_clients.clear()
        for composite in composites:
            composite.shutdown()
            composite.runtime.shutdown()
        for orb in orbs:
            orb.shutdown()
        for runtime in runtimes:
            runtime.shutdown()
        for server in http_servers:
            server.shutdown()
        for client in http_clients:
            client.close()
        self.network.close()

    def __enter__(self) -> "CqosDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
