"""CQoS: the paper's primary contribution.

The architecture has two halves (paper Figure 1/2):

- **Interceptors** (:mod:`~repro.core.stub`, :mod:`~repro.core.skeleton`,
  :mod:`~repro.core.adapters`) — platform-specific: the *CQoS stub* replaces
  the middleware-generated client stub; the *CQoS skeleton* registers as a
  proxy servant in place of the real server object.  Both convert platform
  requests to/from the platform-independent abstract
  :class:`~repro.core.request.Request` and implement the **Cactus QoS
  interface** (:mod:`~repro.core.interfaces`).
- **Service components** (:mod:`~repro.core.client`,
  :mod:`~repro.core.server`) — generic: the *Cactus client* and *Cactus
  server* composite protocols, whose micro-protocols
  (:mod:`repro.qos`) implement the fault-tolerance / security / timeliness
  attributes against the abstract interfaces only.

:mod:`~repro.core.service` is the deployment façade gluing everything
together for applications, tests, and the benchmark harness.
"""

from repro.core.request import Reply, Request
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_INVOKE_RETURN,
    EV_INVOKE_SUCCESS,
    EV_NEW_REQUEST,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_INVOKE,
    EV_READY_TO_SEND,
    EV_REQUEST_RETURNED,
    FIGURE3_EDGES,
)
from repro.core.interfaces import ClientPlatform, ControlMessage, ServerPlatform
from repro.core.platform import (
    PIGGYBACK_CODEC,
    BaseClientPlatform,
    BaseServerPlatform,
    BaseSkeletonServant,
    InvocationObserver,
    PiggybackCodec,
    ReplicaDirectory,
    fault_action,
)
from repro.core.client import CactusClient
from repro.core.server import CactusServer
from repro.core.stub import CqosStub, make_cqos_stub_class
from repro.core.skeleton import CqosSkeleton
from repro.core.service import CqosDeployment

__all__ = [
    "Request",
    "Reply",
    "EV_NEW_REQUEST",
    "EV_READY_TO_SEND",
    "EV_INVOKE_SUCCESS",
    "EV_INVOKE_FAILURE",
    "EV_NEW_SERVER_REQUEST",
    "EV_READY_TO_INVOKE",
    "EV_INVOKE_RETURN",
    "EV_REQUEST_RETURNED",
    "FIGURE3_EDGES",
    "ClientPlatform",
    "ServerPlatform",
    "ControlMessage",
    "BaseClientPlatform",
    "BaseServerPlatform",
    "BaseSkeletonServant",
    "ReplicaDirectory",
    "InvocationObserver",
    "PiggybackCodec",
    "PIGGYBACK_CODEC",
    "fault_action",
    "CactusClient",
    "CactusServer",
    "CqosStub",
    "make_cqos_stub_class",
    "CqosSkeleton",
    "CqosDeployment",
]
