"""Platform adapters: the middleware-specific halves of the interceptors.

One module per supported platform (paper section 4):

- :mod:`repro.core.adapters.corba` — DSI skeleton, DII stub path, the
  ``OID_agent_poa_i`` / ``OID_CQoS_Skeleton`` POA naming convention, and
  replica discovery through the naming service;
- :mod:`repro.core.adapters.rmi` — generic-invoke skeleton proxy,
  ``OID_CQoS_Skeleton_i`` registry naming convention.

Each exposes a ``ClientPlatform`` and a ``ServerPlatform`` implementation
plus an ``install_*_replica`` helper; the Cactus protocols above never see
which one is in use.
"""

from repro.core.adapters.corba import (
    CorbaClientPlatform,
    CorbaCqosSkeletonServant,
    CorbaServerPlatform,
    corba_replica_name,
    install_corba_replica,
)
from repro.core.adapters.rmi import (
    RmiClientPlatform,
    RmiCqosSkeletonServant,
    RmiServerPlatform,
    install_rmi_replica,
    rmi_skeleton_name,
)

__all__ = [
    "CorbaClientPlatform",
    "CorbaServerPlatform",
    "CorbaCqosSkeletonServant",
    "install_corba_replica",
    "corba_replica_name",
    "RmiClientPlatform",
    "RmiServerPlatform",
    "RmiCqosSkeletonServant",
    "install_rmi_replica",
    "rmi_skeleton_name",
]
