"""Platform adapters: the middleware-specific codecs for the kernel.

Since the invocation-kernel refactor every adapter is a *thin codec* over
:mod:`repro.core.platform` — the shared kernel owns the replica directory,
lazy binding, liveness marks, control pings, fault taxonomy, and observer
hooks; each adapter contributes only naming conventions, bootstrap-service
lookup, and request conversion.  One module per supported platform (paper
section 4):

- :mod:`repro.core.adapters.corba` — DSI skeleton, DII stub path, the
  ``OID_agent_poa_i`` / ``OID_CQoS_Skeleton`` POA naming convention, and
  replica discovery through the naming service;
- :mod:`repro.core.adapters.rmi` — generic-invoke skeleton proxy,
  ``OID_CQoS_Skeleton_i`` registry naming convention;
- :mod:`repro.core.adapters.http` — generic mounted skeleton resource,
  ``OID/replica-i`` path-registry convention, piggyback on ``X-CQoS-*``
  headers.

Each exposes a ``ClientPlatform`` and a ``ServerPlatform`` implementation
plus an ``install_*_replica`` helper; the Cactus protocols above never see
which one is in use.
"""

from repro.core.adapters.corba import (
    CorbaClientPlatform,
    CorbaCqosSkeletonServant,
    CorbaServerPlatform,
    corba_poa_name,
    corba_replica_name,
    corba_skeleton_object_id,
    install_corba_replica,
)
from repro.core.adapters.http import (
    HttpClientPlatform,
    HttpCqosSkeletonServant,
    HttpServerPlatform,
    http_replica_name,
    http_skeleton_object_id,
    install_http_replica,
)
from repro.core.adapters.rmi import (
    RmiClientPlatform,
    RmiCqosSkeletonServant,
    RmiServerPlatform,
    install_rmi_replica,
    rmi_skeleton_name,
)

__all__ = [
    "CorbaClientPlatform",
    "CorbaServerPlatform",
    "CorbaCqosSkeletonServant",
    "install_corba_replica",
    "corba_poa_name",
    "corba_replica_name",
    "corba_skeleton_object_id",
    "RmiClientPlatform",
    "RmiServerPlatform",
    "RmiCqosSkeletonServant",
    "install_rmi_replica",
    "rmi_skeleton_name",
    "HttpClientPlatform",
    "HttpServerPlatform",
    "HttpCqosSkeletonServant",
    "install_http_replica",
    "http_replica_name",
    "http_skeleton_object_id",
]
