"""CQoS on HTTP (the paper's §2.1 generality claim).

"It would be feasible to intercept HTTP requests and replies, in which case
the TCP socket layer would be viewed as the middleware layer."  Here it is:
the CQoS skeleton mounts as a *generic* HTTP object in place of the real
servant (the proxy-resource pattern), the CQoS stub posts operations to it,
piggyback data rides ``X-CQoS-*`` headers, and replica discovery uses the
path registry with the convention name ``"<OID>/replica-<i>"``.

Nothing in :mod:`repro.qos` knows this platform exists — which is the whole
point of the two-component architecture.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.interfaces import ClientPlatform, ServerPlatform
from repro.core.request import Request
from repro.core.server import CactusServer
from repro.core.skeleton import CONTROL_OPERATION, CONTROL_PING, CqosSkeleton
from repro.http.client import HttpClient
from repro.http.registry import HttpRegistryClient
from repro.http.server import HttpObjectServer
from repro.idl.compiler import InterfaceDef
from repro.orb.stubs import StaticSkeleton
from repro.util.errors import BindError, CommunicationError, ServerFailedError


def http_replica_name(object_id: str, replica: int) -> str:
    """Registry naming convention for HTTP replicas."""
    return f"{object_id}/replica-{replica}"


def http_skeleton_object_id(object_id: str) -> str:
    return f"{object_id}_CQoS_Skeleton"


class HttpCqosSkeletonServant:
    """Generic HTTP object delivering every POST to the skeleton core."""

    def __init__(self, skeleton: CqosSkeleton):
        self.skeleton = skeleton

    def invoke(self, method: str, arguments: list, context: dict) -> Any:
        return self.skeleton.handle_invocation(method, arguments, context)


class HttpServerPlatform(ServerPlatform):
    """Server-side Cactus QoS interface implementation on HTTP."""

    def __init__(
        self,
        server: HttpObjectServer,
        client: HttpClient,
        registry: HttpRegistryClient,
        object_id: str,
        replica: int,
        servant: Any,
        interface: InterfaceDef,
        total_replicas: int = 1,
    ):
        self._server = server
        self._client = client
        self._registry = registry
        self._object_id = object_id
        self._replica = replica
        self._total = total_replicas
        self._dispatch = StaticSkeleton(servant, interface, server.compiled)
        self._peer_endpoints: dict[int, tuple[str, str]] = {}
        self._lock = threading.Lock()

    def invoke_servant(self, request: Request) -> Any:
        return self._dispatch.dispatch(request.operation, request.get_params())

    def my_replica(self) -> int:
        return self._replica

    def num_replicas(self) -> int:
        return self._total

    def _peer(self, replica: int) -> tuple[str, str]:
        with self._lock:
            entry = self._peer_endpoints.get(replica)
        if entry is None:
            entry = self._registry.lookup(http_replica_name(self._object_id, replica))
            with self._lock:
                self._peer_endpoints[replica] = entry
        return entry

    def peer_invoke(self, replica: int, kind: str, payload: dict) -> Any:
        address, object_id = self._peer(replica)
        try:
            return self._client.post(
                address, object_id, CONTROL_OPERATION, [kind, self._replica, payload]
            )
        except CommunicationError:
            with self._lock:
                self._peer_endpoints.pop(replica, None)
            raise

    def peer_status(self, replica: int) -> bool:
        try:
            address, object_id = self._peer(replica)
            return bool(
                self._client.post(
                    address, object_id, CONTROL_OPERATION, [CONTROL_PING, self._replica, {}]
                )
            )
        except (CommunicationError, BindError):
            with self._lock:
                self._peer_endpoints.pop(replica, None)
            return False


class HttpClientPlatform(ClientPlatform):
    """Client-side Cactus QoS interface implementation on HTTP."""

    def __init__(self, client: HttpClient, registry: HttpRegistryClient, object_id: str):
        self._client = client
        self._registry = registry
        self._object_id = object_id
        self._lock = threading.Lock()
        self._endpoints: dict[int, tuple[str, str]] = {}
        self._failed: set[int] = set()
        self._num_servers: int | None = None

    def num_servers(self) -> int:
        with self._lock:
            if self._num_servers is not None:
                return self._num_servers
        prefix = f"{self._object_id}/replica-"
        count = len(self._registry.list(prefix))
        with self._lock:
            self._num_servers = max(count, 1)
            return self._num_servers

    def refresh(self) -> None:
        with self._lock:
            self._endpoints.clear()
            self._failed.clear()
            self._num_servers = None

    def bind(self, server: int) -> None:
        with self._lock:
            bound = server in self._endpoints
            self._failed.discard(server)
        if bound:
            return
        entry = self._registry.lookup(http_replica_name(self._object_id, server))
        with self._lock:
            self._endpoints[server] = entry

    def server_status(self, server: int) -> bool:
        with self._lock:
            return server not in self._failed

    def probe(self, server: int) -> bool:
        try:
            self.bind(server)
            with self._lock:
                address, object_id = self._endpoints[server]
            alive = bool(
                self._client.post(
                    address, object_id, CONTROL_OPERATION, [CONTROL_PING, 0, {}]
                )
            )
        except (CommunicationError, BindError):
            alive = False
        if not alive:
            with self._lock:
                self._failed.add(server)
                self._endpoints.pop(server, None)
        return alive

    def invoke_server(self, server: int, request: Request) -> Any:
        self.bind(server)
        with self._lock:
            address, object_id = self._endpoints[server]
        try:
            return self._client.post(
                address,
                object_id,
                request.operation,
                request.get_params(),
                piggyback=dict(request.piggyback),
            )
        except ServerFailedError:
            with self._lock:
                self._failed.add(server)
                self._endpoints.pop(server, None)
            raise
        except CommunicationError:
            with self._lock:
                self._endpoints.pop(server, None)
            raise


def install_http_replica(
    server: HttpObjectServer,
    client: HttpClient,
    registry: HttpRegistryClient,
    object_id: str,
    replica: int,
    servant: Any,
    interface: InterfaceDef,
    cactus_server_factory=None,
    total_replicas: int = 1,
) -> CqosSkeleton:
    """Mount the CQoS skeleton for one replica and register its path."""
    platform = HttpServerPlatform(
        server, client, registry, object_id, replica, servant, interface,
        total_replicas=total_replicas,
    )
    cactus_server: CactusServer | None = None
    if cactus_server_factory is not None:
        cactus_server = cactus_server_factory(platform)
    skeleton = CqosSkeleton(object_id, platform, cactus_server)
    skeleton_id = http_skeleton_object_id(object_id)
    server.mount_generic(skeleton_id, HttpCqosSkeletonServant(skeleton))
    registry.rebind(
        http_replica_name(object_id, replica), server.endpoint_address, skeleton_id
    )
    return skeleton
