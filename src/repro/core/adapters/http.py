"""CQoS on HTTP (the paper's §2.1 generality claim) — the HTTP codec.

"It would be feasible to intercept HTTP requests and replies, in which case
the TCP socket layer would be viewed as the middleware layer."  Here it is:
the CQoS skeleton mounts as a *generic* HTTP object in place of the real
servant (the proxy-resource pattern), the CQoS stub posts operations to it,
piggyback data rides ``X-CQoS-*`` headers (encoded by the kernel's shared
:class:`~repro.core.platform.PiggybackCodec`, so any marshallable key or
value round-trips losslessly), and replica discovery uses the path registry
with the convention name ``"<OID>/replica-<i>"``.

All request-lifecycle machinery lives in the shared invocation kernel
(:mod:`repro.core.platform`); this module supplies only the HTTP codec
surface: the path-registry naming convention, lookup/enumeration, and
request conversion (abstract request → one POST on the replica's
``(address, object_id)`` endpoint).

Nothing in :mod:`repro.qos` knows this platform exists — which is the whole
point of the two-component architecture.
"""

from __future__ import annotations

from typing import Any

from repro.core.platform import (
    BaseClientPlatform,
    BaseServerPlatform,
    BaseSkeletonServant,
    http_replica_name,
    http_replica_prefix,
    http_skeleton_object_id,
)
from repro.core.server import CactusServer
from repro.core.skeleton import CqosSkeleton
from repro.http.client import HttpClient
from repro.http.registry import HttpRegistryClient
from repro.http.server import HttpObjectServer
from repro.idl.compiler import InterfaceDef
from repro.orb.stubs import StaticSkeleton

__all__ = [
    "HttpClientPlatform",
    "HttpCqosSkeletonServant",
    "HttpServerPlatform",
    "http_replica_name",
    "http_replica_prefix",
    "http_skeleton_object_id",
    "install_http_replica",
]


class HttpCqosSkeletonServant(BaseSkeletonServant):
    """Generic HTTP object delivering every POST to the skeleton core."""


class _HttpRegistryMixin:
    """Shared HTTP name resolution through the path registry."""

    _client: HttpClient
    _registry: HttpRegistryClient

    def _resolve(self, name: str) -> tuple[str, str]:
        return self._registry.lookup(name)

    def _list_names(self, prefix: str) -> list:
        return self._registry.list(prefix)

    def _send(self, endpoint: tuple[str, str], operation: str, params: list, piggyback) -> Any:
        address, object_id = endpoint
        return self._client.post(address, object_id, operation, params, piggyback=piggyback)

    def _send_async(self, endpoint: tuple[str, str], operation: str, params: list, piggyback):
        address, object_id = endpoint
        return self._client.post_async(
            address, object_id, operation, params, piggyback=piggyback
        )


class HttpServerPlatform(_HttpRegistryMixin, BaseServerPlatform):
    """Server-side Cactus QoS interface implementation on HTTP."""

    def __init__(
        self,
        server: HttpObjectServer,
        client: HttpClient,
        registry: HttpRegistryClient,
        object_id: str,
        replica: int,
        servant: Any,
        interface: InterfaceDef,
        total_replicas: int = 1,
        observers=None,
        router=None,
    ):
        self._server = server
        self._client = client
        self._registry = registry
        super().__init__(
            object_id,
            replica,
            StaticSkeleton(servant, interface, server.compiled),
            total_replicas=total_replicas,
            observers=observers,
            router=router,
        )

    def _peer_name(self, replica: int) -> str:
        return http_replica_name(self.object_id, replica)


class HttpClientPlatform(_HttpRegistryMixin, BaseClientPlatform):
    """Client-side Cactus QoS interface implementation on HTTP."""

    def __init__(
        self,
        client: HttpClient,
        registry: HttpRegistryClient,
        object_id: str,
        observers=None,
        router=None,
    ):
        self._client = client
        self._registry = registry
        super().__init__(object_id, observers=observers, router=router)

    def _replica_name(self, replica: int) -> str:
        return http_replica_name(self.object_id, replica)

    def _replica_prefix(self) -> str:
        return http_replica_prefix(self.object_id)


def install_http_replica(
    server: HttpObjectServer,
    client: HttpClient,
    registry: HttpRegistryClient,
    object_id: str,
    replica: int,
    servant: Any,
    interface: InterfaceDef,
    cactus_server_factory=None,
    total_replicas: int = 1,
    observers=None,
    router=None,
    skeleton_id: str | None = None,
) -> CqosSkeleton:
    """Mount the CQoS skeleton for one replica and register its path.

    ``observers`` as in :func:`~repro.core.adapters.corba.install_corba_replica`.
    ``skeleton_id`` overrides the mount id (default: the historical
    ``"<OID>_CQoS_Skeleton"``) — sharded deployments mounting several
    logical replicas of one object on one server need distinct ids; the
    registry *name* stays the unchanged ``"<OID>/replica-<i>"`` either way.
    """
    platform = HttpServerPlatform(
        server,
        client,
        registry,
        object_id,
        replica,
        servant,
        interface,
        total_replicas=total_replicas,
        observers=observers,
        router=router,
    )
    cactus_server: CactusServer | None = None
    if cactus_server_factory is not None:
        cactus_server = cactus_server_factory(platform)
    skeleton = CqosSkeleton(object_id, platform, cactus_server)
    skeleton_id = skeleton_id or http_skeleton_object_id(object_id)
    server.mount_generic(skeleton_id, HttpCqosSkeletonServant(skeleton, observers=observers))
    registry.rebind(
        http_replica_name(object_id, replica), server.endpoint_address, skeleton_id
    )
    return skeleton
