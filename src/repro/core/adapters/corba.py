"""CQoS on CORBA (paper section 4.1) — the CORBA codec for the kernel.

All request-lifecycle machinery (replica directory, lazy bind, liveness
marks, control pings, fault taxonomy, observer hooks) lives in the shared
invocation kernel (:mod:`repro.core.platform`); this module supplies only
the CORBA codec surface:

- naming convention, verbatim from the paper: the POA for the i-th replica
  of object ``OID`` is named ``"OID_agent_poa_i"``, the skeleton activates
  under object id ``"OID_CQoS_Skeleton"``, and the resulting IOR is
  (re)bound in the naming service as ``"OID/replica-i"`` so clients can
  enumerate replicas;
- name resolution through the naming service (IOR string → object
  reference);
- request conversion: each abstract request becomes a CORBA request with
  the **DII** — the conversion the paper identifies as the main CORBA-side
  overhead (``use_dii=False`` selects the plain dynamic invocation for
  comparison);
- the DSI :class:`CorbaCqosSkeletonServant` adapting the POA upcall
  calling convention onto the kernel's skeleton dispatch.
"""

from __future__ import annotations

from typing import Any

from repro.core.platform import (
    BaseClientPlatform,
    BaseServerPlatform,
    BaseSkeletonServant,
    corba_poa_name,
    corba_replica_name,
    corba_replica_prefix,
    corba_skeleton_object_id,
)
from repro.core.server import CactusServer
from repro.core.skeleton import CqosSkeleton
from repro.idl.compiler import InterfaceDef
from repro.orb.dsi import DynamicImplementation, ServerRequest
from repro.orb.naming import NamingClient, naming_client
from repro.orb.orb import ObjectRef, Orb
from repro.orb.stubs import StaticSkeleton

__all__ = [
    "CorbaClientPlatform",
    "CorbaCqosSkeletonServant",
    "CorbaServerPlatform",
    "corba_poa_name",
    "corba_replica_name",
    "corba_replica_prefix",
    "corba_skeleton_object_id",
    "install_corba_replica",
]


class CorbaCqosSkeletonServant(BaseSkeletonServant, DynamicImplementation):
    """DSI wrapper delivering every POA upcall to the CQoS skeleton core."""

    def invoke(self, server_request: ServerRequest) -> None:
        try:
            value = self.dispatch_invocation(
                server_request.operation,
                server_request.arguments(),
                server_request.context(),
            )
        except BaseException as exc:  # noqa: BLE001 - marshalled by the ORB
            server_request.set_exception(exc)
        else:
            server_request.set_result(value)


class _CorbaNamingMixin:
    """Shared CORBA name resolution: naming-service entry → object ref."""

    _orb: Orb
    _naming: NamingClient

    def _resolve(self, name: str) -> ObjectRef:
        return self._orb.string_to_object(self._naming.resolve(name))

    def _list_names(self, prefix: str) -> list:
        return self._naming.list_names(prefix)


class CorbaServerPlatform(_CorbaNamingMixin, BaseServerPlatform):
    """Server-side Cactus QoS interface implementation on the ORB."""

    def __init__(
        self,
        orb: Orb,
        object_id: str,
        replica: int,
        servant: Any,
        interface: InterfaceDef,
        total_replicas: int = 1,
        observers=None,
        router=None,
    ):
        self._orb = orb
        self._naming = naming_client(orb)
        # invoke_servant() is a native call through the IDL-typed dispatch.
        super().__init__(
            object_id,
            replica,
            StaticSkeleton(servant, interface, orb.compiled),
            total_replicas=total_replicas,
            observers=observers,
            router=router,
        )

    def _peer_name(self, replica: int) -> str:
        return corba_replica_name(self.object_id, replica)

    def _send(self, endpoint: ObjectRef, operation: str, params: list, piggyback) -> Any:
        return endpoint.invoke_op(operation, params, dict(piggyback or {}))

    def _send_async(self, endpoint: ObjectRef, operation: str, params: list, piggyback):
        return endpoint.invoke_op_async(operation, params, dict(piggyback or {}))


class CorbaClientPlatform(_CorbaNamingMixin, BaseClientPlatform):
    """Client-side Cactus QoS interface implementation on the ORB."""

    def __init__(
        self,
        orb: Orb,
        object_id: str,
        use_dii: bool = True,
        observers=None,
        router=None,
    ):
        self._orb = orb
        self._use_dii = use_dii
        self._naming = naming_client(orb)
        super().__init__(object_id, observers=observers, router=router)

    def _replica_name(self, replica: int) -> str:
        return corba_replica_name(self.object_id, replica)

    def _replica_prefix(self) -> str:
        return corba_replica_prefix(self.object_id)

    def _send(self, endpoint: ObjectRef, operation: str, params: list, piggyback) -> Any:
        if self._use_dii:
            # The paper's path: abstract request -> CORBA request (DII).
            dii = endpoint._create_request(operation)
            for param in params:
                dii.add_arg(param)
            dii.set_context(dict(piggyback or {}))
            dii.invoke()
            return dii.return_value()
        return endpoint.invoke_op(operation, params, dict(piggyback or {}))

    def _send_async(self, endpoint: ObjectRef, operation: str, params: list, piggyback):
        if self._use_dii:
            # Deferred-synchronous DII: same request construction and wire
            # bytes as invoke(); only the wait moves to the ReplyFuture.
            dii = endpoint._create_request(operation)
            for param in params:
                dii.add_arg(param)
            dii.set_context(dict(piggyback or {}))
            return dii.send_deferred()
        return endpoint.invoke_op_async(operation, params, dict(piggyback or {}))


def install_corba_replica(
    orb: Orb,
    object_id: str,
    replica: int,
    servant: Any,
    interface: InterfaceDef,
    cactus_server_factory=None,
    total_replicas: int = 1,
    observers=None,
    router=None,
) -> CqosSkeleton:
    """Install the CQoS server side for one replica on an ORB.

    Mirrors the modified ``startup`` file of the paper: creates the
    convention-named POA, registers the DSI CQoS skeleton (holding a
    pointer to the original servant) and rebinds the replica's name in the
    naming service.  ``cactus_server_factory(platform) -> CactusServer``
    configures the QoS component; ``None`` installs a pass-through skeleton
    (Table 1's "+CQoS skeleton" rung).  ``observers`` attach
    :class:`~repro.core.platform.InvocationObserver` hooks to both the
    skeleton boundary and servant dispatch.
    """
    platform = CorbaServerPlatform(
        orb,
        object_id,
        replica,
        servant,
        interface,
        total_replicas=total_replicas,
        observers=observers,
        router=router,
    )
    cactus_server: CactusServer | None = None
    if cactus_server_factory is not None:
        cactus_server = cactus_server_factory(platform)
    skeleton = CqosSkeleton(object_id, platform, cactus_server)
    poa = orb.create_poa(corba_poa_name(object_id, replica))
    ior = poa.activate_object(
        corba_skeleton_object_id(object_id),
        CorbaCqosSkeletonServant(skeleton, observers=observers),
    )
    naming_client(orb).rebind(
        corba_replica_name(object_id, replica), orb.object_to_string(ior)
    )
    return skeleton
