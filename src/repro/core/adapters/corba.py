"""CQoS on CORBA (paper section 4.1).

Server side: a :class:`CorbaCqosSkeletonServant` (a DSI
:class:`~repro.orb.dsi.DynamicImplementation`) registers in place of the
application servant.  The paper's naming convention is used verbatim: the
POA for the i-th replica of object ``OID`` is named ``"OID_agent_poa_i"``
and the skeleton activates under object id ``"OID_CQoS_Skeleton"``; the
resulting IOR is (re)bound in the naming service as ``"OID/replica-i"`` so
clients can enumerate replicas.

Client side: :class:`CorbaClientPlatform` resolves replica IORs through the
naming service lazily (binding happens at the first request, as in the
prototype) and converts each abstract request into a CORBA request with the
**DII** — the conversion the paper identifies as the main CORBA-side
overhead.

``server_status()`` reports locally tracked knowledge (a replica is marked
failed when an invocation on it fails at the communication level; ``bind()``
clears the mark, implementing rebinding to a recovered server).  An active
``probe()`` using the skeleton's control ping is available for failure
detectors.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.interfaces import ClientPlatform, ServerPlatform
from repro.core.request import Request
from repro.core.server import CactusServer
from repro.core.skeleton import CONTROL_OPERATION, CONTROL_PING, CqosSkeleton
from repro.idl.compiler import InterfaceDef
from repro.orb.dsi import DynamicImplementation, ServerRequest
from repro.orb.naming import NamingClient, naming_client
from repro.orb.orb import ObjectRef, Orb
from repro.orb.stubs import StaticSkeleton
from repro.util.errors import BindError, CommunicationError, ServerFailedError


def corba_poa_name(object_id: str, replica: int) -> str:
    """The paper's POA naming convention: ``"OID_agent_poa_i"``."""
    return f"{object_id}_agent_poa_{replica}"


def corba_skeleton_object_id(object_id: str) -> str:
    """The shared skeleton object id: ``"OID_CQoS_Skeleton"``."""
    return f"{object_id}_CQoS_Skeleton"


def corba_replica_name(object_id: str, replica: int) -> str:
    """The naming-service entry for one replica's skeleton."""
    return f"{object_id}/replica-{replica}"


class CorbaCqosSkeletonServant(DynamicImplementation):
    """DSI wrapper delivering every POA upcall to the CQoS skeleton core."""

    def __init__(self, skeleton: CqosSkeleton):
        self.skeleton = skeleton

    def invoke(self, server_request: ServerRequest) -> None:
        try:
            value = self.skeleton.handle_invocation(
                server_request.operation,
                server_request.arguments(),
                server_request.context(),
            )
        except BaseException as exc:  # noqa: BLE001 - marshalled by the ORB
            server_request.set_exception(exc)
        else:
            server_request.set_result(value)


class CorbaServerPlatform(ServerPlatform):
    """Server-side Cactus QoS interface implementation on the ORB."""

    def __init__(
        self,
        orb: Orb,
        object_id: str,
        replica: int,
        servant: Any,
        interface: InterfaceDef,
        total_replicas: int = 1,
    ):
        self._orb = orb
        self._object_id = object_id
        self._replica = replica
        self._total = total_replicas
        # invoke_servant() is a native call through the IDL-typed dispatch.
        self._dispatch = StaticSkeleton(servant, interface, orb.compiled)
        self._naming: NamingClient = naming_client(orb)
        self._peer_refs: dict[int, ObjectRef] = {}
        self._lock = threading.Lock()

    def invoke_servant(self, request: Request) -> Any:
        return self._dispatch.dispatch(request.operation, request.get_params())

    def my_replica(self) -> int:
        return self._replica

    def num_replicas(self) -> int:
        return self._total

    def _peer_ref(self, replica: int) -> ObjectRef:
        with self._lock:
            ref = self._peer_refs.get(replica)
        if ref is None:
            ior_text = self._naming.resolve(corba_replica_name(self._object_id, replica))
            ref = self._orb.string_to_object(ior_text)
            with self._lock:
                self._peer_refs[replica] = ref
        return ref

    def peer_invoke(self, replica: int, kind: str, payload: dict) -> Any:
        ref = self._peer_ref(replica)
        try:
            return ref.invoke_op(CONTROL_OPERATION, [kind, self._replica, payload])
        except CommunicationError:
            with self._lock:
                self._peer_refs.pop(replica, None)
            raise

    def peer_status(self, replica: int) -> bool:
        try:
            return bool(
                self._peer_ref(replica).invoke_op(
                    CONTROL_OPERATION, [CONTROL_PING, self._replica, {}]
                )
            )
        except (CommunicationError, BindError):
            with self._lock:
                self._peer_refs.pop(replica, None)
            return False


class CorbaClientPlatform(ClientPlatform):
    """Client-side Cactus QoS interface implementation on the ORB."""

    def __init__(self, orb: Orb, object_id: str, use_dii: bool = True):
        self._orb = orb
        self._object_id = object_id
        self._use_dii = use_dii
        self._naming: NamingClient = naming_client(orb)
        self._lock = threading.Lock()
        self._refs: dict[int, ObjectRef] = {}
        self._failed: set[int] = set()
        self._num_servers: int | None = None

    def num_servers(self) -> int:
        with self._lock:
            if self._num_servers is not None:
                return self._num_servers
        prefix = f"{self._object_id}/replica-"
        count = len(self._naming.list_names(prefix))
        with self._lock:
            self._num_servers = max(count, 1)
            return self._num_servers

    def refresh(self) -> None:
        """Drop cached bindings and replica count (re-discover on next use)."""
        with self._lock:
            self._refs.clear()
            self._failed.clear()
            self._num_servers = None

    def bind(self, server: int) -> None:
        with self._lock:
            bound = server in self._refs
            self._failed.discard(server)  # rebinding clears failure knowledge
        if bound:
            return
        ior_text = self._naming.resolve(corba_replica_name(self._object_id, server))
        ref = self._orb.string_to_object(ior_text)
        with self._lock:
            self._refs[server] = ref

    def server_status(self, server: int) -> bool:
        with self._lock:
            return server not in self._failed

    def probe(self, server: int) -> bool:
        """Active liveness check via the skeleton's control ping."""
        try:
            self.bind(server)
            with self._lock:
                ref = self._refs[server]
            alive = bool(ref.invoke_op(CONTROL_OPERATION, [CONTROL_PING, 0, {}]))
        except (CommunicationError, BindError):
            alive = False
        if not alive:
            with self._lock:
                self._failed.add(server)
                self._refs.pop(server, None)
        return alive

    def invoke_server(self, server: int, request: Request) -> Any:
        self.bind(server)
        with self._lock:
            ref = self._refs[server]
        try:
            if self._use_dii:
                # The paper's path: abstract request -> CORBA request (DII).
                dii = ref._create_request(request.operation)
                for param in request.get_params():
                    dii.add_arg(param)
                dii.set_context(dict(request.piggyback))
                dii.invoke()
                return dii.return_value()
            return ref.invoke_op(
                request.operation, request.get_params(), dict(request.piggyback)
            )
        except ServerFailedError:
            # The host is down: remember it so server_status() reports it.
            with self._lock:
                self._failed.add(server)
                self._refs.pop(server, None)
            raise
        except CommunicationError:
            # Transient (loss, partition, reset): drop the binding so the
            # next attempt reconnects, but do not mark the replica failed.
            with self._lock:
                self._refs.pop(server, None)
            raise


def install_corba_replica(
    orb: Orb,
    object_id: str,
    replica: int,
    servant: Any,
    interface: InterfaceDef,
    cactus_server_factory=None,
    total_replicas: int = 1,
) -> CqosSkeleton:
    """Install the CQoS server side for one replica on an ORB.

    Mirrors the modified ``startup`` file of the paper: creates the
    convention-named POA, registers the DSI CQoS skeleton (holding a
    pointer to the original servant) and rebinds the replica's name in the
    naming service.  ``cactus_server_factory(platform) -> CactusServer``
    configures the QoS component; ``None`` installs a pass-through skeleton
    (Table 1's "+CQoS skeleton" rung).
    """
    platform = CorbaServerPlatform(
        orb, object_id, replica, servant, interface, total_replicas=total_replicas
    )
    cactus_server: CactusServer | None = None
    if cactus_server_factory is not None:
        cactus_server = cactus_server_factory(platform)
    skeleton = CqosSkeleton(object_id, platform, cactus_server)
    poa = orb.create_poa(corba_poa_name(object_id, replica))
    ior = poa.activate_object(
        corba_skeleton_object_id(object_id), CorbaCqosSkeletonServant(skeleton)
    )
    naming_client(orb).rebind(
        corba_replica_name(object_id, replica), orb.object_to_string(ior)
    )
    return skeleton
