"""CQoS on Java RMI (paper section 4.2).

"Since Java no longer supports server side skeletons, we introduce [the]
CQoS skeleton as a proxy object … [that] export[s] only a generic invoke
method.  …  the skeleton for the i-th replica of object with identifier
OID registers with the Java naming service using name
'OID_CQoS_Skeleton_i'."

Server side: :class:`RmiCqosSkeletonServant` is a generic remote object
(the simulated DSI) exported per replica and registered in the RMI registry
under the convention name.  Client side: :class:`RmiClientPlatform` looks
replicas up lazily (binding at first request) and invokes the skeleton's
generic method directly — no DII equivalent exists, which is why the RMI
rows of Table 1 show smaller conversion overheads.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.interfaces import ClientPlatform, ServerPlatform
from repro.core.request import Request
from repro.core.server import CactusServer
from repro.core.skeleton import CONTROL_OPERATION, CONTROL_PING, CqosSkeleton
from repro.idl.compiler import InterfaceDef
from repro.orb.stubs import StaticSkeleton
from repro.rmi.registry import RegistryClient, registry_client
from repro.rmi.runtime import RemoteRef, RmiRuntime
from repro.util.errors import BindError, CommunicationError, ServerFailedError


def rmi_skeleton_name(object_id: str, replica: int) -> str:
    """The paper's registry naming convention: ``"OID_CQoS_Skeleton_i"``."""
    return f"{object_id}_CQoS_Skeleton_{replica}"


class RmiCqosSkeletonServant:
    """Generic remote object delivering every call to the skeleton core.

    The RMI analog of the DSI servant: ``invoke(method, arguments,
    context)`` regardless of which server method the client called.
    """

    def __init__(self, skeleton: CqosSkeleton):
        self.skeleton = skeleton

    def invoke(self, method: str, arguments: list, context: dict) -> Any:
        return self.skeleton.handle_invocation(method, arguments, context)


class RmiServerPlatform(ServerPlatform):
    """Server-side Cactus QoS interface implementation on RMI."""

    def __init__(
        self,
        runtime: RmiRuntime,
        object_id: str,
        replica: int,
        servant: Any,
        interface: InterfaceDef,
        total_replicas: int = 1,
    ):
        self._runtime = runtime
        self._object_id = object_id
        self._replica = replica
        self._total = total_replicas
        self._dispatch = StaticSkeleton(servant, interface, runtime.compiled)
        self._registry: RegistryClient = registry_client(runtime)
        self._peer_refs: dict[int, RemoteRef] = {}
        self._lock = threading.Lock()

    def invoke_servant(self, request: Request) -> Any:
        return self._dispatch.dispatch(request.operation, request.get_params())

    def my_replica(self) -> int:
        return self._replica

    def num_replicas(self) -> int:
        return self._total

    def _peer_ref(self, replica: int) -> RemoteRef:
        with self._lock:
            ref = self._peer_refs.get(replica)
        if ref is None:
            ref = self._registry.lookup(rmi_skeleton_name(self._object_id, replica))
            with self._lock:
                self._peer_refs[replica] = ref
        return ref

    def peer_invoke(self, replica: int, kind: str, payload: dict) -> Any:
        ref = self._peer_ref(replica)
        try:
            return self._runtime.call(
                ref, CONTROL_OPERATION, [kind, self._replica, payload]
            )
        except CommunicationError:
            with self._lock:
                self._peer_refs.pop(replica, None)
            raise

    def peer_status(self, replica: int) -> bool:
        try:
            return bool(
                self._runtime.call(
                    self._peer_ref(replica),
                    CONTROL_OPERATION,
                    [CONTROL_PING, self._replica, {}],
                )
            )
        except (CommunicationError, BindError):
            with self._lock:
                self._peer_refs.pop(replica, None)
            return False


class RmiClientPlatform(ClientPlatform):
    """Client-side Cactus QoS interface implementation on RMI."""

    def __init__(self, runtime: RmiRuntime, object_id: str):
        self._runtime = runtime
        self._object_id = object_id
        self._registry: RegistryClient = registry_client(runtime)
        self._lock = threading.Lock()
        self._refs: dict[int, RemoteRef] = {}
        self._failed: set[int] = set()
        self._num_servers: int | None = None

    def num_servers(self) -> int:
        with self._lock:
            if self._num_servers is not None:
                return self._num_servers
        prefix = f"{self._object_id}_CQoS_Skeleton_"
        count = len(self._registry.list(prefix))
        with self._lock:
            self._num_servers = max(count, 1)
            return self._num_servers

    def refresh(self) -> None:
        with self._lock:
            self._refs.clear()
            self._failed.clear()
            self._num_servers = None

    def bind(self, server: int) -> None:
        with self._lock:
            bound = server in self._refs
            self._failed.discard(server)
        if bound:
            return
        ref = self._registry.lookup(rmi_skeleton_name(self._object_id, server))
        with self._lock:
            self._refs[server] = ref

    def server_status(self, server: int) -> bool:
        with self._lock:
            return server not in self._failed

    def probe(self, server: int) -> bool:
        """Active liveness check via the skeleton's control ping."""
        try:
            self.bind(server)
            with self._lock:
                ref = self._refs[server]
            alive = bool(
                self._runtime.call(ref, CONTROL_OPERATION, [CONTROL_PING, 0, {}])
            )
        except (CommunicationError, BindError):
            alive = False
        if not alive:
            with self._lock:
                self._failed.add(server)
                self._refs.pop(server, None)
        return alive

    def invoke_server(self, server: int, request: Request) -> Any:
        self.bind(server)
        with self._lock:
            ref = self._refs[server]
        try:
            return self._runtime.call(
                ref,
                request.operation,
                request.get_params(),
                context=dict(request.piggyback),
            )
        except ServerFailedError:
            # The host is down: remember it so server_status() reports it.
            with self._lock:
                self._failed.add(server)
                self._refs.pop(server, None)
            raise
        except CommunicationError:
            # Transient (loss, partition, reset): drop the binding so the
            # next attempt reconnects, but do not mark the replica failed.
            with self._lock:
                self._refs.pop(server, None)
            raise


def install_rmi_replica(
    runtime: RmiRuntime,
    object_id: str,
    replica: int,
    servant: Any,
    interface: InterfaceDef,
    cactus_server_factory=None,
    total_replicas: int = 1,
) -> CqosSkeleton:
    """Install the CQoS server side for one replica on an RMI runtime.

    Exports the generic skeleton proxy and registers it under the paper's
    ``"OID_CQoS_Skeleton_i"`` convention.  ``cactus_server_factory`` as in
    the CORBA adapter; ``None`` yields a pass-through skeleton.
    """
    platform = RmiServerPlatform(
        runtime, object_id, replica, servant, interface, total_replicas=total_replicas
    )
    cactus_server: CactusServer | None = None
    if cactus_server_factory is not None:
        cactus_server = cactus_server_factory(platform)
    skeleton = CqosSkeleton(object_id, platform, cactus_server)
    ref = runtime.export_generic(
        RmiCqosSkeletonServant(skeleton),
        object_id=rmi_skeleton_name(object_id, replica),
    )
    registry_client(runtime).rebind(rmi_skeleton_name(object_id, replica), ref)
    return skeleton
