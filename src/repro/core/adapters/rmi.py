"""CQoS on Java RMI (paper section 4.2) — the RMI codec for the kernel.

"Since Java no longer supports server side skeletons, we introduce [the]
CQoS skeleton as a proxy object … [that] export[s] only a generic invoke
method.  …  the skeleton for the i-th replica of object with identifier
OID registers with the Java naming service using name
'OID_CQoS_Skeleton_i'."

All request-lifecycle machinery lives in the shared invocation kernel
(:mod:`repro.core.platform`); this module supplies only the RMI codec
surface: the registry naming convention, registry lookup/enumeration, and
request conversion — the abstract request maps directly onto the generic
remote ``invoke`` call (no DII equivalent exists, which is why the RMI rows
of Table 1 show smaller conversion overheads).  The per-replica
:class:`RmiCqosSkeletonServant` (the simulated DSI) is the kernel's generic
skeleton servant unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.core.platform import (
    BaseClientPlatform,
    BaseServerPlatform,
    BaseSkeletonServant,
    rmi_skeleton_name,
    rmi_skeleton_prefix,
)
from repro.core.server import CactusServer
from repro.core.skeleton import CqosSkeleton
from repro.idl.compiler import InterfaceDef
from repro.orb.stubs import StaticSkeleton
from repro.rmi.registry import RegistryClient, registry_client
from repro.rmi.runtime import RemoteRef, RmiRuntime

__all__ = [
    "RmiClientPlatform",
    "RmiCqosSkeletonServant",
    "RmiServerPlatform",
    "install_rmi_replica",
    "rmi_skeleton_name",
    "rmi_skeleton_prefix",
]


class RmiCqosSkeletonServant(BaseSkeletonServant):
    """Generic remote object delivering every call to the skeleton core.

    The RMI analog of the DSI servant: ``invoke(method, arguments,
    context)`` regardless of which server method the client called — the
    kernel's generic entry point matches RMI's generic export directly.
    """


class _RmiRegistryMixin:
    """Shared RMI name resolution through the registry."""

    _runtime: RmiRuntime
    _registry: RegistryClient

    def _resolve(self, name: str) -> RemoteRef:
        return self._registry.lookup(name)

    def _list_names(self, prefix: str) -> list:
        return self._registry.list(prefix)

    def _send(self, endpoint: RemoteRef, operation: str, params: list, piggyback) -> Any:
        return self._runtime.call(
            endpoint, operation, params, context=dict(piggyback or {})
        )

    def _send_async(self, endpoint: RemoteRef, operation: str, params: list, piggyback):
        return self._runtime.call_async(
            endpoint, operation, params, context=dict(piggyback or {})
        )


class RmiServerPlatform(_RmiRegistryMixin, BaseServerPlatform):
    """Server-side Cactus QoS interface implementation on RMI."""

    def __init__(
        self,
        runtime: RmiRuntime,
        object_id: str,
        replica: int,
        servant: Any,
        interface: InterfaceDef,
        total_replicas: int = 1,
        observers=None,
        router=None,
    ):
        self._runtime = runtime
        self._registry = registry_client(runtime)
        super().__init__(
            object_id,
            replica,
            StaticSkeleton(servant, interface, runtime.compiled),
            total_replicas=total_replicas,
            observers=observers,
            router=router,
        )

    def _peer_name(self, replica: int) -> str:
        return rmi_skeleton_name(self.object_id, replica)


class RmiClientPlatform(_RmiRegistryMixin, BaseClientPlatform):
    """Client-side Cactus QoS interface implementation on RMI."""

    def __init__(self, runtime: RmiRuntime, object_id: str, observers=None, router=None):
        self._runtime = runtime
        self._registry = registry_client(runtime)
        super().__init__(object_id, observers=observers, router=router)

    def _replica_name(self, replica: int) -> str:
        return rmi_skeleton_name(self.object_id, replica)

    def _replica_prefix(self) -> str:
        return rmi_skeleton_prefix(self.object_id)


def install_rmi_replica(
    runtime: RmiRuntime,
    object_id: str,
    replica: int,
    servant: Any,
    interface: InterfaceDef,
    cactus_server_factory=None,
    total_replicas: int = 1,
    observers=None,
    router=None,
) -> CqosSkeleton:
    """Install the CQoS server side for one replica on an RMI runtime.

    Exports the generic skeleton proxy and registers it under the paper's
    ``"OID_CQoS_Skeleton_i"`` convention.  ``cactus_server_factory`` as in
    the CORBA adapter; ``None`` yields a pass-through skeleton.
    ``observers`` as in :func:`~repro.core.adapters.corba.install_corba_replica`.
    """
    platform = RmiServerPlatform(
        runtime,
        object_id,
        replica,
        servant,
        interface,
        total_replicas=total_replicas,
        observers=observers,
        router=router,
    )
    cactus_server: CactusServer | None = None
    if cactus_server_factory is not None:
        cactus_server = cactus_server_factory(platform)
    skeleton = CqosSkeleton(object_id, platform, cactus_server)
    ref = runtime.export_generic(
        RmiCqosSkeletonServant(skeleton, observers=observers),
        object_id=rmi_skeleton_name(object_id, replica),
    )
    registry_client(runtime).rebind(rmi_skeleton_name(object_id, replica), ref)
    return skeleton
