"""The abstract request: CQoS's platform-independent unit of work.

"The request is represented as a Java class, where the request parameters
are represented as a vector of Java objects.  This interface provides a set
of accessor methods to get and set parameters and return values.  …  The
request object also provides a field for piggybacking additional parameters
onto the request."  (paper, section 2.2)

One :class:`Request` instance exists per invocation on each side:

- the CQoS stub builds one from the client's method call; micro-protocols
  manipulate its parameter vector and piggyback dict; completion (result or
  failure) releases the client thread blocked in ``cactus_request()``;
- the CQoS skeleton rebuilds one from the incoming platform request;
  completion releases the middleware dispatch thread blocked in
  ``cactus_invoke()`` so the reply can be returned.

Replication support: per-replica outcomes accumulate as :class:`Reply`
records for the acceptance micro-protocols; ``attributes`` is a free-form
slot for micro-protocol request-local state (ordering marks, release flags).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.util.concurrency import CountDownLatch, DEFAULT_PRIORITY
from repro.util.errors import ReproError, TimeoutError_
from repro.util.ids import IdGenerator

# Well-known piggyback keys.
PB_REQUEST_ID = "cqos_request_id"
PB_CLIENT_ID = "cqos_client"
PB_PRIORITY = "cqos_priority"
PB_ENCRYPTED = "cqos_encrypted"
PB_SIGNATURE = "cqos_signature"
PB_FORWARDED = "cqos_forwarded"
#: Absolute deadline (seconds on the shared monotonic clock) after which
#: processing the request is wasted work.  Attached client-side by
#: DeadlineBudget; honoured server-side by DeadlineShed.  Within one process
#: every composite's RealClock shares the monotonic epoch; a multi-machine
#: deployment would carry a *relative* budget instead.
PB_DEADLINE = "cqos_deadline"
#: Send-attempt number (1 = first try), stamped by the retry micro-protocols
#: so servers and traces can distinguish retries from first sends.
PB_ATTEMPT = "cqos_attempt"
#: The last cache-invalidation epoch a ClientCache has observed, stamped on
#: requests so the server-side CacheInvalidator can piggyback only the
#: per-operation invalidations the client has not seen yet (reply direction).
PB_CACHE_EPOCH = "cqos_cache_epoch"
#: Reply-direction invalidation delta: ``[epoch, [operation, ...]]`` staged
#: by CacheInvalidator into ``Request.reply_piggyback``; ``[epoch, None]``
#: means "too far behind, flush everything".
PB_CACHE_INVALIDATE = "cqos_cache_invalidate"
#: The directory-view version the client routed this request with.  Only
#: stamped when the client's ShardRouter holds a sharded view, so unsharded
#: deployments keep byte-identical wire traffic.
PB_VIEW_VERSION = "cqos_view_version"
#: Reply-direction view delta staged by the skeleton when the client's
#: stamped view version is behind the server's: the piggyback pull path of
#: membership-driven view changes (bootstrap re-enumeration is the fallback).
PB_VIEW_DELTA = "cqos_view_delta"


@dataclass
class Reply:
    """The outcome of one invocation attempt on one server replica."""

    server: int
    value: Any = None
    exception: BaseException | None = None
    failed: bool = False  # True => communication-level failure

    @property
    def succeeded(self) -> bool:
        """True when the invocation reached the servant (even if it raised)."""
        return not self.failed

    @property
    def is_application_error(self) -> bool:
        return not self.failed and self.exception is not None


class Request:
    """One abstract invocation travelling through CQoS."""

    _ids = IdGenerator("req")

    def __init__(
        self,
        object_id: str,
        operation: str,
        params: list,
        piggyback: dict | None = None,
        request_id: str | None = None,
    ):
        self.request_id = request_id or Request._ids.next_id()
        self.object_id = object_id
        self.operation = operation
        self._params = list(params)
        self.piggyback: dict = dict(piggyback or {})
        #: Reply-direction piggyback: server micro-protocols stage entries
        #: here; the server composite envelopes them onto the return value
        #: and the client platform merges them back into its request copy.
        self.reply_piggyback: dict = {}
        #: Free-form micro-protocol request-local state.
        self.attributes: dict = {}
        #: Replica assigned by the assigner handler (1-based), if any.
        self.server: int | None = None

        self._lock = threading.Lock()
        #: Public mutex for micro-protocol critical sections on this request
        #: (e.g. encrypt-exactly-once under ActiveRep's concurrent sends).
        self.mutex = threading.RLock()
        self._latch = CountDownLatch(1)
        self._result: Any = None
        self._exception: BaseException | None = None
        self._completed = False
        self._replies: dict[int, Reply] = {}
        self._completion_callbacks: list = []

    # -- parameter vector accessors (the Cactus QoS interface surface) ------

    def get_params(self) -> list:
        """The parameter vector (live list; in-place mutation is allowed)."""
        return self._params

    def set_params(self, params: list) -> None:
        self._params = list(params)

    def get_param(self, index: int) -> Any:
        return self._params[index]

    def set_param(self, index: int, value: Any) -> None:
        self._params[index] = value

    @property
    def priority(self) -> int:
        """The request's scheduling priority (piggybacked; default 5)."""
        return int(self.piggyback.get(PB_PRIORITY, DEFAULT_PRIORITY))

    @priority.setter
    def priority(self, value: int) -> None:
        self.piggyback[PB_PRIORITY] = int(value)

    @property
    def client_id(self) -> str:
        return str(self.piggyback.get(PB_CLIENT_ID, ""))

    # -- deadline / attempt metadata (resilience micro-protocols) ------------

    @property
    def deadline(self) -> float | None:
        """Absolute monotonic deadline, or None when no budget is attached."""
        value = self.piggyback.get(PB_DEADLINE)
        return float(value) if value is not None else None

    @deadline.setter
    def deadline(self, value: float | None) -> None:
        if value is None:
            self.piggyback.pop(PB_DEADLINE, None)
        else:
            self.piggyback[PB_DEADLINE] = float(value)

    def remaining_budget(self, now: float) -> float | None:
        """Seconds left before the deadline at time ``now`` (None = no deadline)."""
        deadline = self.deadline
        return None if deadline is None else deadline - now

    def deadline_expired(self, now: float) -> bool:
        """True when a deadline is attached and already passed at ``now``."""
        deadline = self.deadline
        return deadline is not None and now >= deadline

    @property
    def attempt(self) -> int:
        """The send-attempt number (1-based; 1 when never retried)."""
        return int(self.piggyback.get(PB_ATTEMPT, 1))

    @attempt.setter
    def attempt(self, value: int) -> None:
        self.piggyback[PB_ATTEMPT] = int(value)

    # -- completion ----------------------------------------------------------

    def complete(self, value: Any) -> bool:
        """Complete with a result; returns False if already completed."""
        with self._lock:
            if self._completed:
                return False
            self._result = value
            self._completed = True
            callbacks, self._completion_callbacks = self._completion_callbacks, []
        self._latch.count_down()
        self._run_callbacks(callbacks)
        return True

    def fail(self, exception: BaseException) -> bool:
        """Complete with an exception; returns False if already completed."""
        with self._lock:
            if self._completed:
                return False
            self._exception = exception
            self._completed = True
            callbacks, self._completion_callbacks = self._completion_callbacks, []
        self._latch.count_down()
        self._run_callbacks(callbacks)
        return True

    def on_complete(self, callback) -> None:
        """Register ``callback(request)`` to fire exactly once on completion.

        Fires whichever way the request finishes — result, application
        exception, or fault — which makes it the airtight hook for
        resource-release bookkeeping (admission slots, in-flight counters):
        unlike an ``invokeReturn`` binding, it also covers requests that die
        mid-pipeline from a handler exception or a dispatch timeout.  If the
        request is already completed the callback runs immediately.
        Callback exceptions are swallowed (completion must never fail).
        """
        with self._lock:
            if not self._completed:
                self._completion_callbacks.append(callback)
                return
        self._run_callbacks([callback])

    def _run_callbacks(self, callbacks) -> None:
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - release hooks must not unwind
                pass

    def complete_from_reply(self, reply: Reply) -> bool:
        """Complete with a replica outcome (value, app error, or failure)."""
        if reply.failed:
            return self.fail(
                reply.exception
                or ReproError(f"invocation on server {reply.server} failed")
            )
        if reply.exception is not None:
            return self.fail(reply.exception)
        return self.complete(reply.value)

    @property
    def completed(self) -> bool:
        with self._lock:
            return self._completed

    def get_result(self) -> Any:
        with self._lock:
            return self._result

    def set_result(self, value: Any) -> None:
        """Overwrite the stored result (server-side reply manipulation).

        Legal only before completion — the reply-encryption handler runs on
        ``invokeReturn``, i.e. before the skeleton sends the reply.
        """
        with self._lock:
            if self._completed:
                raise ReproError("cannot set_result on a completed request")
            self._result = value

    @property
    def stored_result(self) -> Any:
        """The result staged so far (server side, pre-completion)."""
        with self._lock:
            return self._result

    def wait(self, timeout: float | None = None) -> Any:
        """Block until completion; return the result or raise the failure."""
        if not self._latch.wait(timeout):
            raise TimeoutError_(
                f"request {self.request_id} ({self.operation}) did not complete"
            )
        with self._lock:
            if self._exception is not None:
                raise self._exception
            return self._result

    # -- per-replica outcomes -------------------------------------------------

    def add_reply(self, reply: Reply) -> None:
        with self._lock:
            self._replies[reply.server] = reply

    def replies(self) -> dict[int, Reply]:
        with self._lock:
            return dict(self._replies)

    def reply_count(self) -> int:
        with self._lock:
            return len(self._replies)

    # -- wire form (replica forwarding) -----------------------------------------

    def to_wire(self) -> dict:
        return {
            "request_id": self.request_id,
            "object_id": self.object_id,
            "operation": self.operation,
            "params": list(self._params),
            "piggyback": dict(self.piggyback),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Request":
        return cls(
            object_id=wire["object_id"],
            operation=wire["operation"],
            params=list(wire["params"]),
            piggyback=dict(wire["piggyback"]),
            request_id=wire["request_id"],
        )

    def __repr__(self) -> str:
        return (
            f"Request({self.request_id}, {self.object_id}.{self.operation}, "
            f"server={self.server}, completed={self.completed})"
        )
