"""Consistent-hash ring of virtual nodes over server groups.

Each group contributes ``vnodes`` points on a 64-bit ring; a key is owned
by the first point clockwise from its hash.  Virtual nodes smooth the
arc-length distribution so groups own near-equal key fractions, and
consistency means membership changes remap only the keys on the affected
arcs — the property that bounds how many objects a group join/leave moves.

The hash is BLAKE2b (stdlib, seeded-process independent): ring placement
must be identical in every process that ever computes it — clients,
servers, and the deployment all derive the same owner for the same key, so
ownership never needs to travel on the wire.

``CQOS_VNODES`` overrides the per-group virtual-node count (default 64).
"""

from __future__ import annotations

import hashlib
import os
from bisect import bisect_right
from typing import Iterable, Iterator

DEFAULT_VNODES = 64


def configured_vnodes() -> int:
    """The per-group virtual-node count (``CQOS_VNODES``, default 64)."""
    try:
        value = int(os.environ.get("CQOS_VNODES", DEFAULT_VNODES))
    except ValueError:
        return DEFAULT_VNODES
    return max(1, value)


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key`` (BLAKE2b-8)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Immutable consistent-hash ring mapping keys to group names."""

    __slots__ = ("_groups", "_points", "_owners", "_vnodes")

    def __init__(self, groups: Iterable[str], vnodes: int | None = None):
        self._vnodes = configured_vnodes() if vnodes is None else max(1, int(vnodes))
        self._groups = tuple(sorted(set(groups)))
        points: list[tuple[int, str]] = []
        for group in self._groups:
            for vnode in range(self._vnodes):
                points.append((stable_hash(f"{group}#{vnode}"), group))
        points.sort()
        # Split columns once: bisect runs on the bare point array.
        self._points = tuple(point for point, _ in points)
        self._owners = tuple(owner for _, owner in points)

    # -- queries -------------------------------------------------------------

    @property
    def groups(self) -> tuple[str, ...]:
        return self._groups

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, group: str) -> bool:
        return group in self._groups

    def owner(self, key: str) -> str:
        """The group owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise ValueError("hash ring has no groups")
        index = bisect_right(self._points, stable_hash(key)) % len(self._points)
        return self._owners[index]

    def owners(self, key: str, count: int) -> tuple[str, ...]:
        """Up to ``count`` *distinct* groups clockwise from ``key``.

        The successor-group walk used for fault-domain-spread placement:
        the owner group first, then each subsequent distinct group on the
        ring.  Fewer than ``count`` groups exist → all of them, owner first.
        """
        if not self._points:
            raise ValueError("hash ring has no groups")
        found: list[str] = []
        start = bisect_right(self._points, stable_hash(key))
        total = len(self._points)
        for step in range(total):
            group = self._owners[(start + step) % total]
            if group not in found:
                found.append(group)
                if len(found) >= count:
                    break
        return tuple(found)

    def iter_points(self) -> Iterator[tuple[int, str]]:
        return iter(zip(self._points, self._owners))

    # -- immutable updates ----------------------------------------------------

    def with_group(self, group: str) -> "HashRing":
        if group in self._groups:
            return self
        return HashRing((*self._groups, group), vnodes=self._vnodes)

    def without_group(self, group: str) -> "HashRing":
        if group not in self._groups:
            return self
        return HashRing(
            (name for name in self._groups if name != group), vnodes=self._vnodes
        )

    def __repr__(self) -> str:
        return f"HashRing(groups={self._groups!r}, vnodes={self._vnodes})"
