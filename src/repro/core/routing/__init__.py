"""The partitioned directory: consistent-hash routing over server groups.

The paper's prototype finds an object's replicas by naming-convention
prefix scans — each client platform enumerates ``"<OID>/replica-"`` in the
bootstrap service and counts the hits.  That is fine for the paper's
3-replica experiments and fatal for thousands of objects: every client
pays one enumeration per object, the enumeration cost grows with the whole
name table, and nothing relates *where* an object's replicas live to any
policy (RAFDA's argument: distribution policy must be separable from
application logic and changeable per object).

This package is the replacement routing layer, platform-agnostic by
construction (importing an adapter package here is a layering violation,
machine-checked by ``tools/check_layering.py``):

- :class:`HashRing` — a consistent-hash ring of virtual nodes over server
  *groups* (``CQOS_VNODES`` per group); adding or removing one group remaps
  only the keys that land on its arcs;
- :class:`DirectoryView` / :class:`ServerGroup` / :class:`Placement` — one
  immutable, versioned snapshot of the whole object space (groups, ring,
  failure knowledge, per-object placement policies).  Views are
  copy-on-write: every change produces a new snapshot with a bumped
  version, so readers are lock-free — the same discipline as the compiled
  event-dispatch binding snapshots;
- :class:`ShardRouter` — the mutable cell holding the current view.  The
  invocation kernel consults it on every bind/rebind; in-flight
  invocations pin the view they routed with (:meth:`ShardRouter.lease`),
  which is what makes live rebalancing drop zero requests: old leases
  drain against the old view while new binds route to the new owner;
- :class:`ReplicaDirectory` — the kernel's replica-number → endpoint
  directory, now router-aware: replica counts and ids come from the view
  when one is present (one view serves thousands of objects), with the
  historical prefix-enumeration as the bootstrap fallback for unsharded
  deployments — whose naming entries and wire bytes stay byte-identical.
"""

from repro.core.routing.directory import ReplicaDirectory
from repro.core.routing.ring import DEFAULT_VNODES, HashRing, stable_hash
from repro.core.routing.router import ShardRouter, ViewLease
from repro.core.routing.view import (
    PLACEMENT_POLICIES,
    DirectoryView,
    Placement,
    ServerGroup,
)

__all__ = [
    "DEFAULT_VNODES",
    "DirectoryView",
    "HashRing",
    "PLACEMENT_POLICIES",
    "Placement",
    "ReplicaDirectory",
    "ServerGroup",
    "ShardRouter",
    "ViewLease",
    "stable_hash",
]
