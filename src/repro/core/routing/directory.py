"""Replica-number → endpoint directory (router-aware).

Historically this class lived in :mod:`repro.core.platform` and counted an
object's replicas by bootstrap prefix enumeration — one ``list_names``
round-trip per object, with cost proportional to the whole name table.
It now belongs to the routing layer: when a :class:`ShardRouter` is
attached, replica counts and ids come straight from the current
:class:`~repro.core.routing.view.DirectoryView` (one shared view answers
for thousands of objects), and the prefix scan survives only as the
bootstrap fallback for unsharded deployments, whose naming entries and
observable behaviour stay exactly as before.

The directory consults the router on every bind/rebind/endpoint/count: a
view-version change invalidates cached endpoints, failure marks, and the
cached count in one step — that *is* the client-side rebind of a
membership change or shard handoff, after which endpoints lazily
re-resolve through the (possibly re-registered) naming entries.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.util.errors import BindError, CommunicationError, ServerFailedError


def _fault_action(error: BaseException | None) -> str:
    # Imported lazily to keep directory ↔ platform import order acyclic;
    # repro.core.platform re-exports this class for its historical home.
    from repro.core.platform import fault_action

    return fault_action(error)


class ReplicaDirectory:
    """Replica-number → endpoint directory with lazy binding and liveness.

    "The interface allows the server replicas to be referred to by numbers
    (1..N) rather than by application or middleware specific identifiers."
    The directory owns that mapping for one target object: the platform's
    naming convention (``name_for``) formats the per-replica name, the
    resolver turns the name into an opaque endpoint (IOR reference, remote
    ref, HTTP address pair), and the directory caches endpoints and tracks
    lock-guarded failure marks.

    Replica discovery is two-tier: a sharded :class:`ShardRouter` view when
    one is attached (``router=``/``object_id=``), prefix enumeration
    otherwise.  Resolution failures that are not communication errors are
    normalized to :class:`~repro.util.errors.BindError` so ``bind()`` has
    one observable failure mode on every platform.
    """

    def __init__(
        self,
        name_for: Callable[[int], str],
        resolve: Callable[[str], Any],
        list_names: Callable[[str], list] | None = None,
        prefix: str | None = None,
        router: Any = None,
        object_id: str | None = None,
    ):
        self._name_for = name_for
        self._resolve = resolve
        self._list_names = list_names
        self._prefix = prefix
        self._router = router
        self._object_id = object_id
        self._lock = threading.Lock()
        self._endpoints: dict[int, Any] = {}
        self._failed: set[int] = set()
        self._count: int | None = None
        self._seen_version = router.view().version if router is not None else 0

    # -- router consultation ---------------------------------------------------

    @property
    def router(self) -> Any:
        return self._router

    def _routed(self) -> bool:
        return (
            self._router is not None
            and self._object_id is not None
            and self._router.view().sharded
        )

    def _sync_view(self) -> None:
        """Adopt a newer directory view: drop every stale binding.

        The lock-free fast path is one version compare; a version change
        clears cached endpoints, failure marks, and the cached count so the
        next use rebinds through the (possibly re-registered) naming
        entries — this is the client half of a shard handoff or a
        membership-driven view change.
        """
        router = self._router
        if router is None:
            return
        version = router.view().version
        if version == self._seen_version:
            return
        with self._lock:
            if version == self._seen_version:
                return
            self._endpoints.clear()
            self._failed.clear()
            self._count = None
            self._seen_version = version
        # Seed failure marks from the adopted view: replicas hosted on a
        # member the view reports failed start out marked, so status() and
        # failover agree with the membership the view carries.
        if self._routed():
            view = router.view()
            if view.failed:
                failed_logicals = [
                    logical
                    for logical, member in view.assignments(self._object_id)
                    if member in view.failed
                ]
                if failed_logicals:
                    with self._lock:
                        self._failed.update(failed_logicals)

    def _resolve_name(self, replica: int) -> Any:
        name = self._name_for(replica)
        try:
            return self._resolve(name)
        except CommunicationError:
            raise  # the bootstrap service itself is unreachable
        except BindError:
            raise
        except Exception as exc:  # noqa: BLE001 - platform-specific "not bound"
            raise BindError(f"cannot resolve {name!r}: {exc}") from exc

    def bind(self, replica: int) -> None:
        """(Re-)bind ``replica``: clear its failure mark, resolve lazily.

        Also the recovery path: "the bind() operation can also be used to
        rebind to a failed server after it has recovered."
        """
        self._sync_view()
        with self._lock:
            bound = replica in self._endpoints
            self._failed.discard(replica)  # rebinding clears failure knowledge
        if bound:
            return
        endpoint = self._resolve_name(replica)
        with self._lock:
            self._endpoints[replica] = endpoint

    def endpoint(self, replica: int) -> Any:
        """The (lazily bound) endpoint for ``replica``."""
        self._sync_view()
        with self._lock:
            endpoint = self._endpoints.get(replica)
        if endpoint is not None:
            return endpoint
        endpoint = self._resolve_name(replica)
        with self._lock:
            self._endpoints[replica] = endpoint
            return self._endpoints[replica]

    def drop(self, replica: int) -> None:
        """Forget the cached endpoint (next use re-resolves/reconnects)."""
        with self._lock:
            self._endpoints.pop(replica, None)

    def mark_failed(self, replica: int) -> None:
        """Record the replica as down and drop its binding."""
        with self._lock:
            self._failed.add(replica)
            self._endpoints.pop(replica, None)

    def status(self, replica: int) -> bool:
        """True while the replica is not marked failed (local knowledge)."""
        self._sync_view()
        with self._lock:
            return replica not in self._failed

    def failed_replicas(self) -> set[int]:
        with self._lock:
            return set(self._failed)

    def apply_fault(self, replica: int, error: BaseException) -> str:
        """React to a platform fault per the shared taxonomy; returns the action."""
        action = _fault_action(error)
        if action == "mark_failed":
            self.mark_failed(replica)
        elif action == "drop_binding":
            self.drop(replica)
        return action

    def count(self) -> int:
        """Replica count: from the routed view, else by prefix enumeration."""
        self._sync_view()
        if self._routed():
            return len(self._router.route(self._object_id))
        if self._list_names is None or self._prefix is None:
            raise BindError("directory was built without an enumeration strategy")
        with self._lock:
            if self._count is not None:
                return self._count
        found = len(self._list_names(self._prefix))
        with self._lock:
            self._count = max(found, 1)
            return self._count

    def replica_ids(self) -> tuple[int, ...]:
        """The logical replica numbers of the target object.

        Contiguous ``1..N`` for unsharded deployments; the view's placement
        ids (legitimately sparse) when routed.  Failure detectors must probe
        *these*, not ``range(1, count+1)``.
        """
        self._sync_view()
        if self._routed():
            return self._router.route(self._object_id)
        return tuple(range(1, self.count() + 1))

    def refresh(self) -> None:
        """Drop every binding, failure mark, and the cached count.

        This is the bootstrap re-enumeration fallback: the next use
        re-counts (or re-routes) and re-resolves from the naming service.
        """
        with self._lock:
            self._endpoints.clear()
            self._failed.clear()
            self._count = None
