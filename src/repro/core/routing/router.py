"""The shard router: one mutable cell of routing knowledge per process side.

The router holds the current :class:`~repro.core.routing.view.DirectoryView`
and is what the invocation kernel consults on every bind/rebind:

- **reads are lock-free** — ``view()`` is one attribute read of an
  immutable snapshot; ``route()`` resolves an object's logical replica
  numbers against it;
- **writers are serialized** — ``apply()`` installs a strictly
  newer-versioned view (view versions are monotonic by construction; a
  regression is a programming error and raises);
- **in-flight invocations pin their view** — ``lease()`` returns a
  context-managed :class:`ViewLease` counting the invocation against the
  version it routed with.  During a rebalance the old version's lease
  count drains to zero while new leases land on the new view; the drain
  callbacks are how the deployment knows the old owner may retire.  This
  is the zero-dropped-requests discipline;
- **clients pull deltas via piggyback** — a server stamps
  ``delta_since(client_version)`` onto the reply envelope; the client
  feeds it to ``apply_delta()``.  A delta that cannot be applied (history
  evicted, base version mismatch without a full view) returns ``False``
  and the caller falls back to bootstrap re-enumeration.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.core.routing.view import DirectoryView

#: How many past view wire-forms the router keeps for incremental deltas.
DELTA_HISTORY = 32


class ViewLease:
    """A pinned view for one in-flight invocation (context manager)."""

    __slots__ = ("router", "view", "_released")

    def __init__(self, router: "ShardRouter", view: DirectoryView):
        self.router = router
        self.view = view
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.router._release(self.view.version)

    def __enter__(self) -> "ViewLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ShardRouter:
    """Holds the current directory view; readers lock-free, writers locked."""

    def __init__(self, view: DirectoryView | None = None):
        self._view = view if view is not None else DirectoryView()
        self._lock = threading.Lock()
        self._inflight: dict[int, int] = {}
        self._drained: dict[int, list[Callable[[int], None]]] = {}
        self._history: dict[int, dict] = {self._view.version: self._view.to_wire()}
        self._subscribers: list[Callable[[DirectoryView], None]] = []
        self._stats = {
            "routes": 0,
            "view_changes": 0,
            "deltas_served": 0,
            "deltas_applied": 0,
            "delta_fallbacks": 0,
            "leases": 0,
        }

    # -- lock-free read side ---------------------------------------------------

    def view(self) -> DirectoryView:
        """The current immutable view (one attribute read, no lock)."""
        return self._view

    @property
    def sharded(self) -> bool:
        return self._view.sharded

    def route(self, object_id: str) -> tuple[int, ...]:
        """The logical replica numbers serving ``object_id`` right now."""
        view = self._view
        self._stats["routes"] += 1
        return view.replicas_for(object_id)

    def live_replicas(self, object_id: str) -> tuple[int, ...]:
        """``route()`` minus replicas hosted on failed members (may be empty)."""
        view = self._view
        if not view.sharded:
            return view.replicas_for(object_id)
        failed = view.failed
        return tuple(
            logical
            for logical, member in view.assignments(object_id)
            if member not in failed
        )

    # -- leases (in-flight pinning) --------------------------------------------

    def lease(self) -> ViewLease:
        """Pin the current view for one in-flight invocation."""
        with self._lock:
            view = self._view
            self._inflight[view.version] = self._inflight.get(view.version, 0) + 1
            self._stats["leases"] += 1
        return ViewLease(self, view)

    def _release(self, version: int) -> None:
        callbacks: list[Callable[[int], None]] = []
        with self._lock:
            count = self._inflight.get(version, 0) - 1
            if count > 0:
                self._inflight[version] = count
            else:
                self._inflight.pop(version, None)
                if version < self._view.version:
                    callbacks = self._drained.pop(version, [])
        for callback in callbacks:
            callback(version)

    def inflight(self, version: int | None = None) -> int:
        """Lease count for ``version`` (or every retired version when None)."""
        with self._lock:
            if version is not None:
                return self._inflight.get(version, 0)
            current = self._view.version
            return sum(
                count for v, count in self._inflight.items() if v < current
            )

    def on_drained(self, version: int, callback: Callable[[int], None]) -> None:
        """Run ``callback(version)`` when the retired ``version`` has no
        leases left; immediate when it is already drained (or still current —
        then it fires on the retirement that drains it)."""
        with self._lock:
            if version >= self._view.version or self._inflight.get(version, 0) > 0:
                self._drained.setdefault(version, []).append(callback)
                return
        callback(version)

    # -- write side ------------------------------------------------------------

    def apply(self, view: DirectoryView) -> DirectoryView:
        """Install a strictly newer view; returns it.

        Version regressions raise — views are monotonic by construction
        (every builder bumps), so an older version here means two writers
        raced outside the router, which is a bug to surface, not mask.
        """
        callbacks: list[tuple[Callable[[int], None], int]] = []
        with self._lock:
            current = self._view
            if view.version <= current.version:
                raise ValueError(
                    f"view version must increase (current {current.version}, "
                    f"got {view.version})"
                )
            self._view = view
            self._stats["view_changes"] += 1
            self._history[view.version] = view.to_wire()
            while len(self._history) > DELTA_HISTORY:
                del self._history[min(self._history)]
            # Versions retired with no leases drain immediately.
            for version, waiters in list(self._drained.items()):
                if version < view.version and self._inflight.get(version, 0) == 0:
                    del self._drained[version]
                    callbacks.extend((callback, version) for callback in waiters)
            subscribers = list(self._subscribers)
        for callback, version in callbacks:
            callback(version)
        for subscriber in subscribers:
            subscriber(view)
        return view

    def subscribe(self, callback: Callable[[DirectoryView], None]) -> None:
        """Run ``callback(new_view)`` after every view change."""
        with self._lock:
            self._subscribers.append(callback)

    def apply_membership_change(self, failed: Iterable[int]) -> DirectoryView:
        """Record the failure detector's new failed set (bumps the version)."""
        with self._lock:
            current = self._view
        updated = current.with_failed(failed)
        if updated is current:
            return current
        return self.apply(updated)

    # -- piggyback deltas --------------------------------------------------------

    def delta_since(self, version: int) -> dict | None:
        """The wire delta bringing a client at ``version`` current, or None."""
        view = self._view
        if version >= view.version:
            return None
        with self._lock:
            base = self._history.get(version)
            current_wire = self._history.get(view.version) or view.to_wire()
            self._stats["deltas_served"] += 1
        if base is None:
            # History evicted: ship the full view.
            return {"from": version, "to": view.version, "view": current_wire}
        changes = {
            key: value
            for key, value in current_wire.items()
            if key != "version" and base.get(key) != value
        }
        return {"from": version, "to": view.version, "changes": changes}

    def apply_delta(self, delta: dict) -> bool:
        """Apply a piggyback-pulled delta; False → fall back to bootstrap.

        Stale deltas (``to`` not newer than the current version) are
        swallowed successfully — replies may arrive reordered.
        """
        with self._lock:
            current = self._view
        to_version = int(delta["to"])
        if to_version <= current.version:
            return True
        if "view" in delta:
            new_view = DirectoryView.from_wire(delta["view"])
        elif int(delta["from"]) == current.version:
            wire = current.to_wire()
            wire.update(delta["changes"])
            wire["version"] = to_version
            new_view = DirectoryView.from_wire(wire)
        else:
            self._stats["delta_fallbacks"] += 1
            return False
        try:
            self.apply(new_view)
        except ValueError:
            return True  # lost a race to a newer view — still current
        self._stats["deltas_applied"] += 1
        return True

    # -- stats -------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            return dict(self._stats, version=self._view.version)
