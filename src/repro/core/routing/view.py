"""Versioned immutable directory views: the unit of routing knowledge.

A :class:`DirectoryView` is one copy-on-write snapshot of the whole object
space: the server groups and their members, the consistent-hash ring over
the groups, the failed-member set the failure detector last reported, and
the per-object :class:`Placement` policies.  Every mutation returns a new
view with ``version + 1`` — readers (the invocation hot path) take one
attribute read and never a lock, the same discipline as the compiled
event-dispatch binding snapshots.

Placement resolves an object id to ``(logical_replica, member)`` pairs.
The *logical* replica numbers are what the QoS layer sees (the paper's
"replicas referred to by numbers 1..N"); the *member* is the physical
server slot the deployment mounts the replica on.  Clients never need the
member — the bootstrap naming entry ``"<OID>/replica-<i>"`` keeps mapping
logical numbers to endpoints, which is why sharding changes neither the
naming conventions nor a single wire byte for unsharded deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.routing.ring import HashRing, stable_hash
from repro.util.errors import ConfigurationError

#: Placement policies:
#: - ``"ring"``    — all replicas packed into the owner group (overflowing
#:   clockwise into successor groups when the owner is too small): minimal
#:   inter-group traffic, one group failure can take the whole object;
#: - ``"spread"``  — one replica per distinct group walking clockwise from
#:   the owner: fault-domain isolation at the cost of cross-group hops;
#: - ``"pinned"``  — replicas on explicitly named groups, for objects with
#:   data-locality or jurisdiction constraints the ring must not override.
PLACEMENT_POLICIES = ("ring", "spread", "pinned")


@dataclass(frozen=True)
class Placement:
    """Per-object distribution policy (a QoS attribute, RAFDA-style)."""

    replication_factor: int = 1
    policy: str = "ring"
    #: Target groups for ``policy="pinned"`` (must be empty otherwise).
    groups: tuple[str, ...] = ()
    #: Optional explicit logical replica numbers (sparse id spaces legal);
    #: empty means the contiguous ``1..replication_factor``.
    logical_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in PLACEMENT_POLICIES:
            raise ConfigurationError(
                f"placement policy must be one of {PLACEMENT_POLICIES}, "
                f"not {self.policy!r}"
            )
        if self.replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")
        if self.policy == "pinned" and not self.groups:
            raise ConfigurationError("pinned placement requires target groups")
        if self.policy != "pinned" and self.groups:
            raise ConfigurationError(
                f"placement groups are only legal with policy='pinned' "
                f"(got policy={self.policy!r})"
            )
        if self.logical_ids and len(self.logical_ids) != self.replication_factor:
            raise ConfigurationError(
                "logical_ids must supply exactly replication_factor ids"
            )
        if len(set(self.logical_ids)) != len(self.logical_ids):
            raise ConfigurationError("logical_ids must be distinct")

    def ids(self) -> tuple[int, ...]:
        """The logical replica numbers this placement produces."""
        if self.logical_ids:
            return self.logical_ids
        return tuple(range(1, self.replication_factor + 1))

    def to_wire(self) -> list:
        return [
            self.replication_factor,
            self.policy,
            list(self.groups),
            list(self.logical_ids),
        ]

    @classmethod
    def from_wire(cls, wire: list) -> "Placement":
        return cls(
            replication_factor=int(wire[0]),
            policy=str(wire[1]),
            groups=tuple(wire[2]),
            logical_ids=tuple(int(i) for i in wire[3]),
        )


@dataclass(frozen=True)
class ServerGroup:
    """One named group of physical server members (global member numbers)."""

    name: str
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError(f"server group {self.name!r} has no members")
        if len(set(self.members)) != len(self.members):
            raise ConfigurationError(f"server group {self.name!r} repeats members")


@dataclass(frozen=True)
class DirectoryView:
    """One immutable snapshot of the sharded object space."""

    version: int = 0
    groups: tuple[ServerGroup, ...] = ()
    vnodes: int | None = None
    failed: frozenset[int] = frozenset()
    default_placement: Placement = Placement()
    placements: Mapping[str, Placement] = field(default_factory=dict)
    ring: HashRing = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        names = [group.name for group in self.groups]
        if len(set(names)) != len(names):
            raise ConfigurationError("server group names must be unique")
        seen: set[int] = set()
        for group in self.groups:
            overlap = seen.intersection(group.members)
            if overlap:
                raise ConfigurationError(
                    f"members {sorted(overlap)} appear in more than one group"
                )
            seen.update(group.members)
        object.__setattr__(self, "ring", HashRing(names, vnodes=self.vnodes))

    # -- predicates -----------------------------------------------------------

    @property
    def sharded(self) -> bool:
        """True when this view actually partitions an object space."""
        return bool(self.groups)

    def group(self, name: str) -> ServerGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(name)

    def members(self) -> tuple[int, ...]:
        out: list[int] = []
        for group in self.groups:
            out.extend(group.members)
        return tuple(out)

    def placement_for(self, object_id: str) -> Placement:
        return self.placements.get(object_id, self.default_placement)

    # -- placement resolution --------------------------------------------------

    def assignments(self, object_id: str) -> tuple[tuple[int, int], ...]:
        """Resolve ``object_id`` to ``((logical_replica, member), ...)``.

        Deterministic in every process (the ring hash is seed-independent).
        Raises :class:`ConfigurationError` when the placement cannot be
        satisfied with distinct members (a replica pair sharing one member
        would collide on the member's per-object skeleton mount).
        """
        if not self.sharded:
            raise ConfigurationError("view has no server groups to place on")
        placement = self.placement_for(object_id)
        ids = placement.ids()
        members = self._select_members(object_id, placement, len(ids))
        return tuple(zip(ids, members))

    def _select_members(
        self, object_id: str, placement: Placement, needed: int
    ) -> tuple[int, ...]:
        key_hash = stable_hash(object_id)
        if placement.policy == "pinned":
            pool: list[int] = []
            for name in placement.groups:
                pool.extend(self.group(name).members)
        elif placement.policy == "spread":
            chosen: list[int] = []
            for name in self.ring.owners(object_id, needed):
                members = self.group(name).members
                chosen.append(members[key_hash % len(members)])
            pool = chosen
            # Too few groups: fall through to the overflow walk below.
            if len(pool) < needed:
                pool = self._ring_pool(object_id, exclude=set(pool))
                pool = chosen + pool
        else:  # "ring"
            pool = self._ring_pool(object_id)
        deduped: list[int] = []
        for member in pool:
            if member not in deduped:
                deduped.append(member)
        if len(deduped) < needed:
            raise ConfigurationError(
                f"placement of {object_id!r} needs {needed} distinct members "
                f"but only {len(deduped)} are reachable"
            )
        return tuple(deduped[:needed])

    def _ring_pool(self, object_id: str, exclude: set[int] | None = None) -> list[int]:
        """Members of the owner group, then successor groups, in ring order.

        Each group's member list is rotated by the key hash so rf=1
        objects spread across a group's members instead of piling onto the
        first one.  The rotation is *per group* on purpose: rotating the
        concatenated pool would make placement depend on the fleet-wide
        member count, remapping almost every object on any membership
        change and forfeiting the ring's minimal-remap property.
        """
        key_hash = stable_hash(object_id)
        pool: list[int] = []
        for name in self.ring.owners(object_id, len(self.ring)):
            members = self.group(name).members
            offset = key_hash % len(members)
            for member in members[offset:] + members[:offset]:
                if exclude is None or member not in exclude:
                    pool.append(member)
        return pool

    def replicas_for(self, object_id: str) -> tuple[int, ...]:
        """The logical replica numbers of ``object_id`` under this view."""
        return self.placement_for(object_id).ids()

    def owner_groups(self, object_id: str) -> tuple[str, ...]:
        """The distinct groups hosting ``object_id``, in assignment order."""
        member_group = {
            member: group.name for group in self.groups for member in group.members
        }
        names: list[str] = []
        for _, member in self.assignments(object_id):
            name = member_group[member]
            if name not in names:
                names.append(name)
        return tuple(names)

    # -- copy-on-write builders ------------------------------------------------

    def _evolve(self, **changes) -> "DirectoryView":
        return DirectoryView(
            version=changes.get("version", self.version + 1),
            groups=changes.get("groups", self.groups),
            vnodes=self.vnodes,
            failed=changes.get("failed", self.failed),
            default_placement=changes.get(
                "default_placement", self.default_placement
            ),
            placements=changes.get("placements", dict(self.placements)),
        )

    def with_group(self, group: ServerGroup) -> "DirectoryView":
        others = tuple(g for g in self.groups if g.name != group.name)
        return self._evolve(groups=(*others, group))

    def without_group(self, name: str) -> "DirectoryView":
        if all(group.name != name for group in self.groups):
            return self
        return self._evolve(
            groups=tuple(group for group in self.groups if group.name != name)
        )

    def with_placement(self, object_id: str, placement: Placement) -> "DirectoryView":
        placements = dict(self.placements)
        placements[object_id] = placement
        return self._evolve(placements=placements)

    def with_failed(self, failed: Iterable[int]) -> "DirectoryView":
        frozen = frozenset(failed)
        if frozen == self.failed:
            return self
        return self._evolve(failed=frozen)

    # -- wire form (piggyback view deltas) --------------------------------------

    def to_wire(self) -> dict:
        return {
            "version": self.version,
            "vnodes": self.vnodes,
            "groups": [[group.name, list(group.members)] for group in self.groups],
            "failed": sorted(self.failed),
            "default_placement": self.default_placement.to_wire(),
            "placements": {
                object_id: placement.to_wire()
                for object_id, placement in sorted(self.placements.items())
            },
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "DirectoryView":
        return cls(
            version=int(wire["version"]),
            vnodes=wire.get("vnodes"),
            groups=tuple(
                ServerGroup(str(name), tuple(int(m) for m in members))
                for name, members in wire["groups"]
            ),
            failed=frozenset(int(m) for m in wire.get("failed", ())),
            default_placement=Placement.from_wire(wire["default_placement"]),
            placements={
                str(object_id): Placement.from_wire(placement)
                for object_id, placement in wire.get("placements", {}).items()
            },
        )
