"""The CQoS stub: the client-side interceptor (platform-independent core).

"Client side interception is based on replacing the conventional stub used
by middleware platforms … by the CQoS stub.  When the client invokes a
method on this stub, it creates a request object and notifies the Cactus
client.  The stub then stores the pending requests until the call has been
completed."  (paper, section 2.2)

:func:`make_cqos_stub_class` generates a stub class from interface metadata
with exactly the original stub's application interface (one method per
operation), so a client is recompiled against it without source changes.

Pass-through mode (``cactus_client=None``) sends the abstract request
straight through the platform adapter to server 1.  That is Table 1's
"+CQoS stub" rung: interception and request conversion are paid, the Cactus
client is not.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.client import CactusClient
from repro.core.interfaces import ClientPlatform
from repro.core.platform import InvocationObserver, notify_observers
from repro.core.request import PB_CLIENT_ID, PB_PRIORITY, PB_REQUEST_ID, Request
from repro.idl.compiler import InterfaceDef
from repro.util.ids import unique_id


class CqosStub:
    """Base class for generated CQoS stubs."""

    def __init__(
        self,
        platform: ClientPlatform,
        object_id: str,
        cactus_client: CactusClient | None = None,
        client_id: str | None = None,
        priority: int | None = None,
        observers: list[InvocationObserver] | None = None,
    ):
        self._platform = platform
        self._object_id = object_id
        self._cactus_client = cactus_client
        self._client_id = client_id or unique_id("client")
        self._priority = priority
        self._observers: list[InvocationObserver] = list(observers or ())
        self._pending: dict[str, Request] = {}
        self._pending_lock = threading.Lock()

    def add_observer(self, observer: InvocationObserver) -> None:
        """Attach a kernel hook at the stub (application-call) boundary."""
        self._observers.append(observer)

    @property
    def client_id(self) -> str:
        return self._client_id

    @property
    def cactus_client(self) -> CactusClient | None:
        return self._cactus_client

    def pending_requests(self) -> list[Request]:
        """Requests currently in flight through this stub."""
        with self._pending_lock:
            return list(self._pending.values())

    def _make_request(self, operation: str, args: tuple) -> Request:
        piggyback: dict[str, Any] = {PB_CLIENT_ID: self._client_id}
        if self._priority is not None:
            piggyback[PB_PRIORITY] = self._priority
        request = Request(
            object_id=self._object_id,
            operation=operation,
            params=list(args),
            piggyback=piggyback,
        )
        # The id must travel: every replica's skeleton rebuilds the abstract
        # request under the *same* identity, or ordering announcements and
        # duplicate suppression could never correlate across replicas.
        request.piggyback[PB_REQUEST_ID] = request.request_id
        return request

    def _invoke_operation(self, operation: str, args: tuple) -> Any:
        request = self._make_request(operation, args)
        with self._pending_lock:
            self._pending[request.request_id] = request
        notify_observers(self._observers, "on_stub_request", request)
        error: BaseException | None = None
        try:
            if self._cactus_client is not None:
                return self._cactus_client.cactus_request(request)
            # Pass-through: convert and send without QoS processing.
            request.server = 1
            self._platform.bind(1)
            return self._platform.invoke_server(1, request)
        except BaseException as exc:
            error = exc
            raise
        finally:
            with self._pending_lock:
                self._pending.pop(request.request_id, None)
            notify_observers(self._observers, "on_stub_complete", request, error)


def _make_method(operation_name: str, arity: int):
    def method(self, *args):
        if len(args) != arity:
            raise TypeError(
                f"{operation_name}() takes {arity} arguments, got {len(args)}"
            )
        return self._invoke_operation(operation_name, args)

    method.__name__ = operation_name
    method.__doc__ = f"CQoS-intercepted operation {operation_name!r}."
    return method


def make_cqos_stub_class(interface: InterfaceDef) -> type:
    """Generate a CQoS stub class for ``interface``.

    The application interface is identical to the original stub: one method
    per server-object operation (including attribute accessors).
    """
    namespace: dict[str, Any] = {
        "__doc__": f"CQoS stub for IDL interface {interface.name}.",
        "__idl_interface__": interface,
    }
    for operation in interface.operations.values():
        namespace[operation.name] = _make_method(operation.name, len(operation.params))
    return type(f"{interface.simple_name}CqosStub", (CqosStub,), namespace)
