"""ShardSpace: a sharded object space over one CQoS deployment.

The deployment façade (:class:`~repro.core.service.CqosDeployment`) deploys
one object onto dedicated hosts; a :class:`ShardSpace` deploys *many*
objects onto a fixed fleet of server **groups** and lets the consistent-hash
ring decide which members host which object (see
:mod:`repro.core.routing`).  It owns the authoritative
:class:`~repro.core.routing.router.ShardRouter` — the single writer of
directory views — and performs live rebalancing with the zero-drop
discipline:

1. **install first** — the moved replica's skeleton is mounted on the new
   member (with the *same* servant instance — the stand-in for state
   transfer) and the bootstrap naming entry is rebound, so re-resolving
   clients immediately land on the new owner;
2. **flip the view** — ``router.apply(new_view)`` publishes the new
   assignment; clients pull it via reply piggyback;
3. **drain, then retire** — the old mount keeps serving until its
   server-side in-flight count reaches zero; only then is it retired, after
   which a stale client with a cached endpoint receives the wire-safe,
   retryable :class:`~repro.util.errors.ShardMovedError`, drops its
   binding, re-resolves, and lands on the new owner.

No request in flight at the flip is dropped, and no naming convention or
wire byte changes — the ring only decides *which hosts register* the
unchanged ``"OID/replica-i"`` style names.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.core.adapters.corba import install_corba_replica
from repro.core.adapters.http import install_http_replica
from repro.core.adapters.rmi import install_rmi_replica
from repro.core.platform import (
    InvocationObserver,
    corba_poa_name,
    corba_replica_name,
    http_replica_name,
    http_skeleton_object_id,
    rmi_skeleton_name,
)
from repro.core.routing import (
    DirectoryView,
    Placement,
    ServerGroup,
    ShardRouter,
)
from repro.core.service import CqosDeployment, MpConfig
from repro.core.skeleton import CqosSkeleton
from repro.idl.compiler import InterfaceDef
from repro.orb.naming import naming_client
from repro.rmi.registry import registry_client
from repro.rmi.runtime import GENERIC_INTERFACE, RemoteRef
from repro.util.errors import ConfigurationError


class _InflightObserver(InvocationObserver):
    """Counts requests between skeleton receive and reply/failure.

    The count is the drain signal of a handoff: an old mount may retire
    only once every request it accepted has produced its reply (or error),
    which is exactly when this counter returns to zero.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._count

    def on_skeleton_receive(self, object_id: str, operation: str, context: dict) -> None:
        with self._lock:
            self._count += 1

    def on_skeleton_reply(self, object_id: str, operation: str, value: Any) -> None:
        with self._lock:
            self._count -= 1

    def on_skeleton_failure(
        self, object_id: str, operation: str, error: BaseException
    ) -> None:
        with self._lock:
            self._count -= 1


@dataclass
class _Mount:
    """One installed replica mount: skeleton + drain counter + teardown."""

    object_id: str
    logical: int
    member: int
    skeleton: CqosSkeleton
    observer: _InflightObserver
    teardown: Callable[[], None]
    unbind: Callable[[], None]


@dataclass
class _ObjectSpec:
    """Everything needed to (re-)install an object's replicas."""

    servant_factory: Callable[[], Any]
    interface: InterfaceDef
    micro_protocols: MpConfig | str
    observers: tuple[Any, ...] = ()


class ShardSpace:
    """Many objects, few server groups, ring-decided placement."""

    def __init__(
        self,
        deployment: CqosDeployment,
        groups: Mapping[str, int],
        vnodes: int | None = None,
        default_placement: Placement | None = None,
        drain_timeout: float = 5.0,
    ):
        if not groups:
            raise ConfigurationError("a shard space needs at least one server group")
        self.deployment = deployment
        self.drain_timeout = drain_timeout
        self._lock = threading.RLock()
        self._members: dict[int, str] = {}  # member id -> host name
        self._infra: dict[int, dict] = {}  # member id -> platform objects
        self._next_member = 1
        server_groups = tuple(
            self._allocate_group(name, count) for name, count in groups.items()
        )
        self.router = ShardRouter(
            DirectoryView(
                version=1,
                groups=server_groups,
                vnodes=vnodes,
                default_placement=default_placement or Placement(),
            )
        )
        self._objects: dict[str, _ObjectSpec] = {}
        self._servants: dict[tuple[str, int], Any] = {}
        self._mounts: dict[tuple[str, int], _Mount] = {}
        self._retired: dict[int, list[_Mount]] = {}  # member -> retired mounts

    # -- membership of the fleet ---------------------------------------------

    def _allocate_group(self, name: str, count: int) -> ServerGroup:
        if count < 1:
            raise ConfigurationError(f"group {name!r} needs at least one member")
        ids = []
        for j in range(1, count + 1):
            member = self._next_member
            self._next_member += 1
            self._members[member] = f"shard-{name}-{j}"
            ids.append(member)
        return ServerGroup(name, tuple(ids))

    def member_host(self, member: int) -> str:
        host = self._members.get(member)
        if host is None:
            raise ConfigurationError(f"unknown shard member {member}")
        return host

    def view(self) -> DirectoryView:
        return self.router.view()

    # -- object lifecycle -----------------------------------------------------

    def add_object(
        self,
        object_id: str,
        servant_factory: Callable[[], Any],
        interface: InterfaceDef,
        placement: Placement | None = None,
        qos: Any = None,
        server_micro_protocols: MpConfig | str = "with_base",
        observers: Sequence[Any] | None = None,
    ) -> tuple[tuple[int, int], ...]:
        """Place one object into the space; returns its assignments.

        ``placement`` (or ``qos.placement``, when a sealed
        :class:`~repro.qos.builder.QosSpec` is given) selects the
        distribution policy; omitted, the space's default applies and the
        view is not even bumped.
        """
        if placement is None and qos is not None:
            placement = getattr(qos, "placement", None)
        with self._lock:
            if object_id in self._objects:
                raise ConfigurationError(f"object {object_id!r} already placed")
            spec = _ObjectSpec(
                servant_factory,
                interface,
                server_micro_protocols,
                tuple(observers or ()),
            )
            self._objects[object_id] = spec
            view = self.router.view()
            new_view = (
                view.with_placement(object_id, placement)
                if placement is not None
                else view
            )
            assigns = new_view.assignments(object_id)
            for logical, member in assigns:
                self._mounts[(object_id, logical)] = self._install(
                    object_id, logical, member, len(assigns)
                )
            if new_view is not view:
                self.router.apply(new_view)
            return assigns

    def _servant(self, object_id: str, logical: int) -> Any:
        key = (object_id, logical)
        servant = self._servants.get(key)
        if servant is None:
            servant = self._objects[object_id].servant_factory()
            self._servants[key] = servant
        return servant

    def _member_infra(self, member: int) -> dict:
        infra = self._infra.get(member)
        if infra is not None:
            return infra
        host = self.member_host(member)
        dep = self.deployment
        if dep.platform == "corba":
            infra = {"orb": dep._new_orb(host).start()}
        elif dep.platform == "rmi":
            infra = {"runtime": dep._new_rmi(host).start()}
        else:
            server = dep._new_http_server(host).start()
            client, registry = dep._http_registry_client(host)
            infra = {"server": server, "client": client, "registry": registry}
        self._infra[member] = infra
        return infra

    def _install(
        self, object_id: str, logical: int, member: int, total: int
    ) -> _Mount:
        # A member about to re-host a replica must first free the mount id
        # its *retired* incarnation of that replica still holds.
        for mount in list(self._retired.get(member, ())):
            if mount.object_id == object_id and mount.logical == logical:
                self._retired[member].remove(mount)
                self._safely(mount.teardown)
        spec = self._objects[object_id]
        servant = self._servant(object_id, logical)
        observer = _InflightObserver()
        observers = [observer, *spec.observers]
        factory = self.deployment._server_factory(
            object_id, logical, spec.micro_protocols, None
        )
        infra = self._member_infra(member)
        dep = self.deployment
        if dep.platform == "corba":
            orb = infra["orb"]
            skeleton = install_corba_replica(
                orb,
                object_id,
                logical,
                servant,
                spec.interface,
                cactus_server_factory=factory,
                total_replicas=total,
                observers=observers,
                router=self.router,
            )

            def teardown(orb=orb) -> None:
                poa = orb.find_poa(corba_poa_name(object_id, logical))
                if poa is not None:
                    poa.destroy()

            def unbind(orb=orb) -> None:
                naming_client(orb).unbind(corba_replica_name(object_id, logical))

        elif dep.platform == "rmi":
            runtime = infra["runtime"]
            skeleton = install_rmi_replica(
                runtime,
                object_id,
                logical,
                servant,
                spec.interface,
                cactus_server_factory=factory,
                total_replicas=total,
                observers=observers,
                router=self.router,
            )
            ref = RemoteRef(
                interface_name=GENERIC_INTERFACE,
                address=runtime.endpoint_address,
                object_id=rmi_skeleton_name(object_id, logical),
            )

            def teardown(runtime=runtime, ref=ref) -> None:
                runtime.unexport(ref)

            def unbind(runtime=runtime) -> None:
                registry_client(runtime).unbind(rmi_skeleton_name(object_id, logical))

        else:
            server, client, registry = (
                infra["server"],
                infra["client"],
                infra["registry"],
            )
            # Per-logical mount ids: one member may host several logical
            # replicas of one object across a handoff window.
            mount_id = f"{http_skeleton_object_id(object_id)}_{logical}"
            skeleton = install_http_replica(
                server,
                client,
                registry,
                object_id,
                logical,
                servant,
                spec.interface,
                cactus_server_factory=factory,
                total_replicas=total,
                observers=observers,
                router=self.router,
                skeleton_id=mount_id,
            )

            def teardown(server=server, mount_id=mount_id) -> None:
                server.unmount(mount_id)

            def unbind(registry=registry) -> None:
                registry.unbind(http_replica_name(object_id, logical))

        return _Mount(object_id, logical, member, skeleton, observer, teardown, unbind)

    # -- rebalancing -----------------------------------------------------------

    def add_group(self, name: str, members: int) -> None:
        """Grow the fleet by one group; minimally remaps and rebalances."""
        with self._lock:
            view = self.router.view()
            if any(group.name == name for group in view.groups):
                raise ConfigurationError(f"group {name!r} already exists")
            group = self._allocate_group(name, members)
            self._retarget(view.with_group(group))

    def remove_group(self, name: str) -> None:
        """Drain a group out of the fleet (its objects move clockwise)."""
        with self._lock:
            view = self.router.view()
            new_view = view.without_group(name)
            if new_view is view:
                raise ConfigurationError(f"no group named {name!r}")
            self._retarget(new_view)

    def set_placement(self, object_id: str, placement: Placement) -> None:
        """Change one object's placement policy live."""
        with self._lock:
            if object_id not in self._objects:
                raise ConfigurationError(f"object {object_id!r} is not placed")
            self._retarget(self.router.view().with_placement(object_id, placement))

    def apply_membership_change(self, failed) -> DirectoryView:
        """Record a failure-detector report in the authoritative view."""
        return self.router.apply_membership_change(failed)

    def _retarget(self, new_view: DirectoryView) -> None:
        """The zero-drop handoff: install → flip view → drain → retire."""
        old_view = self.router.view()
        moved: list[_Mount] = []
        dropped: list[_Mount] = []
        for object_id in self._objects:
            old = dict(old_view.assignments(object_id)) if old_view.sharded else {}
            new = dict(new_view.assignments(object_id))
            for logical, member in new.items():
                key = (object_id, logical)
                if old.get(logical) == member and key in self._mounts:
                    continue
                previous = self._mounts.get(key)
                self._mounts[key] = self._install(
                    object_id, logical, member, len(new)
                )
                if previous is not None:
                    moved.append(previous)
            for logical in old:
                if logical not in new:
                    previous = self._mounts.pop((object_id, logical), None)
                    if previous is not None:
                        dropped.append(previous)
        self.router.apply(new_view)
        for mount in moved + dropped:
            self._drain(mount)
            mount.skeleton.retire()
            self._retired.setdefault(mount.member, []).append(mount)
        # A dropped logical replica has no successor registration: remove
        # its naming entry so prefix enumeration stops finding it.
        for mount in dropped:
            self._safely(mount.unbind)

    def _drain(self, mount: _Mount) -> None:
        """Wait for the old mount's in-flight requests to complete."""
        deadline = time.monotonic() + self.drain_timeout
        while mount.observer.inflight > 0 and time.monotonic() < deadline:
            time.sleep(0.001)

    @staticmethod
    def _safely(action: Callable[[], None]) -> None:
        try:
            action()
        except Exception:  # noqa: BLE001 - cleanup on a crashed member is moot
            pass

    def inflight(self, object_id: str) -> int:
        """Total server-side in-flight count across the object's live mounts."""
        with self._lock:
            return sum(
                mount.observer.inflight
                for (oid, _), mount in self._mounts.items()
                if oid == object_id
            )

    # -- client side -----------------------------------------------------------

    def client_router(self) -> ShardRouter:
        """A fresh per-client router seeded with the current view.

        Clients own their router (their view advances via piggyback deltas
        at their own pace); only the space's authoritative router is ever
        written by rebalancing.
        """
        return ShardRouter(self.router.view())

    def client_stub(self, object_id: str, interface: InterfaceDef, **kwargs: Any):
        """A CQoS stub whose replica discovery goes through the ring."""
        return self.deployment.client_stub(
            object_id, interface, router=self.client_router(), **kwargs
        )

    # -- fault injection --------------------------------------------------------

    def crash_member(self, member: int) -> None:
        self.deployment.network.crash(self.member_host(member))

    def recover_member(self, member: int) -> None:
        self.deployment.network.recover(self.member_host(member))
