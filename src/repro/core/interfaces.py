"""The Cactus QoS interface: what the interceptors expose to the protocols.

"The Cactus QoS interface also provides [an] abstract representation of the
server objects … operations for creating connections with specific servers
(bind()), testing the status of a server (server_status()), and sending
requests to specific servers (invoke_server()).  …  the interface allows
the server replicas to be referred to by numbers (1..N) rather than by
application or middleware specific identifiers."  (paper, section 2.2)

Two abstract platforms implement it, one per side:

- :class:`ClientPlatform` — held by the Cactus client; the request
  lifecycle (lazy binding, liveness, probes, fault taxonomy) is
  implemented once in :class:`repro.core.platform.BaseClientPlatform`;
  the CORBA/RMI/HTTP adapters contribute only their codec (naming
  convention, lookup, request conversion — DII on CORBA);
- :class:`ServerPlatform` — held by the Cactus server; provides
  ``invoke_servant()`` (the native call into the real server object) and
  the replica control plane (``peer_invoke``) that PassiveRep and
  TotalOrder use, "identical techniques to establish connections between
  server object replicas" — shared in
  :class:`repro.core.platform.BaseServerPlatform`.

Everything in :mod:`repro.qos` is written against these two ABCs only —
that is the portability claim of the paper, made executable (and
machine-checked by ``tools/check_layering.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.core.request import Request


class ClientPlatform(ABC):
    """Client-side platform abstraction (replicas are numbers 1..N)."""

    @abstractmethod
    def num_servers(self) -> int:
        """How many server replicas exist for the target object."""

    @abstractmethod
    def bind(self, server: int) -> None:
        """(Re-)establish the connection to replica ``server``.

        Also the recovery path: "the bind() operation can also be used to
        rebind to a failed server after it has recovered."
        """

    @abstractmethod
    def server_status(self, server: int) -> bool:
        """True when replica ``server`` is believed to be running."""

    @abstractmethod
    def invoke_server(self, server: int, request: Request) -> Any:
        """Synchronously invoke ``request`` on replica ``server``.

        Returns the reply value.  Application-level exceptions (IDL
        ``raises`` values and remote system exceptions) are raised as-is;
        :class:`~repro.util.errors.CommunicationError` subtypes signal that
        the replica did not process the request.
        """


class ServerPlatform(ABC):
    """Server-side platform abstraction for one replica's Cactus server."""

    @abstractmethod
    def invoke_servant(self, request: Request) -> Any:
        """Invoke the real server object (native call) and return the value."""

    @abstractmethod
    def my_replica(self) -> int:
        """This replica's number (1-based; 1 is the conventional coordinator)."""

    @abstractmethod
    def num_replicas(self) -> int:
        """Total replicas of this object (including this one)."""

    @abstractmethod
    def peer_invoke(self, replica: int, kind: str, payload: dict) -> Any:
        """Send a control message to a peer replica's Cactus server.

        Delivered through the same middleware as client requests; surfaces
        at the peer as a blocking raise of event ``"control:<kind>"``.
        """

    @abstractmethod
    def peer_status(self, replica: int) -> bool:
        """True when the peer replica is believed to be running."""


@dataclass
class ControlMessage:
    """A replica control-plane message as seen by a control event handler."""

    kind: str
    payload: dict
    sender: int
    reply: Any = None
    #: Set True by a handler that consumed the message.
    handled: bool = field(default=False)

    def respond(self, value: Any) -> None:
        """Set the reply returned to the sending replica."""
        self.reply = value
        self.handled = True
