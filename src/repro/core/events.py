"""The CQoS event vocabulary (paper Figure 3).

Client-side events:

- ``newRequest(request)`` — raised by ``cactus_request()``;
- ``readyToSend(request, server)`` — the request is ready to go to replica
  ``server`` (1-based); raised once by the base assigner, or once per
  replica (asynchronously) by ActiveRep;
- ``invokeSuccess(request, server, reply)`` / ``invokeFailure(request,
  server, reply)`` — the invocation on ``server`` completed or failed.

Server-side events:

- ``newServerRequest(request)`` — raised by ``cactus_invoke()``;
- ``readyToInvoke(request)`` — the request may be passed to the servant;
- ``invokeReturn(request)`` — the servant invocation returned;
- ``requestReturned(request)`` — the reply has been sent back to the client
  side (raised by the service-differentiation micro-protocols).

``FIGURE3_EDGES`` is the exact causal-edge set of the paper's Figure 3; the
benchmark ``benchmarks/test_figure3_events.py`` checks the edges observed
from real invocations against it.
"""

EV_NEW_REQUEST = "newRequest"
EV_READY_TO_SEND = "readyToSend"
EV_INVOKE_SUCCESS = "invokeSuccess"
EV_INVOKE_FAILURE = "invokeFailure"

EV_NEW_SERVER_REQUEST = "newServerRequest"
EV_READY_TO_INVOKE = "readyToInvoke"
EV_INVOKE_RETURN = "invokeReturn"
EV_REQUEST_RETURNED = "requestReturned"

CLIENT_EVENTS = (
    EV_NEW_REQUEST,
    EV_READY_TO_SEND,
    EV_INVOKE_SUCCESS,
    EV_INVOKE_FAILURE,
)

SERVER_EVENTS = (
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_INVOKE,
    EV_INVOKE_RETURN,
    EV_REQUEST_RETURNED,
)

#: The causal arrows of the paper's Figure 3 (an arrow ev1 -> ev2 means a
#: handler processing ev1 raises ev2).
FIGURE3_CLIENT_EDGES = {
    (EV_NEW_REQUEST, EV_READY_TO_SEND),
    (EV_READY_TO_SEND, EV_INVOKE_SUCCESS),
    (EV_READY_TO_SEND, EV_INVOKE_FAILURE),
}

FIGURE3_SERVER_EDGES = {
    (EV_NEW_SERVER_REQUEST, EV_READY_TO_INVOKE),
    (EV_READY_TO_INVOKE, EV_INVOKE_RETURN),
    (EV_INVOKE_RETURN, EV_REQUEST_RETURNED),
}

FIGURE3_EDGES = FIGURE3_CLIENT_EDGES | FIGURE3_SERVER_EDGES

#: Prefix for replica control-plane events (total-order announcements,
#: passive-replication forwarding): kind "order" arrives as "control:order".
CONTROL_EVENT_PREFIX = "control:"
