"""The CQoS skeleton: the server-side interceptor (platform-independent core).

"Server side interception is based on using the CQoS skeleton as a proxy
server for the actual server object.  This skeleton overwrites the server
object binding with the underlying middleware layer, and thus the incoming
requests are automatically forwarded to the CQoS skeleton, which also
creates an abstract request object and notifies the Cactus server."

This class is the platform-independent half; the CORBA adapter wraps it in
a DSI :class:`~repro.orb.dsi.DynamicImplementation` and the RMI adapter in
a generic-invoke remote object.  Both feed :meth:`handle_invocation`.

Besides application operations, the skeleton serves the replica **control
plane**: requests whose operation is :data:`CONTROL_OPERATION` carry
``[kind, sender_replica, payload]`` and are routed to the Cactus server's
``control:<kind>`` event (``ping`` is answered directly, enabling
``server_status()`` probes even for pass-through skeletons).

Two sharding duties also live here because the skeleton sees every request:

- **view-delta serving** — when the server platform carries a sharded
  :class:`~repro.core.routing.router.ShardRouter` and the client stamped an
  older view version, the delta bringing it current is staged onto the
  reply piggyback (the pull half of membership-driven view propagation);
- **retirement** — after a shard handoff has drained, :meth:`retire` makes
  the skeleton refuse non-control operations with
  :class:`~repro.util.errors.ShardMovedError` so a stale client re-resolves
  to the new owner instead of silently executing against the old one.
"""

from __future__ import annotations

from typing import Any

from repro.core.interfaces import ServerPlatform

# Canonical home of the control-plane constants is the invocation kernel;
# re-exported here for backwards compatibility with pre-kernel imports.
from repro.core.platform import CONTROL_OPERATION, CONTROL_PING, wrap_reply_value
from repro.core.request import PB_REQUEST_ID, PB_VIEW_DELTA, PB_VIEW_VERSION, Request
from repro.core.server import CactusServer
from repro.util.errors import ShardMovedError


class CqosSkeleton:
    """Platform-independent proxy-servant logic for one object replica."""

    def __init__(
        self,
        object_id: str,
        platform: ServerPlatform,
        cactus_server: CactusServer | None = None,
    ):
        self.object_id = object_id
        self._platform = platform
        self._cactus_server = cactus_server
        self._retired = False

    @property
    def cactus_server(self) -> CactusServer | None:
        return self._cactus_server

    @property
    def retired(self) -> bool:
        return self._retired

    def retire(self) -> None:
        """Refuse further application operations (shard handoff complete).

        Control-plane traffic (pings, replica coordination) still works so a
        retired replica remains observable, but application requests raise
        :class:`ShardMovedError` — wire-safe and retryable, so a stale
        client drops its binding, re-resolves the (re-registered) name, and
        lands on the new owner.
        """
        self._retired = True

    def handle_invocation(self, operation: str, arguments: list, context: dict) -> Any:
        """Process one intercepted platform request; return the reply value.

        Application and system exceptions propagate to the platform wrapper,
        which marshals them into the platform's reply format.
        """
        if operation == CONTROL_OPERATION:
            kind, sender, payload = arguments
            return self._handle_control(str(kind), int(sender), dict(payload))
        if self._retired:
            raise ShardMovedError(
                f"{self.object_id} no longer served here (shard moved)"
            )
        context = dict(context)
        request = Request(
            object_id=self.object_id,
            operation=operation,
            params=list(arguments),
            piggyback=context,
            # Preserve the client-side identity so replicas agree on it.
            request_id=context.get(PB_REQUEST_ID),
        )
        self._stage_view_delta(request)
        if self._cactus_server is not None:
            return self._cactus_server.cactus_invoke(request)
        # Pass-through (Table 1's "+CQoS skeleton" rung): the abstract
        # request is built and the servant invoked natively, no Cactus.
        # Staged reply piggyback (view deltas) still rides the envelope.
        return wrap_reply_value(
            self._platform.invoke_servant(request), request.reply_piggyback
        )

    def _stage_view_delta(self, request: Request) -> None:
        """Stage the view delta for a client behind this server's view.

        Only when the platform carries a sharded router *and* the client
        stamped its view version (unsharded clients never stamp, keeping
        their wire traffic byte-identical to pre-routing builds).
        """
        router = getattr(self._platform, "router", None)
        if router is None or not router.sharded:
            return
        client_version = request.piggyback.get(PB_VIEW_VERSION)
        if client_version is None:
            return
        delta = router.delta_since(int(client_version))
        if delta is not None:
            request.reply_piggyback[PB_VIEW_DELTA] = delta

    def _handle_control(self, kind: str, sender: int, payload: dict) -> Any:
        if kind == CONTROL_PING:
            return True
        if self._cactus_server is None:
            from repro.util.errors import ConfigurationError

            raise ConfigurationError(
                f"control message {kind!r} received but no Cactus server is attached"
            )
        return self._cactus_server.handle_control(kind, payload, sender)
