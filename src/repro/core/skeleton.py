"""The CQoS skeleton: the server-side interceptor (platform-independent core).

"Server side interception is based on using the CQoS skeleton as a proxy
server for the actual server object.  This skeleton overwrites the server
object binding with the underlying middleware layer, and thus the incoming
requests are automatically forwarded to the CQoS skeleton, which also
creates an abstract request object and notifies the Cactus server."

This class is the platform-independent half; the CORBA adapter wraps it in
a DSI :class:`~repro.orb.dsi.DynamicImplementation` and the RMI adapter in
a generic-invoke remote object.  Both feed :meth:`handle_invocation`.

Besides application operations, the skeleton serves the replica **control
plane**: requests whose operation is :data:`CONTROL_OPERATION` carry
``[kind, sender_replica, payload]`` and are routed to the Cactus server's
``control:<kind>`` event (``ping`` is answered directly, enabling
``server_status()`` probes even for pass-through skeletons).
"""

from __future__ import annotations

from typing import Any

from repro.core.interfaces import ServerPlatform

# Canonical home of the control-plane constants is the invocation kernel;
# re-exported here for backwards compatibility with pre-kernel imports.
from repro.core.platform import CONTROL_OPERATION, CONTROL_PING
from repro.core.request import PB_REQUEST_ID, Request
from repro.core.server import CactusServer


class CqosSkeleton:
    """Platform-independent proxy-servant logic for one object replica."""

    def __init__(
        self,
        object_id: str,
        platform: ServerPlatform,
        cactus_server: CactusServer | None = None,
    ):
        self.object_id = object_id
        self._platform = platform
        self._cactus_server = cactus_server

    @property
    def cactus_server(self) -> CactusServer | None:
        return self._cactus_server

    def handle_invocation(self, operation: str, arguments: list, context: dict) -> Any:
        """Process one intercepted platform request; return the reply value.

        Application and system exceptions propagate to the platform wrapper,
        which marshals them into the platform's reply format.
        """
        if operation == CONTROL_OPERATION:
            kind, sender, payload = arguments
            return self._handle_control(str(kind), int(sender), dict(payload))
        context = dict(context)
        request = Request(
            object_id=self.object_id,
            operation=operation,
            params=list(arguments),
            piggyback=context,
            # Preserve the client-side identity so replicas agree on it.
            request_id=context.get(PB_REQUEST_ID),
        )
        if self._cactus_server is not None:
            return self._cactus_server.cactus_invoke(request)
        # Pass-through (Table 1's "+CQoS skeleton" rung): the abstract
        # request is built and the servant invoked natively, no Cactus.
        return self._platform.invoke_servant(request)

    def _handle_control(self, kind: str, sender: int, payload: dict) -> Any:
        if kind == CONTROL_PING:
            return True
        if self._cactus_server is None:
            from repro.util.errors import ConfigurationError

            raise ConfigurationError(
                f"control message {kind!r} received but no Cactus server is attached"
            )
        return self._cactus_server.handle_control(kind, payload, sender)
