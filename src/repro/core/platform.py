"""The invocation kernel: one platform-agnostic request pipeline.

The paper's portability claim is that the QoS layer sees only the abstract
request and the Cactus QoS interface.  Historically each platform adapter
(:mod:`repro.core.adapters.corba` / ``rmi`` / ``http``) privately
reimplemented replica directories, lazy binding, failure tracking, control
pings, skeleton dispatch, and piggyback encode/decode.  This module hoists
all of that shared request-lifecycle machinery into one place; the adapters
shrink to thin codecs (abstract request ↔ platform request, plus their
paper-verbatim naming conventions).

Kernel pieces:

- :class:`ReplicaDirectory` — naming-convention strategy + lazy bind +
  lock-guarded liveness marks, shared by client platforms and the replica
  control plane.  The class now lives in :mod:`repro.core.routing`
  (re-exported here): replica discovery consults a
  :class:`~repro.core.routing.ShardRouter` view when one is attached and
  falls back to the historical prefix enumeration otherwise;
- :class:`BaseClientPlatform` / :class:`BaseServerPlatform` /
  :class:`BaseSkeletonServant` — own the request lifecycle on each side;
  subclasses supply only name formatting, name resolution, and the wire
  send (``_send``);
- :class:`PiggybackCodec` — the registry of well-known piggyback keys and
  the one textual header encoding used by header-based transports (the
  HTTP adapter's ``X-CQoS-*`` headers), so a new piggyback key is declared
  once instead of hand-threaded through three adapters;
- :func:`fault_action` — the single platform-fault →
  :class:`~repro.util.errors.CommunicationError`-taxonomy mapping, kept
  consistent with :func:`repro.util.errors.is_retryable`;
- :class:`InvocationObserver` — explicit pre/post interception hook points
  threaded through stub → client platform → wire → skeleton → servant, so
  tracing/metrics attach without touching adapters.

This module must stay platform-agnostic: importing :mod:`repro.orb`,
:mod:`repro.rmi`, or :mod:`repro.http` here is a layering violation
(machine-checked by ``tools/check_layering.py``).
"""

from __future__ import annotations

import concurrent.futures
import queue
import re
import threading
import time
from abc import abstractmethod
from typing import Any, Callable, Iterable

from repro.core.interfaces import ClientPlatform, ServerPlatform
from repro.core.request import (
    PB_ATTEMPT,
    PB_CACHE_EPOCH,
    PB_CACHE_INVALIDATE,
    PB_CLIENT_ID,
    PB_DEADLINE,
    PB_ENCRYPTED,
    PB_FORWARDED,
    PB_PRIORITY,
    PB_REQUEST_ID,
    PB_SIGNATURE,
    PB_VIEW_DELTA,
    PB_VIEW_VERSION,
    Request,
)
from repro.core.routing import ReplicaDirectory, ShardRouter
from repro.net.transport import ReplyFuture
from repro.serialization.jser import jser_dumps, jser_loads
from repro.util.errors import (
    AdmissionRejectedError,
    BindError,
    CommunicationError,
    ConfigurationError,
    ServerFailedError,
    ShardMovedError,
    TimeoutError_,
    is_retryable,
)

#: The reserved operation name of the replica control plane.  Requests with
#: this operation carry ``[kind, sender_replica, payload]`` and are routed to
#: the Cactus server's ``control:<kind>`` event by the CQoS skeleton.
CONTROL_OPERATION = "__cqos__"
#: Control kind answered directly by every skeleton (liveness probes).
CONTROL_PING = "ping"


def assert_blocking_safe(what: str) -> None:
    """Fail loudly if a blocking wait is about to run *on* an event loop.

    The async transport engine executes servants on its executor precisely
    so they may block; code that nevertheless ends up on the loop thread —
    a user calling a blocking stub from inside an ``asyncio`` coroutine, or
    a mis-marked handler promoted inline — would deadlock the entire
    network the moment it waits for a reply that needs that same loop.
    Guarding the wait sites turns that silent hang into an immediate
    :class:`~repro.util.errors.ConfigurationError` naming the offender.
    """
    import asyncio

    from repro.util.errors import ConfigurationError

    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return
    raise ConfigurationError(
        f"{what} would block inside a running event loop; blocking CQoS "
        "calls must run on a worker thread (the async engine's servant "
        "executor does this automatically for marked handlers)"
    )


# -- observers ----------------------------------------------------------------


class InvocationObserver:
    """Pre/post interception hook points along the invocation pipeline.

    Subclass and override any subset; every hook is a no-op by default and
    observer exceptions are swallowed (observation must never change
    request outcomes).  The stages, in client→server order:

    - ``on_stub_request`` / ``on_stub_complete`` — the CQoS stub boundary
      (one abstract request per application call);
    - ``on_wire_send`` / ``on_wire_reply`` / ``on_wire_failure`` — each
      physical send attempt through the client platform (replication and
      retries produce several per request);
    - ``on_skeleton_receive`` / ``on_skeleton_reply`` /
      ``on_skeleton_failure`` — the server-side interception boundary;
    - ``on_servant_invoke`` / ``on_servant_return`` — the native call into
      the real server object.
    """

    # client side -----------------------------------------------------------

    def on_stub_request(self, request: Request) -> None: ...

    def on_stub_complete(self, request: Request, error: BaseException | None) -> None: ...

    def on_wire_send(self, request: Request, server: int) -> None: ...

    def on_wire_reply(self, request: Request, server: int, value: Any) -> None: ...

    def on_wire_failure(self, request: Request, server: int, error: BaseException) -> None: ...

    # server side -----------------------------------------------------------

    def on_skeleton_receive(self, object_id: str, operation: str, context: dict) -> None: ...

    def on_skeleton_reply(self, object_id: str, operation: str, value: Any) -> None: ...

    def on_skeleton_failure(self, object_id: str, operation: str, error: BaseException) -> None: ...

    def on_servant_invoke(self, request: Request) -> None: ...

    def on_servant_return(self, request: Request, value: Any) -> None: ...


def notify_observers(observers: Iterable[InvocationObserver], hook: str, *args: Any) -> None:
    """Deliver one hook to every observer, swallowing observer failures."""
    for observer in observers:
        try:
            getattr(observer, hook)(*args)
        except Exception:  # noqa: BLE001 - observation must not alter outcomes
            pass


# -- piggyback codec ----------------------------------------------------------


class PiggybackCodec:
    """Registry of piggyback keys + the shared textual header encoding.

    The CORBA and RMI substrates ship the piggyback dict natively (GIOP
    service context / JRMP call context), so only header-based transports
    need an encoding: each entry becomes one ``x-cqos-<key>`` header whose
    value is the hex of the key's jser-encoded value, so *any*
    marshallable value (non-string, non-ASCII, nested, binary) survives
    header transport losslessly.

    Header names are case-folded and latin-1-constrained by HTTP, so keys
    that are not safe lower-case tokens are escaped as ``x-cqos-!<hex of
    jser(key)>`` — ``!`` cannot appear in a safe token, making the escape
    unambiguous, and safe keys (every well-known ``cqos_*`` key) keep
    their historical byte-identical wire form.

    ``declare()`` records a well-known key with documentation; adapters
    never enumerate keys, so declaring a new one here is the *only* step
    needed to introduce it.
    """

    PREFIX = "x-cqos-"
    _ESCAPE = "!"
    _SAFE_KEY = re.compile(r"[a-z0-9_.\-]+\Z")

    def __init__(self) -> None:
        self._declared: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- key registry -------------------------------------------------------

    def declare(self, key: str, doc: str = "") -> str:
        """Register a well-known piggyback key; returns the key."""
        with self._lock:
            self._declared[key] = doc
        return key

    def declared_keys(self) -> dict[str, str]:
        """The registered well-known keys and their documentation."""
        with self._lock:
            return dict(self._declared)

    # -- header encoding ----------------------------------------------------

    def encode_headers(self, piggyback: dict | None) -> dict[str, str]:
        """Encode a piggyback dict as transport-safe ``x-cqos-*`` headers."""
        headers: dict[str, str] = {}
        for key, value in (piggyback or {}).items():
            if isinstance(key, str) and self._SAFE_KEY.match(key):
                name = f"{self.PREFIX}{key}"
            else:
                name = f"{self.PREFIX}{self._ESCAPE}{jser_dumps(key).hex()}"
            headers[name] = jser_dumps(value).hex()
        return headers

    def decode_headers(self, headers: dict[str, str]) -> dict:
        """Decode ``x-cqos-*`` headers back into the piggyback dict."""
        piggyback: dict = {}
        for name, value in headers.items():
            if not name.startswith(self.PREFIX):
                continue
            raw_key = name[len(self.PREFIX):]
            if raw_key.startswith(self._ESCAPE):
                key = jser_loads(bytes.fromhex(raw_key[len(self._ESCAPE):]))
            else:
                key = raw_key
            piggyback[key] = jser_loads(bytes.fromhex(value))
        return piggyback


#: The process-wide codec instance, with every well-known key declared once.
PIGGYBACK_CODEC = PiggybackCodec()
PIGGYBACK_CODEC.declare(PB_REQUEST_ID, "client-assigned request identity (replica correlation)")
PIGGYBACK_CODEC.declare(PB_CLIENT_ID, "originating client identity")
PIGGYBACK_CODEC.declare(PB_PRIORITY, "scheduling priority (timeliness protocols)")
PIGGYBACK_CODEC.declare(PB_ENCRYPTED, "parameters are DES-encrypted (privacy protocols)")
PIGGYBACK_CODEC.declare(PB_SIGNATURE, "request MAC (integrity protocols)")
PIGGYBACK_CODEC.declare(PB_FORWARDED, "replica-forwarded duplicate (passive replication)")
PIGGYBACK_CODEC.declare(PB_DEADLINE, "absolute deadline on the shared monotonic clock")
PIGGYBACK_CODEC.declare(PB_ATTEMPT, "send-attempt number stamped by retry protocols")
PIGGYBACK_CODEC.declare(PB_CACHE_EPOCH, "last cache-invalidation epoch seen by the client")
PIGGYBACK_CODEC.declare(PB_CACHE_INVALIDATE, "reply-direction invalidation delta (epoch, ops)")
PIGGYBACK_CODEC.declare(PB_VIEW_VERSION, "directory-view version the client routed with")
PIGGYBACK_CODEC.declare(PB_VIEW_DELTA, "reply-direction directory-view delta (piggyback pull)")


# -- reply-direction piggyback envelope ---------------------------------------
#
# None of the three substrates carries context on the *reply* leg (the GIOP
# ReplyMessage has no service context; JRMP/HTTP replies are bare values), so
# reply-direction piggyback rides inside the reply value itself: when a server
# micro-protocol staged entries in ``Request.reply_piggyback``, the Cactus
# server wraps the return value in a reserved-key envelope that the client
# platform strips before completing the request.  Zero cost (no wrapping) for
# requests with nothing staged, and no wire-format change on any platform.

#: Reserved marker key of the reply envelope (never a legitimate app value).
REPLY_ENVELOPE_KEY = "__cqos_reply__"
_REPLY_ENVELOPE_VALUE = "v"


def wrap_reply_value(value: Any, reply_piggyback: dict) -> Any:
    """Envelope ``value`` with reply-direction piggyback (no-op when empty)."""
    if not reply_piggyback:
        return value
    return {REPLY_ENVELOPE_KEY: dict(reply_piggyback), _REPLY_ENVELOPE_VALUE: value}


def unwrap_reply_value(value: Any) -> tuple[Any, dict | None]:
    """Split a reply into ``(value, reply_piggyback | None)``."""
    if (
        isinstance(value, dict)
        and len(value) == 2
        and REPLY_ENVELOPE_KEY in value
        and _REPLY_ENVELOPE_VALUE in value
    ):
        return value[_REPLY_ENVELOPE_VALUE], dict(value[REPLY_ENVELOPE_KEY])
    return value, None


# -- fault taxonomy -----------------------------------------------------------
#
# One shared answer to "what should the binding layer do about this platform
# fault?", the counterpart of repro.util.errors.is_retryable's "is this worth
# retrying?".  The two stay consistent by construction:
#
# - ServerFailedError (host crashed, not retryable) => MARK_FAILED: remember
#   the replica as down so server_status() reports it; failover is the right
#   reaction and bind() is the explicit recovery path;
# - every other CommunicationError (transient: loss, reset, partition flap,
#   timeout — exactly the retryable class plus spent deadlines / open
#   breakers, which never held a binding worth keeping) => DROP_BINDING:
#   forget the cached endpoint so the next attempt reconnects, but do NOT
#   mark the replica failed;
# - everything else (application outcomes, marshalling) => KEEP: the binding
#   is healthy, the request simply has a non-transport outcome.

ACTION_MARK_FAILED = "mark_failed"
ACTION_DROP_BINDING = "drop_binding"
ACTION_KEEP = "keep"


def fault_action(error: BaseException | None) -> str:
    """Classify a platform fault into the binding-layer reaction."""
    if isinstance(error, ServerFailedError):
        return ACTION_MARK_FAILED
    if isinstance(error, AdmissionRejectedError):
        # The server actively answered (it is alive and the binding works);
        # it just refused the work.  Keeping the binding lets the client
        # retry after the hinted delay without a reconnect.
        return ACTION_KEEP
    if isinstance(error, CommunicationError):
        # Exactly the is_retryable() class plus the non-retryable local
        # rejections (deadline spent, breaker open); none of them indicate
        # a crashed replica, so the binding is dropped but the replica is
        # not marked failed.
        return ACTION_DROP_BINDING
    return ACTION_KEEP


# -- scatter-gather fan-out ---------------------------------------------------
#
# The fan-out primitive of the replication protocols: submit every replica
# request in one non-blocking pass (the async engine coalesces back-to-back
# submissions into one writev-style syscall; the threaded mux pipelines them
# on one socket), then gather completions in arrival order under a policy.
# Policies:
#
# - "all"       — every branch is gathered (the historical semantics: active
#                 replication collects all replies, passive forwarding joins
#                 every backup);
# - "first"     — the first *successful* reply wins; the remaining branches
#                 are abandoned (correlation ids reclaimed, no waiter leak);
# - "quorum:k"  — the k-th successful reply wins; no straggler wait.
#
# Abandoning a branch never cancels the remote execution — the request was
# already sent — it only stops waiting locally, which is exactly-once safe
# for the protocols that use it (active replication sends to every replica
# regardless; the reply value is what is being raced).

#: Environment knob selecting the replication gather policy.
GATHER_POLICY_ENV = "CQOS_GATHER_POLICY"

#: Valid gather-policy modes.
GATHER_ALL = "all"
GATHER_FIRST = "first"
GATHER_QUORUM = "quorum"


def parse_gather_policy(spec: str | None) -> tuple[str, int]:
    """Parse a gather-policy spec into ``(mode, quorum_k)``.

    Accepts ``"all"`` (default for ``None``/empty), ``"first"``, and
    ``"quorum:k"`` with integer ``k >= 1`` (``"quorum"`` alone means
    ``k=2``).  Raises :class:`~repro.util.errors.ConfigurationError` on
    anything else — a silently ignored policy knob would be worse than a
    loud one.
    """
    if spec is None or not spec.strip():
        return (GATHER_ALL, 0)
    text = spec.strip().lower()
    if text in (GATHER_ALL, GATHER_FIRST):
        return (text, 0)
    if text == GATHER_QUORUM or text.startswith(GATHER_QUORUM + ":"):
        _, _, raw_k = text.partition(":")
        try:
            quorum_k = int(raw_k) if raw_k else 2
        except ValueError:
            raise ConfigurationError(f"malformed quorum size in gather policy {spec!r}") from None
        if quorum_k < 1:
            raise ConfigurationError(f"quorum size must be >= 1, got {quorum_k}")
        return (GATHER_QUORUM, quorum_k)
    raise ConfigurationError(
        f"unknown gather policy {spec!r}; expected 'all', 'first', or 'quorum:k'"
    )


def _once(fn: Callable[[], None]) -> Callable[[], None]:
    """Wrap ``fn`` so concurrent/repeated invocations run it exactly once."""
    lock = threading.Lock()
    ran = [False]

    def run() -> None:
        with lock:
            if ran[0]:
                return
            ran[0] = True
        fn()

    return run


def threaded_reply_future(call: Callable[[], Any], name: str = "cqos-send-async") -> ReplyFuture:
    """Run a blocking ``call()`` on a daemon thread; settle a ReplyFuture.

    The fallback ``_send_async`` implementation for platforms that only
    define a blocking ``_send`` (test fakes, decorated stacks): semantically
    identical to the historical thread-per-replica fan-out.
    """
    future: concurrent.futures.Future = concurrent.futures.Future()

    def run() -> None:
        try:
            result = call()
        except BaseException as exc:  # noqa: BLE001 - delivered via the future
            future.set_exception(exc)
        else:
            future.set_result(result)

    threading.Thread(target=run, name=name, daemon=True).start()
    return ReplyFuture(future)


class BranchOutcome:
    """The settled result of one scatter branch: ``value`` XOR ``error``."""

    __slots__ = ("key", "value", "error")

    def __init__(self, key: Any, value: Any, error: BaseException | None):
        self.key = key
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        outcome = repr(self.value) if self.ok else f"error={self.error!r}"
        return f"BranchOutcome({self.key}, {outcome})"


class ScatterGather:
    """One multicast fan-out: submit N branches, gather in completion order.

    ``submit(key, fn)`` calls ``fn() -> ReplyFuture`` and registers the
    branch; a submit-time raise is recorded as that branch's (immediate)
    failure outcome rather than propagating, so one dead replica never
    aborts the scatter pass.  Completion signals are queued at *wire*
    settle time (done callbacks push the key only — no decode on transport
    threads); ``next_outcome()`` resolves the branch on the gather thread,
    where the substrate's lazy decode and fault bookkeeping run.

    The scatter and gather sides may be different threads, but submissions
    must happen-before the first ``next_outcome`` for the count to be
    meaningful (all protocol users submit the full pass first).
    """

    def __init__(self) -> None:
        self._signals: queue.SimpleQueue = queue.SimpleQueue()
        self._branches: dict[Any, ReplyFuture] = {}
        self._immediate: dict[Any, BranchOutcome] = {}
        self._lock = threading.Lock()
        self._submitted = 0
        self._gathered = 0

    def submit(self, key: Any, submit_fn: Callable[[], ReplyFuture]) -> None:
        """Start one branch; its completion will surface via the queue."""
        try:
            reply = submit_fn()
        except BaseException as exc:  # noqa: BLE001 - recorded as the outcome
            with self._lock:
                self._immediate[key] = BranchOutcome(key, None, exc)
                self._submitted += 1
            self._signals.put(key)
            return
        with self._lock:
            self._branches[key] = reply
            self._submitted += 1
        reply.add_done_callback(lambda _reply, key=key: self._signals.put(key))

    @property
    def submitted(self) -> int:
        return self._submitted

    def remaining(self) -> int:
        """Branches submitted but not yet gathered (nor abandoned)."""
        with self._lock:
            return self._submitted - self._gathered

    def next_outcome(self, timeout: float | None = None) -> BranchOutcome | None:
        """The next settled branch in completion order; None when drained.

        Raises :class:`~repro.util.errors.TimeoutError_` if no branch
        settles within ``timeout``.  Substrate decode (and its fault
        side effects) run here, on the gather thread.
        """
        with self._lock:
            if self._gathered >= self._submitted:
                return None
        try:
            key = self._signals.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError_("scatter-gather: no branch completed within deadline") from None
        with self._lock:
            self._gathered += 1
            immediate = self._immediate.pop(key, None)
            reply = self._branches.pop(key, None)
        if immediate is not None:
            return immediate
        if reply is None:  # abandoned concurrently; treat as drained signal
            return BranchOutcome(key, None, TimeoutError_("exchange abandoned"))
        try:
            value = reply.result(timeout=0)
        except BaseException as exc:  # noqa: BLE001 - per-branch outcome
            return BranchOutcome(key, None, exc)
        return BranchOutcome(key, value, None)

    def gather_all(self, timeout: float | None = None) -> list[BranchOutcome]:
        """Gather every remaining branch (per-branch errors inside outcomes).

        ``timeout`` bounds the *whole* gather, not each branch.  Protocols
        that fire-and-forget a multicast call this from a single pool task
        so the substrates' lazy decode — and its binding-hygiene side
        effects — still run, just off the submitting thread.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        outcomes: list[BranchOutcome] = []
        while True:
            wait = None if deadline is None else max(0.0, deadline - time.monotonic())
            outcome = self.next_outcome(timeout=wait)
            if outcome is None:
                return outcomes
            outcomes.append(outcome)

    def abandon_rest(self) -> None:
        """Abandon every ungathered branch: reclaim transport waiter state.

        After this, ``next_outcome`` reports the scatter as drained.  Safe
        against late completion signals (their keys are simply ignored).
        """
        with self._lock:
            branches = list(self._branches.values())
            self._branches.clear()
            self._immediate.clear()
            self._gathered = self._submitted
        for reply in branches:
            reply.abandon()


# -- replica directory --------------------------------------------------------
#
# ReplicaDirectory moved to repro.core.routing.directory (the routing layer
# owns replica discovery now); imported above and re-exported here, its
# historical home, so existing imports keep working.


# -- client platform base ------------------------------------------------------


class BaseClientPlatform(ClientPlatform):
    """Platform-independent client half of the Cactus QoS interface.

    Owns the whole request lifecycle — lazy binding through a
    :class:`ReplicaDirectory`, ``server_status`` liveness marks, active
    ``probe()`` via the skeleton's control ping, and the shared fault
    taxonomy.  A concrete adapter supplies only its codec surface:

    - ``_replica_name(replica)`` / ``_replica_prefix()`` — the paper's
      naming convention for this platform;
    - ``_resolve(name)`` — bootstrap-service lookup, returning an opaque
      endpoint;
    - ``_list_names(prefix)`` — bootstrap-service enumeration;
    - ``_send(endpoint, operation, params, piggyback)`` — convert the
      abstract request into one platform request and invoke it.

    ``router`` attaches a :class:`~repro.core.routing.ShardRouter`: replica
    counts/ids then come from its directory view (consulted on every
    bind/rebind), requests are view-stamped, and reply-piggybacked view
    deltas are pulled automatically.  Without one, an unsharded router is
    created and the platform behaves exactly as before (prefix-scan
    discovery, no view stamp — wire bytes unchanged).
    """

    def __init__(
        self,
        object_id: str,
        observers: Iterable[InvocationObserver] | None = None,
        router: ShardRouter | None = None,
    ):
        self.object_id = object_id
        self.observers: list[InvocationObserver] = list(observers or ())
        self.router = router if router is not None else ShardRouter()
        self.directory = ReplicaDirectory(
            name_for=self._replica_name,
            resolve=self._resolve,
            list_names=self._list_names,
            prefix=self._replica_prefix(),
            router=self.router,
            object_id=object_id,
        )
        # Per-replica reply-latency EWMA, fed by every successful send (sync
        # or async).  rank_servers() orders fan-out/balancing candidates by
        # it, so quorum gathers tend to reach k before the slow stragglers.
        self._latency_ewma: dict[int, float] = {}
        self._latency_lock = threading.Lock()

    def add_observer(self, observer: InvocationObserver) -> None:
        self.observers.append(observer)

    # -- codec surface (subclass responsibility) ----------------------------

    @abstractmethod
    def _replica_name(self, replica: int) -> str:
        """The bootstrap-service name of one replica (naming convention)."""

    @abstractmethod
    def _replica_prefix(self) -> str:
        """The enumeration prefix shared by every replica of the object."""

    @abstractmethod
    def _resolve(self, name: str) -> Any:
        """Look one name up in the platform's bootstrap service."""

    @abstractmethod
    def _list_names(self, prefix: str) -> list:
        """Enumerate bootstrap-service names under ``prefix``."""

    @abstractmethod
    def _send(self, endpoint: Any, operation: str, params: list, piggyback: dict | None) -> Any:
        """Convert to a platform request, invoke it, return the reply value."""

    def _send_async(
        self, endpoint: Any, operation: str, params: list, piggyback: dict | None
    ) -> ReplyFuture:
        """Non-blocking ``_send``; delivery failures settle the future.

        Default: one daemon thread around the blocking codec, so subclasses
        that only define ``_send`` (test fakes, wrappers) work unchanged.
        The real adapters override this with their substrate's native
        pipelined submit (eager encode, lazy decode — wire bytes identical
        to the blocking path).
        """
        return threaded_reply_future(lambda: self._send(endpoint, operation, params, piggyback))

    # -- Cactus QoS interface (shared lifecycle) ----------------------------

    def num_servers(self) -> int:
        return self.directory.count()

    def server_ids(self) -> tuple[int, ...]:
        """The logical replica numbers (possibly sparse under sharding)."""
        return self.directory.replica_ids()

    def refresh(self) -> None:
        """Drop cached bindings and replica count (re-discover on next use)."""
        self.directory.refresh()

    def bind(self, server: int) -> None:
        self.directory.bind(server)

    def server_status(self, server: int) -> bool:
        return self.directory.status(server)

    def probe(self, server: int) -> bool:
        """Active liveness check via the skeleton's control ping."""
        try:
            endpoint = self.directory.endpoint(server)
            alive = bool(self._send(endpoint, CONTROL_OPERATION, [CONTROL_PING, 0, {}], None))
        except (CommunicationError, BindError):
            alive = False
        if not alive:
            self.directory.mark_failed(server)
        else:
            # "probe() rebinds": a successful probe of a replica previously
            # marked failed reinstates it (bind clears the failure mark).
            self.directory.bind(server)
        return alive

    #: How many shard-handoff redirects one invocation will follow.  Each
    #: ShardMovedError is a guarantee the servant did NOT execute, so the
    #: transparent resend is exactly-once safe; the bound only stops a
    #: pathological rebalance storm from looping forever.
    SHARD_REDIRECT_LIMIT = 3

    def invoke_server(self, server: int, request: Request) -> Any:
        for redirect in range(self.SHARD_REDIRECT_LIMIT + 1):
            try:
                return self._invoke_server_once(server, request)
            except ShardMovedError:
                # The retired old owner refused without executing; its
                # binding was already dropped by the fault taxonomy, so the
                # next attempt re-resolves the (re-registered) naming entry
                # and lands on the new owner.
                if redirect == self.SHARD_REDIRECT_LIMIT:
                    raise
        raise AssertionError("unreachable")

    def _invoke_server_once(self, server: int, request: Request) -> Any:
        self.directory.bind(server)
        endpoint = self.directory.endpoint(server)
        # In-flight invocations pin the view they routed with: during a
        # shard handoff this attempt completes against the old view while
        # new binds route to the new owner (zero-drop rebalancing).  The
        # view stamp rides piggyback only on sharded deployments, so
        # unsharded wire bytes are untouched.
        lease = self.router.lease() if self.router.sharded else None
        if lease is not None:
            request.piggyback[PB_VIEW_VERSION] = lease.view.version
        notify_observers(self.observers, "on_wire_send", request, server)
        started = time.monotonic()
        try:
            value = self._send(
                endpoint, request.operation, request.get_params(), dict(request.piggyback)
            )
        except BaseException as exc:
            # ServerFailedError marks the replica down (server_status sees
            # it); transient CommunicationErrors only drop the binding so
            # the next attempt reconnects.
            self.directory.apply_fault(server, exc)
            notify_observers(self.observers, "on_wire_failure", request, server, exc)
            raise
        finally:
            if lease is not None:
                lease.release()
        self.record_latency(server, time.monotonic() - started)
        value, reply_piggyback = unwrap_reply_value(value)
        if reply_piggyback:
            request.reply_piggyback.update(reply_piggyback)
            delta = reply_piggyback.get(PB_VIEW_DELTA)
            if delta is not None and not self.router.apply_delta(delta):
                # Delta not applicable (history evicted / base mismatch):
                # fall back to bootstrap re-enumeration.
                self.refresh()
        notify_observers(self.observers, "on_wire_reply", request, server, value)
        return value

    def invoke_server_async(self, server: int, request: Request) -> ReplyFuture:
        """Non-blocking :meth:`invoke_server`: submit now, settle later.

        Submit-time work (bind, endpoint resolution, view-lease pinning,
        ``on_wire_send``) runs on the caller's thread and may raise
        :class:`~repro.util.errors.BindError` — :class:`ScatterGather`
        records such raises as immediate branch failures.  Everything after
        the wire settles runs lazily at ``result()`` on the consumer's
        thread: reply unwrap, view-delta pull, fault taxonomy, observers.
        A :class:`~repro.util.errors.ShardMovedError` outcome falls back to
        the blocking redirect-following path (rare rebalance window; the
        old owner refused without executing, so the resend is exactly-once
        safe).  The view lease is released at wire settle *or* abandon,
        whichever comes first, so abandoned stragglers cannot pin a retired
        view forever.
        """
        self.directory.bind(server)
        endpoint = self.directory.endpoint(server)
        lease = self.router.lease() if self.router.sharded else None
        if lease is not None:
            request.piggyback[PB_VIEW_VERSION] = lease.view.version
        notify_observers(self.observers, "on_wire_send", request, server)
        started = time.monotonic()
        reply = self._send_async(
            endpoint, request.operation, request.get_params(), dict(request.piggyback)
        )
        if lease is not None:
            release = _once(lease.release)
            reply.add_done_callback(lambda _reply: release())
            reply.chain_abandon(release)

        def on_value(value: Any) -> Any:
            self.record_latency(server, time.monotonic() - started)
            value, reply_piggyback = unwrap_reply_value(value)
            if reply_piggyback:
                request.reply_piggyback.update(reply_piggyback)
                delta = reply_piggyback.get(PB_VIEW_DELTA)
                if delta is not None and not self.router.apply_delta(delta):
                    self.refresh()
            notify_observers(self.observers, "on_wire_reply", request, server, value)
            return value

        def on_error(exc: BaseException) -> Any:
            self.directory.apply_fault(server, exc)
            notify_observers(self.observers, "on_wire_failure", request, server, exc)
            if isinstance(exc, ShardMovedError):
                return self.invoke_server(server, request)
            raise exc

        return reply.then(on_value, on_error)

    # -- latency ranking -----------------------------------------------------

    #: EWMA smoothing factor for per-replica reply latency.
    LATENCY_ALPHA = 0.3

    def record_latency(self, server: int, seconds: float) -> None:
        """Fold one successful reply's latency into the replica's EWMA."""
        with self._latency_lock:
            previous = self._latency_ewma.get(server)
            if previous is None:
                self._latency_ewma[server] = seconds
            else:
                alpha = self.LATENCY_ALPHA
                self._latency_ewma[server] = alpha * seconds + (1 - alpha) * previous

    def latency_estimate(self, server: int) -> float | None:
        """The replica's current reply-latency EWMA (None if never seen)."""
        with self._latency_lock:
            return self._latency_ewma.get(server)

    def rank_servers(self, candidates: Iterable[int]) -> tuple[int, ...]:
        """Order candidate replicas fastest-first by latency EWMA.

        Replicas with no measurement yet keep their incoming (logical-id)
        order, after the measured ones — a cold replica is probed only once
        the known-fast ones are in flight, which is the right bias for
        quorum gathers and for balancing cold starts alike.
        """
        candidates = list(candidates)
        with self._latency_lock:
            snapshot = dict(self._latency_ewma)
        measured = [server for server in candidates if server in snapshot]
        measured.sort(key=lambda server: snapshot[server])
        unmeasured = [server for server in candidates if server not in snapshot]
        return tuple(measured + unmeasured)


# -- server platform base ------------------------------------------------------


class BaseServerPlatform(ServerPlatform):
    """Platform-independent server half of the Cactus QoS interface.

    Owns servant dispatch bookkeeping and the replica control plane
    (``peer_invoke`` / ``peer_status``) on top of a peer
    :class:`ReplicaDirectory` — "identical techniques to establish
    connections between server object replicas".  A concrete adapter
    supplies ``_peer_name``, ``_resolve`` and ``_send`` (same codec surface
    as the client side) plus a ``dispatch`` object implementing
    ``dispatch(operation, params)`` for the native call into the servant.
    """

    def __init__(
        self,
        object_id: str,
        replica: int,
        dispatch: Any,
        total_replicas: int = 1,
        observers: Iterable[InvocationObserver] | None = None,
        router: ShardRouter | None = None,
    ):
        self.object_id = object_id
        self._replica = replica
        self._total = total_replicas
        self._dispatch = dispatch
        self.observers: list[InvocationObserver] = list(observers or ())
        #: The authoritative ShardRouter of a sharded deployment (None when
        #: unsharded): the skeleton serves piggyback view deltas from it.
        self.router = router
        self.peers = ReplicaDirectory(name_for=self._peer_name, resolve=self._resolve)

    def add_observer(self, observer: InvocationObserver) -> None:
        self.observers.append(observer)

    # -- codec surface (subclass responsibility) ----------------------------

    @abstractmethod
    def _peer_name(self, replica: int) -> str:
        """The bootstrap-service name of a peer replica's skeleton."""

    @abstractmethod
    def _resolve(self, name: str) -> Any:
        """Look one name up in the platform's bootstrap service."""

    @abstractmethod
    def _send(self, endpoint: Any, operation: str, params: list, piggyback: dict | None) -> Any:
        """Send one platform request to a peer endpoint."""

    # -- Cactus QoS interface (shared lifecycle) ----------------------------

    def invoke_servant(self, request: Request) -> Any:
        notify_observers(self.observers, "on_servant_invoke", request)
        value = self._dispatch.dispatch(request.operation, request.get_params())
        notify_observers(self.observers, "on_servant_return", request, value)
        return value

    def my_replica(self) -> int:
        return self._replica

    def num_replicas(self) -> int:
        return self._total

    def replica_ids(self) -> tuple[int, ...]:
        """Logical ids of this object's replica group (sparse when sharded).

        The server-side counterpart of the client's ``server_ids()``: when
        an authoritative :class:`~repro.core.routing.ShardRouter` is
        attached and sharded, the group comes from its view — the logical
        numbers need not be contiguous nor start at 1 — otherwise the
        historical dense ``1..num_replicas()`` enumeration.
        """
        if self.router is not None and self.router.sharded:
            ids = self.router.route(self.object_id)
            if ids:
                return tuple(ids)
        return tuple(range(1, self._total + 1))

    def _send_async(
        self, endpoint: Any, operation: str, params: list, piggyback: dict | None
    ) -> ReplyFuture:
        """Non-blocking ``_send`` (same default/override split as the client)."""
        return threaded_reply_future(lambda: self._send(endpoint, operation, params, piggyback))

    def peer_invoke(self, replica: int, kind: str, payload: dict) -> Any:
        endpoint = self.peers.endpoint(replica)
        try:
            return self._send(
                endpoint, CONTROL_OPERATION, [kind, self._replica, payload], None
            )
        except CommunicationError:
            self.peers.drop(replica)
            raise

    def peer_invoke_async(self, replica: int, kind: str, payload: dict) -> ReplyFuture:
        """Non-blocking :meth:`peer_invoke`; same taxonomy at ``result()``.

        May raise :class:`~repro.util.errors.BindError` at submit time (no
        such peer) — :class:`ScatterGather` records that as the branch
        outcome.  A ``CommunicationError`` outcome drops the peer binding
        when the result is consumed; multicast protocols drain their
        scatter from one pool task precisely so this binding hygiene still
        runs off the submitting thread.
        """
        endpoint = self.peers.endpoint(replica)
        reply = self._send_async(
            endpoint, CONTROL_OPERATION, [kind, self._replica, payload], None
        )

        def on_error(exc: BaseException) -> Any:
            if isinstance(exc, CommunicationError):
                self.peers.drop(replica)
            raise exc

        return reply.then(None, on_error)

    def peer_status(self, replica: int) -> bool:
        try:
            endpoint = self.peers.endpoint(replica)
            return bool(
                self._send(
                    endpoint, CONTROL_OPERATION, [CONTROL_PING, self._replica, {}], None
                )
            )
        except (CommunicationError, BindError):
            self.peers.drop(replica)
            return False


# -- skeleton servant base -----------------------------------------------------


class BaseSkeletonServant:
    """Platform-independent wrapper delivering upcalls to the skeleton core.

    The generic ``invoke(method, arguments, context)`` signature is exactly
    what the RMI generic export and the HTTP generic mount expect; the
    CORBA adapter subclasses this and adapts the DSI ``ServerRequest``
    calling convention onto :meth:`dispatch_invocation`.
    """

    def __init__(self, skeleton: Any, observers: Iterable[InvocationObserver] | None = None):
        self.skeleton = skeleton
        self.observers: list[InvocationObserver] = list(observers or ())

    def add_observer(self, observer: InvocationObserver) -> None:
        self.observers.append(observer)

    def dispatch_invocation(self, operation: str, arguments: list, context: dict) -> Any:
        """Run one intercepted platform request through the CQoS skeleton."""
        notify_observers(
            self.observers, "on_skeleton_receive", self.skeleton.object_id, operation, context
        )
        try:
            value = self.skeleton.handle_invocation(operation, arguments, context)
        except BaseException as exc:
            notify_observers(
                self.observers, "on_skeleton_failure", self.skeleton.object_id, operation, exc
            )
            raise
        notify_observers(
            self.observers, "on_skeleton_reply", self.skeleton.object_id, operation, value
        )
        return value

    def invoke(self, method: str, arguments: list, context: dict) -> Any:
        """The generic-invoke entry point (RMI export / HTTP mount)."""
        return self.dispatch_invocation(method, arguments, context)


# -- naming conventions --------------------------------------------------------
#
# The paper's platform naming conventions, verbatim.  They are *used* by the
# adapters (they are part of each platform's codec surface) but live here so
# deployment code and tests can format replica names without importing a
# platform module, and so the historical adapter-level helper names keep
# working as re-exports.


def corba_poa_name(object_id: str, replica: int) -> str:
    """The paper's POA naming convention: ``"OID_agent_poa_i"``."""
    return f"{object_id}_agent_poa_{replica}"


def corba_skeleton_object_id(object_id: str) -> str:
    """The shared CORBA skeleton object id: ``"OID_CQoS_Skeleton"``."""
    return f"{object_id}_CQoS_Skeleton"


def corba_replica_name(object_id: str, replica: int) -> str:
    """The naming-service entry for one CORBA replica: ``"OID/replica-i"``."""
    return f"{object_id}/replica-{replica}"


def corba_replica_prefix(object_id: str) -> str:
    return f"{object_id}/replica-"


def rmi_skeleton_name(object_id: str, replica: int) -> str:
    """The paper's registry naming convention: ``"OID_CQoS_Skeleton_i"``."""
    return f"{object_id}_CQoS_Skeleton_{replica}"


def rmi_skeleton_prefix(object_id: str) -> str:
    return f"{object_id}_CQoS_Skeleton_"


def http_replica_name(object_id: str, replica: int) -> str:
    """Path-registry naming convention for HTTP replicas: ``"OID/replica-i"``."""
    return f"{object_id}/replica-{replica}"


def http_replica_prefix(object_id: str) -> str:
    return f"{object_id}/replica-"


def http_skeleton_object_id(object_id: str) -> str:
    """The mounted CQoS skeleton's HTTP object id: ``"OID_CQoS_Skeleton"``."""
    return f"{object_id}_CQoS_Skeleton"
