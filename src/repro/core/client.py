"""The Cactus client: the client-side CQoS service component.

"The client provides an operation cactus_request(requestID) that the stub
can use to notify it of the request arrival … [it] blocks until the request
has been completed.  The implementation … simply raises the appropriate
event newRequest, with the actual processing done by various
micro-protocols."  (paper, section 2.3.2)

The composite is created with a :class:`~repro.core.interfaces.ClientPlatform`
(stored in shared data under ``"platform"``) and a configuration of
micro-protocols.  At minimum the configuration must include
:class:`~repro.qos.base.ClientBase`; :meth:`CactusClient.with_base` builds
that default.

The synchronous-invocation assumption of the prototype is kept, and the
extension the paper mentions is provided too: :meth:`cactus_request_async`
returns immediately with the request, whose ``wait()`` collects the result.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.cactus.composite import CompositeProtocol, MicroProtocol
from repro.cactus.runtime import CactusRuntime
from repro.core.events import EV_NEW_REQUEST
from repro.core.interfaces import ClientPlatform
from repro.core.request import Request

SHARED_PLATFORM = "platform"
SHARED_FAILED_SERVERS = "failed_servers"


class CactusClient(CompositeProtocol):
    """Client-side composite protocol holding the QoS micro-protocols."""

    def __init__(
        self,
        platform: ClientPlatform,
        micro_protocols: Iterable[MicroProtocol] = (),
        name: str = "cactus-client",
        runtime: CactusRuntime | None = None,
        request_timeout: float | None = 30.0,
        compiled_dispatch: bool | None = None,
    ):
        super().__init__(name, runtime=runtime, compiled_dispatch=compiled_dispatch)
        self.platform = platform
        self.request_timeout = request_timeout
        self.shared.set(SHARED_PLATFORM, platform)
        # Failure knowledge persists across requests (PassiveRep failover).
        self.shared.set(SHARED_FAILED_SERVERS, set())
        self.configure(micro_protocols)

    @classmethod
    def with_base(
        cls,
        platform: ClientPlatform,
        extra: Iterable[MicroProtocol] = (),
        **kwargs: Any,
    ) -> "CactusClient":
        """Build a client configured with ClientBase plus ``extra``.

        QoS micro-protocols bind earlier than the base handlers, so they are
        installed first in either case; ``extra`` order is preserved.
        """
        from repro.qos.base import ClientBase

        return cls(platform, list(extra) + [ClientBase()], **kwargs)

    def cactus_request(self, request: Request) -> Any:
        """Process ``request``; block until completed; return its result.

        Raises whatever the request failed with (remote application
        exceptions, communication errors, QoS policy errors).
        """
        self.raise_event(EV_NEW_REQUEST, request)
        return request.wait(self.request_timeout)

    def cactus_request_async(self, request: Request) -> Request:
        """Asynchronous-invocation extension: start processing, don't block.

        The caller collects the outcome with ``request.wait()``.
        """
        self.raise_event(EV_NEW_REQUEST, request, mode="async")
        return request
