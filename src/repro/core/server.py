"""The Cactus server: the server-side CQoS service component.

"The server provides an operation cactus_invoke(requestID) for the
skeleton … [it] blocks until the request has been completed" — i.e. until
some handler chain has invoked the servant (or rejected the request) and
completed the abstract request.  The implementation raises
``newServerRequest``; everything else is micro-protocols.

The composite also hosts the replica **control plane**: control messages
sent by peer Cactus servers through the middleware
(:meth:`~repro.core.interfaces.ServerPlatform.peer_invoke`) surface here as
blocking raises of ``"control:<kind>"`` events carrying a
:class:`~repro.core.interfaces.ControlMessage`.  PassiveRep's forwarding and
TotalOrder's ordering announcements are such messages.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.cactus.composite import CompositeProtocol, MicroProtocol
from repro.cactus.runtime import CactusRuntime
from repro.core.events import CONTROL_EVENT_PREFIX, EV_NEW_SERVER_REQUEST
from repro.core.interfaces import ControlMessage, ServerPlatform
from repro.core.platform import assert_blocking_safe, wrap_reply_value
from repro.core.request import Request
from repro.util.errors import ConfigurationError

SHARED_PLATFORM = "platform"
SHARED_PRIORITY_POLICY = "priority_policy"


class CactusServer(CompositeProtocol):
    """Server-side composite protocol for one object replica."""

    def __init__(
        self,
        platform: ServerPlatform,
        micro_protocols: Iterable[MicroProtocol] = (),
        name: str = "cactus-server",
        runtime: CactusRuntime | None = None,
        request_timeout: float | None = 30.0,
        priority_policy: Callable[[Request], int] | None = None,
        compiled_dispatch: bool | None = None,
    ):
        super().__init__(name, runtime=runtime, compiled_dispatch=compiled_dispatch)
        self.platform = platform
        self.request_timeout = request_timeout
        self.shared.set(SHARED_PLATFORM, platform)
        if priority_policy is not None:
            self.shared.set(SHARED_PRIORITY_POLICY, priority_policy)
        self.configure(micro_protocols)

    @classmethod
    def with_base(
        cls,
        platform: ServerPlatform,
        extra: Iterable[MicroProtocol] = (),
        **kwargs: Any,
    ) -> "CactusServer":
        """Build a server configured with ServerBase plus ``extra``."""
        from repro.qos.base import ServerBase

        return cls(platform, list(extra) + [ServerBase()], **kwargs)

    def cactus_invoke(self, request: Request) -> Any:
        """Process an incoming request; block until completed.

        Returns the (possibly micro-protocol-transformed) result; raises the
        request's failure otherwise.  The skeleton marshals the outcome back
        into the platform reply.

        Whatever way the dispatch dies — a handler exception unwinding the
        chain or the wait timing out — the request is *failed* before the
        error propagates, so ``Request.on_complete`` release hooks
        (admission slots, in-flight counters) always fire exactly once.
        When server micro-protocols staged reply-direction piggyback, the
        result travels inside the reserved reply envelope (see
        :func:`repro.core.platform.wrap_reply_value`).
        """
        assert_blocking_safe("cactus_invoke")
        try:
            self.raise_event(EV_NEW_SERVER_REQUEST, request)
            value = request.wait(self.request_timeout)
        except BaseException as exc:
            request.fail(exc)  # no-op when already completed
            raise
        return wrap_reply_value(value, request.reply_piggyback)

    def handle_control(self, kind: str, payload: dict, sender: int) -> Any:
        """Deliver a peer control message to its ``control:<kind>`` event.

        Returns the handler-provided reply.  An unhandled control kind is a
        configuration mismatch between replicas (e.g. one side running
        TotalOrder and the other not) and fails loudly.
        """
        message = ControlMessage(kind=kind, payload=payload, sender=sender)
        event_name = CONTROL_EVENT_PREFIX + kind
        if self.event(event_name).handler_count() == 0:
            raise ConfigurationError(
                f"replica received control message {kind!r} but no micro-protocol "
                f"handles it (configuration mismatch between replicas?)"
            )
        self.raise_event(event_name, message)
        return message.reply
