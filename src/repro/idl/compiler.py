"""Semantic analysis: IDL AST -> runtime interface metadata.

The compiler resolves names, expands attributes into ``_get_x``/``_set_x``
accessor operations (the CORBA mapping), flattens interface inheritance,
generates Python classes for structs and exceptions (registered with the
serialization registry so they cross the wire), and produces
:class:`InterfaceDef` metadata that drives *every* downstream component:
the ORB static stubs/skeletons, the RMI stubs, and the CQoS interceptors.

Python-mapping restrictions (checked here, with explicit errors):

- ``out`` / ``inout`` parameters are rejected — the request/reply paradigm
  the paper targets uses ``in`` parameters and a return value;
- interfaces may not appear as parameter or return types (no object
  references in values).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.idl.ast import (
    AttributeDecl,
    BasicType,
    ExceptionDecl,
    IdlType,
    InterfaceDecl,
    ModuleDecl,
    NamedType,
    Operation,
    Param,
    SequenceType,
    Specification,
    StructDecl,
)
from repro.idl.parser import parse_idl
from repro.serialization.registry import TypeRegistry, global_registry
from repro.util.errors import ConfigurationError, MarshalError

_INT_RANGES = {
    "short": (-(2**15), 2**15 - 1),
    "unsigned short": (0, 2**16 - 1),
    "long": (-(2**31), 2**31 - 1),
    "unsigned long": (0, 2**32 - 1),
    "long long": (-(2**63), 2**63 - 1),
    "unsigned long long": (0, 2**64 - 1),
}


class IdlRemoteException(Exception):
    """Base class for exceptions generated from IDL ``exception`` decls.

    Instances marshal across the wire as registered value types, so a server
    raising one reaches the client as the same class.
    """

    __idl_name__ = ""
    __members__: tuple[str, ...] = ()

    def __init__(self, *args, **kwargs):
        members = type(self).__members__
        if len(args) > len(members):
            raise TypeError(f"{type(self).__name__} takes at most {len(members)} args")
        values = dict(zip(members, args))
        values.update(kwargs)
        unknown = set(values) - set(members)
        if unknown:
            raise TypeError(f"unknown members for {type(self).__name__}: {sorted(unknown)}")
        for member in members:
            setattr(self, member, values.get(member))
        super().__init__(", ".join(f"{m}={getattr(self, m)!r}" for m in members))

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and all(
            getattr(self, m) == getattr(other, m) for m in type(self).__members__
        )

    def __hash__(self):
        return hash((type(self).__name__,) + tuple(
            getattr(self, m) for m in type(self).__members__
        ))


@dataclass(frozen=True)
class ParamDef:
    name: str
    type: IdlType


@dataclass
class OperationDef:
    """Runtime metadata for one operation (or attribute accessor)."""

    name: str
    return_type: IdlType
    params: tuple[ParamDef, ...]
    raises: tuple[str, ...] = ()
    oneway: bool = False

    def check_args(self, args: tuple, compiled: "CompiledIdl") -> None:
        """Validate actual argument values against the declared types."""
        if len(args) != len(self.params):
            raise MarshalError(
                f"{self.name}() takes {len(self.params)} arguments, got {len(args)}"
            )
        for param, value in zip(self.params, args):
            if not compiled.conforms(param.type, value):
                raise MarshalError(
                    f"argument {param.name!r} of {self.name}(): "
                    f"{value!r} does not conform to IDL type {param.type}"
                )

    def check_result(self, value, compiled: "CompiledIdl") -> None:
        """Validate a return value against the declared return type."""
        if not compiled.conforms(self.return_type, value):
            raise MarshalError(
                f"return value of {self.name}(): "
                f"{value!r} does not conform to IDL type {self.return_type}"
            )


@dataclass
class InterfaceDef:
    """Runtime metadata for one interface, inheritance flattened."""

    name: str  # scoped, e.g. "bank::BankAccount"
    operations: dict[str, OperationDef] = field(default_factory=dict)
    bases: tuple[str, ...] = ()

    def operation(self, name: str) -> OperationDef:
        op = self.operations.get(name)
        if op is None:
            raise MarshalError(f"interface {self.name} has no operation {name!r}")
        return op

    @property
    def simple_name(self) -> str:
        return self.name.rsplit("::", 1)[-1]


@dataclass
class CompiledIdl:
    """The compiler's output: interfaces plus generated value classes."""

    interfaces: dict[str, InterfaceDef] = field(default_factory=dict)
    structs: dict[str, type] = field(default_factory=dict)
    exceptions: dict[str, type] = field(default_factory=dict)

    def interface(self, name: str) -> InterfaceDef:
        """Look up an interface by scoped or simple name."""
        if name in self.interfaces:
            return self.interfaces[name]
        matches = [d for n, d in self.interfaces.items() if n.rsplit("::", 1)[-1] == name]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ConfigurationError(f"no interface named {name!r}")
        raise ConfigurationError(f"interface name {name!r} is ambiguous")

    def conforms(self, idl_type: IdlType, value) -> bool:
        """Run-time structural conformance of ``value`` to ``idl_type``."""
        if isinstance(idl_type, BasicType):
            kind = idl_type.kind
            if kind == "void":
                return value is None
            if kind == "boolean":
                return isinstance(value, bool)
            if kind == "octet":
                return isinstance(value, int) and not isinstance(value, bool) and 0 <= value <= 255
            if kind in _INT_RANGES:
                low, high = _INT_RANGES[kind]
                return (
                    isinstance(value, int)
                    and not isinstance(value, bool)
                    and low <= value <= high
                )
            if kind in ("float", "double"):
                return isinstance(value, (int, float)) and not isinstance(value, bool)
            if kind == "string":
                return isinstance(value, str)
            if kind == "any":
                return True
            raise ConfigurationError(f"unknown basic type {kind!r}")
        if isinstance(idl_type, SequenceType):
            return isinstance(value, (list, tuple)) and all(
                self.conforms(idl_type.element, item) for item in value
            )
        if isinstance(idl_type, NamedType):
            cls = self.structs.get(idl_type.name) or self.exceptions.get(idl_type.name)
            if cls is None:
                raise ConfigurationError(f"unresolved type {idl_type.name!r}")
            return isinstance(value, cls)
        raise ConfigurationError(f"unknown IDL type {idl_type!r}")


class _Compiler:
    def __init__(self, registry: TypeRegistry):
        self._registry = registry
        self._out = CompiledIdl()
        # Raw declarations by scoped name, for resolution and inheritance.
        self._decls: dict[str, object] = {}

    # -- pass 1: collect scoped names -------------------------------------

    def _collect(self, definitions: list, scope: str) -> None:
        for decl in definitions:
            scoped = f"{scope}::{decl.name}" if scope else decl.name
            if isinstance(decl, ModuleDecl):
                self._collect(decl.definitions, scoped)
            else:
                if scoped in self._decls:
                    raise ConfigurationError(f"duplicate definition {scoped!r}")
                self._decls[scoped] = decl

    def _resolve(self, name: str, scope: str) -> str:
        """Resolve a possibly relative name against enclosing scopes."""
        if name in self._decls:
            return name
        parts = scope.split("::") if scope else []
        while parts:
            candidate = "::".join(parts) + "::" + name
            if candidate in self._decls:
                return candidate
            parts.pop()
        raise ConfigurationError(f"unresolved name {name!r} (from scope {scope or '<global>'!r})")

    def _resolve_type(self, idl_type: IdlType, scope: str) -> IdlType:
        if isinstance(idl_type, NamedType):
            resolved = self._resolve(idl_type.name, scope)
            decl = self._decls[resolved]
            if isinstance(decl, InterfaceDecl):
                raise ConfigurationError(
                    f"interface {resolved!r} may not be used as a value type "
                    "(object references in parameters are not supported)"
                )
            return NamedType(resolved)
        if isinstance(idl_type, SequenceType):
            return SequenceType(self._resolve_type(idl_type.element, scope))
        return idl_type

    # -- pass 2: build output ---------------------------------------------

    def compile(self, spec: Specification) -> CompiledIdl:
        self._collect(spec.definitions, "")
        # Structs and exceptions first: interfaces refer to them.
        for scoped, decl in self._decls.items():
            if isinstance(decl, StructDecl):
                self._build_struct(scoped, decl)
            elif isinstance(decl, ExceptionDecl):
                self._build_exception(scoped, decl)
        for scoped, decl in self._decls.items():
            if isinstance(decl, InterfaceDecl):
                self._build_interface(scoped)
        return self._out

    def _scope_of(self, scoped: str) -> str:
        return scoped.rsplit("::", 1)[0] if "::" in scoped else ""

    def _build_struct(self, scoped: str, decl: StructDecl) -> None:
        member_names = tuple(m.name for m in decl.members)
        scope = self._scope_of(scoped)
        member_types = {m.name: self._resolve_type(m.type, scope) for m in decl.members}

        def make_init(names: tuple[str, ...]):
            def __init__(self, *args, **kwargs):
                values = dict(zip(names, args))
                values.update(kwargs)
                unknown = set(values) - set(names)
                if unknown:
                    raise TypeError(f"unknown struct members: {sorted(unknown)}")
                for name in names:
                    setattr(self, name, values.get(name))

            return __init__

        def __eq__(self, other):
            return type(self) is type(other) and all(
                getattr(self, n) == getattr(other, n) for n in type(self).__members__
            )

        def __repr__(self):
            body = ", ".join(f"{n}={getattr(self, n)!r}" for n in type(self).__members__)
            return f"{type(self).__name__}({body})"

        cls = type(
            decl.name,
            (),
            {
                "__idl_name__": scoped,
                "__members__": member_names,
                "__member_types__": member_types,
                "__init__": make_init(member_names),
                "__eq__": __eq__,
                "__repr__": __repr__,
                "__hash__": None,
            },
        )
        self._registry.register(scoped, cls)
        self._out.structs[scoped] = cls

    def _build_exception(self, scoped: str, decl: ExceptionDecl) -> None:
        member_names = tuple(m.name for m in decl.members)
        scope = self._scope_of(scoped)
        member_types = {m.name: self._resolve_type(m.type, scope) for m in decl.members}
        cls = type(
            decl.name,
            (IdlRemoteException,),
            {
                "__idl_name__": scoped,
                "__members__": member_names,
                "__member_types__": member_types,
            },
        )

        def to_dict(exc, names=member_names):
            return {name: getattr(exc, name) for name in names}

        def from_dict(state, _cls=cls):
            return _cls(**state)

        self._registry.register(scoped, cls, to_dict, from_dict)
        self._out.exceptions[scoped] = cls

    def _build_interface(self, scoped: str) -> InterfaceDef:
        existing = self._out.interfaces.get(scoped)
        if existing is not None:
            return existing
        decl = self._decls[scoped]
        if not isinstance(decl, InterfaceDecl):
            raise ConfigurationError(f"{scoped!r} is not an interface")
        scope = self._scope_of(scoped)
        interface = InterfaceDef(name=scoped)

        resolved_bases = []
        for base in decl.bases:
            base_scoped = self._resolve(base, scope)
            base_def = self._build_interface(base_scoped)
            resolved_bases.append(base_scoped)
            interface.operations.update(base_def.operations)
        interface.bases = tuple(resolved_bases)

        for attr in decl.attributes:
            self._add_attribute(interface, attr, scope)
        for op in decl.operations:
            self._add_operation(interface, op, scope)

        self._out.interfaces[scoped] = interface
        return interface

    def _add_attribute(self, interface: InterfaceDef, attr: AttributeDecl, scope: str) -> None:
        attr_type = self._resolve_type(attr.type, scope)
        getter = OperationDef(name=f"_get_{attr.name}", return_type=attr_type, params=())
        self._add(interface, getter)
        if not attr.readonly:
            setter = OperationDef(
                name=f"_set_{attr.name}",
                return_type=BasicType("void"),
                params=(ParamDef(name="value", type=attr_type),),
            )
            self._add(interface, setter)

    def _add_operation(self, interface: InterfaceDef, op: Operation, scope: str) -> None:
        params = []
        for param in op.params:
            if param.direction != "in":
                raise ConfigurationError(
                    f"{interface.name}::{op.name}: {param.direction!r} parameters are "
                    "not supported by the Python mapping (use 'in' and a return value)"
                )
            params.append(ParamDef(name=param.name, type=self._resolve_type(param.type, scope)))
        if op.oneway and not (
            isinstance(op.return_type, BasicType) and op.return_type.kind == "void"
        ):
            raise ConfigurationError(f"oneway operation {op.name!r} must return void")
        raises = tuple(self._resolve(name, scope) for name in op.raises)
        for exc_name in raises:
            if exc_name not in self._out.exceptions:
                raise ConfigurationError(f"{op.name!r} raises non-exception {exc_name!r}")
        self._add(
            interface,
            OperationDef(
                name=op.name,
                return_type=self._resolve_type(op.return_type, scope),
                params=tuple(params),
                raises=raises,
                oneway=op.oneway,
            ),
        )

    def _add(self, interface: InterfaceDef, op: OperationDef) -> None:
        if op.name in interface.operations and interface.operations[op.name] != op:
            raise ConfigurationError(
                f"operation {op.name!r} conflicts with an inherited definition "
                f"in {interface.name}"
            )
        interface.operations[op.name] = op


def compile_idl(source: str, registry: TypeRegistry | None = None) -> CompiledIdl:
    """Parse and compile IDL source into runtime metadata.

    Struct and exception classes are registered with ``registry`` (the
    global serialization registry by default) under their scoped IDL names.
    Compiling the same source twice against the global registry is safe for
    identical definitions and rejected for conflicting ones.
    """
    spec = parse_idl(source)
    return _Compiler(registry or global_registry).compile(spec)
