"""Tokenizer for the IDL subset.

Produces a flat list of :class:`Token` objects with line/column positions so
the parser can report useful errors.  Handles ``//`` and ``/* */`` comments,
the ``::`` scope operator, and multi-word keywords are left to the parser
(``long long`` arrives as two ``long`` tokens).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ReproError

KEYWORDS = {
    "module",
    "interface",
    "struct",
    "exception",
    "attribute",
    "readonly",
    "oneway",
    "raises",
    "in",
    "out",
    "inout",
    "void",
    "boolean",
    "octet",
    "short",
    "long",
    "float",
    "double",
    "string",
    "any",
    "sequence",
    "unsigned",
}

PUNCTUATION = {"{", "}", "(", ")", "<", ">", ";", ",", "::", ":"}


class IdlSyntaxError(ReproError):
    """Raised for lexical or syntactic errors in IDL source."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str  # "keyword" | "identifier" | "punct" | "eof"
    value: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Tokenize IDL source; always ends with a single ``eof`` token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def error(message: str) -> IdlSyntaxError:
        return IdlSyntaxError(message, line, column)

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if source.startswith("::", i):
            tokens.append(Token("punct", "::", line, column))
            i += 2
            column += 2
            continue
        if ch in "{}()<>;,:":
            tokens.append(Token("punct", ch, line, column))
            i += 1
            column += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "identifier"
            tokens.append(Token(kind, word, line, column))
            column += i - start
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens
