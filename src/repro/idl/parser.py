"""Recursive-descent parser for the IDL subset.

Grammar (simplified)::

    specification  := definition*
    definition     := module | interface | struct | exception
    module         := "module" IDENT "{" definition* "}" ";"
    interface      := "interface" IDENT inheritance? "{" export* "}" ";"
    inheritance    := ":" scoped_name ("," scoped_name)*
    export         := operation | attribute | struct | exception
    attribute      := "readonly"? "attribute" type IDENT ";"
    operation      := "oneway"? type IDENT "(" params? ")" raises? ";"
    params         := param ("," param)*
    param          := ("in" | "out" | "inout") type IDENT
    raises         := "raises" "(" scoped_name ("," scoped_name)* ")"
    struct         := "struct" IDENT "{" member* "}" ";"
    exception      := "exception" IDENT "{" member* "}" ";"
    member         := type IDENT ";"
    type           := basic | "sequence" "<" type ">" | scoped_name
    basic          := void boolean octet short long float double string any
                      | "unsigned" (short | long) | "long" "long" …
"""

from __future__ import annotations

from repro.idl.ast import (
    AttributeDecl,
    BasicType,
    ExceptionDecl,
    IdlType,
    InterfaceDecl,
    Member,
    ModuleDecl,
    NamedType,
    Operation,
    Param,
    SequenceType,
    Specification,
    StructDecl,
)
from repro.idl.lexer import IdlSyntaxError, Token, tokenize

_BASIC_KEYWORDS = {
    "void",
    "boolean",
    "octet",
    "short",
    "float",
    "double",
    "string",
    "any",
}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> IdlSyntaxError:
        token = token or self._peek()
        return IdlSyntaxError(message, token.line, token.column)

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value or kind
            raise self._error(f"expected {want!r}, found {token.value or 'end of file'!r}")
        return self._next()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._next()
        return None

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Specification:
        spec = Specification()
        while self._peek().kind != "eof":
            spec.definitions.append(self._definition())
        return spec

    def _definition(self):
        token = self._peek()
        if token.kind != "keyword":
            raise self._error(f"expected a definition, found {token.value!r}")
        if token.value == "module":
            return self._module()
        if token.value == "interface":
            return self._interface()
        if token.value == "struct":
            return self._struct()
        if token.value == "exception":
            return self._exception()
        raise self._error(f"unexpected keyword {token.value!r} at top level")

    def _module(self) -> ModuleDecl:
        self._expect("keyword", "module")
        name = self._expect("identifier").value
        self._expect("punct", "{")
        module = ModuleDecl(name)
        while not self._accept("punct", "}"):
            module.definitions.append(self._definition())
        self._expect("punct", ";")
        return module

    def _interface(self) -> InterfaceDecl:
        self._expect("keyword", "interface")
        name = self._expect("identifier").value
        interface = InterfaceDecl(name)
        if self._accept("punct", ":"):
            interface.bases.append(self._scoped_name())
            while self._accept("punct", ","):
                interface.bases.append(self._scoped_name())
        self._expect("punct", "{")
        while not self._accept("punct", "}"):
            interface_member = self._export()
            if isinstance(interface_member, AttributeDecl):
                interface.attributes.append(interface_member)
            else:
                interface.operations.append(interface_member)
        self._expect("punct", ";")
        return interface

    def _export(self):
        token = self._peek()
        if token.kind == "keyword" and token.value in ("readonly", "attribute"):
            return self._attribute()
        return self._operation()

    def _attribute(self) -> AttributeDecl:
        readonly = bool(self._accept("keyword", "readonly"))
        self._expect("keyword", "attribute")
        attr_type = self._type()
        name = self._expect("identifier").value
        self._expect("punct", ";")
        return AttributeDecl(name=name, type=attr_type, readonly=readonly)

    def _operation(self) -> Operation:
        oneway = bool(self._accept("keyword", "oneway"))
        return_type = self._type()
        name = self._expect("identifier").value
        self._expect("punct", "(")
        params: list[Param] = []
        if not self._accept("punct", ")"):
            params.append(self._param())
            while self._accept("punct", ","):
                params.append(self._param())
            self._expect("punct", ")")
        raises: list[str] = []
        if self._accept("keyword", "raises"):
            self._expect("punct", "(")
            raises.append(self._scoped_name())
            while self._accept("punct", ","):
                raises.append(self._scoped_name())
            self._expect("punct", ")")
        self._expect("punct", ";")
        return Operation(
            name=name, return_type=return_type, params=params, raises=raises, oneway=oneway
        )

    def _param(self) -> Param:
        token = self._peek()
        if token.kind == "keyword" and token.value in ("in", "out", "inout"):
            direction = self._next().value
        else:
            raise self._error("parameter must start with in/out/inout")
        param_type = self._type()
        name = self._expect("identifier").value
        return Param(direction=direction, type=param_type, name=name)

    def _struct(self) -> StructDecl:
        self._expect("keyword", "struct")
        name = self._expect("identifier").value
        self._expect("punct", "{")
        struct = StructDecl(name)
        while not self._accept("punct", "}"):
            struct.members.append(self._member())
        self._expect("punct", ";")
        return struct

    def _exception(self) -> ExceptionDecl:
        self._expect("keyword", "exception")
        name = self._expect("identifier").value
        self._expect("punct", "{")
        decl = ExceptionDecl(name)
        while not self._accept("punct", "}"):
            decl.members.append(self._member())
        self._expect("punct", ";")
        return decl

    def _member(self) -> Member:
        member_type = self._type()
        name = self._expect("identifier").value
        self._expect("punct", ";")
        return Member(type=member_type, name=name)

    def _type(self) -> IdlType:
        token = self._peek()
        if token.kind == "keyword":
            if token.value in _BASIC_KEYWORDS:
                self._next()
                return BasicType(token.value)
            if token.value == "unsigned":
                self._next()
                inner = self._peek()
                if inner.kind == "keyword" and inner.value == "short":
                    self._next()
                    return BasicType("unsigned short")
                if inner.kind == "keyword" and inner.value == "long":
                    self._next()
                    if self._accept("keyword", "long"):
                        return BasicType("unsigned long long")
                    return BasicType("unsigned long")
                raise self._error("expected 'short' or 'long' after 'unsigned'")
            if token.value == "long":
                self._next()
                if self._accept("keyword", "long"):
                    return BasicType("long long")
                return BasicType("long")
            if token.value == "short":
                self._next()
                return BasicType("short")
            if token.value == "sequence":
                self._next()
                self._expect("punct", "<")
                element = self._type()
                self._expect("punct", ">")
                return SequenceType(element)
            raise self._error(f"keyword {token.value!r} is not a type")
        if token.kind == "identifier":
            return NamedType(self._scoped_name())
        raise self._error(f"expected a type, found {token.value!r}")

    def _scoped_name(self) -> str:
        parts = [self._expect("identifier").value]
        while self._accept("punct", "::"):
            parts.append(self._expect("identifier").value)
        return "::".join(parts)


def parse_idl(source: str) -> Specification:
    """Parse IDL source text into a :class:`Specification`."""
    return _Parser(tokenize(source)).parse()
