"""The Cactus IDL compiler.

The paper generates CQoS stubs and skeletons automatically from the server's
IDL description.  This package provides that pipeline for a CORBA-flavoured
IDL subset:

- :mod:`repro.idl.lexer` / :mod:`repro.idl.parser` — tokenize and parse IDL
  source (`module`, `interface`, `struct`, `exception`, `attribute`,
  operations with `in` parameters, `raises`, `oneway`, `sequence<T>`);
- :mod:`repro.idl.ast` — the syntax tree and the IDL type model;
- :mod:`repro.idl.compiler` — semantic analysis producing runtime
  :class:`~repro.idl.compiler.InterfaceDef` metadata, run-time value/type
  conformance checks, and registration of struct/exception value types with
  the serialization registry.

Both middleware substrates and the CQoS interceptors are driven purely by
the resulting metadata, which is what makes one IDL description serve the
CORBA-like and RMI-like platforms alike.
"""

from repro.idl.ast import (
    AttributeDecl,
    BasicType,
    ExceptionDecl,
    IdlType,
    InterfaceDecl,
    Member,
    ModuleDecl,
    NamedType,
    Operation,
    Param,
    SequenceType,
    StructDecl,
)
from repro.idl.lexer import IdlSyntaxError, tokenize
from repro.idl.parser import parse_idl
from repro.idl.compiler import (
    CompiledIdl,
    InterfaceDef,
    OperationDef,
    ParamDef,
    compile_idl,
)

__all__ = [
    "tokenize",
    "parse_idl",
    "compile_idl",
    "IdlSyntaxError",
    "CompiledIdl",
    "InterfaceDef",
    "OperationDef",
    "ParamDef",
    "ModuleDecl",
    "InterfaceDecl",
    "StructDecl",
    "ExceptionDecl",
    "AttributeDecl",
    "Operation",
    "Param",
    "Member",
    "IdlType",
    "BasicType",
    "SequenceType",
    "NamedType",
]
