"""Abstract syntax tree and type model for the IDL subset."""

from __future__ import annotations

from dataclasses import dataclass, field


class IdlType:
    """Base class for IDL types."""


@dataclass(frozen=True)
class BasicType(IdlType):
    """A primitive IDL type.

    ``kind`` is one of: void, boolean, octet, short, unsigned short, long,
    unsigned long, long long, unsigned long long, float, double, string, any.
    """

    kind: str

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class SequenceType(IdlType):
    """``sequence<element>``, mapped to a Python list."""

    element: IdlType

    def __str__(self) -> str:
        return f"sequence<{self.element}>"


@dataclass(frozen=True)
class NamedType(IdlType):
    """A reference to a struct, exception, or interface by (scoped) name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Param:
    direction: str  # "in" | "out" | "inout"
    type: IdlType
    name: str


@dataclass
class Operation:
    name: str
    return_type: IdlType
    params: list[Param] = field(default_factory=list)
    raises: list[str] = field(default_factory=list)
    oneway: bool = False


@dataclass
class AttributeDecl:
    """``[readonly] attribute <type> <name>`` — expands to accessor ops."""

    name: str
    type: IdlType
    readonly: bool = False


@dataclass
class Member:
    type: IdlType
    name: str


@dataclass
class StructDecl:
    name: str
    members: list[Member] = field(default_factory=list)


@dataclass
class ExceptionDecl:
    name: str
    members: list[Member] = field(default_factory=list)


@dataclass
class InterfaceDecl:
    name: str
    bases: list[str] = field(default_factory=list)
    operations: list[Operation] = field(default_factory=list)
    attributes: list[AttributeDecl] = field(default_factory=list)


@dataclass
class ModuleDecl:
    name: str
    definitions: list = field(default_factory=list)  # nested decls


@dataclass
class Specification:
    """A parsed IDL file: top-level modules and bare declarations."""

    definitions: list = field(default_factory=list)
