"""Clock abstraction: real wall-clock time and a controllable virtual clock.

Timeliness micro-protocols (:mod:`repro.qos.timeliness`) and the in-memory
network's latency injection need a time source.  Production code uses
:class:`RealClock`; deterministic tests use :class:`VirtualClock`, which only
advances when told to and wakes sleepers in timestamp order.
"""

from __future__ import annotations

import heapq
import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Time source used by the runtime, network, and timeliness protocols."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds`` of this clock's time."""


class RealClock(Clock):
    """Wall-clock time based on :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A manually advanced clock for deterministic tests.

    Threads calling :meth:`sleep` park on a condition variable; a driver
    thread calls :meth:`advance` to move time forward, waking sleepers whose
    deadline has been reached (in deadline order).

    >>> clock = VirtualClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    >>> clock.now()
    1.5
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._cond = threading.Condition()
        # Heap of (deadline, seq, event) for parked sleepers.
        self._sleepers: list[tuple[float, int, threading.Event]] = []
        self._seq = 0

    def now(self) -> float:
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        done = threading.Event()
        with self._cond:
            deadline = self._now + seconds
            self._seq += 1
            heapq.heappush(self._sleepers, (deadline, self._seq, done))
            self._cond.notify_all()
        done.wait()

    def advance(self, seconds: float) -> None:
        """Advance the clock, releasing any sleepers whose deadline passes."""
        with self._cond:
            target = self._now + seconds
            while self._sleepers and self._sleepers[0][0] <= target:
                deadline, _, done = heapq.heappop(self._sleepers)
                self._now = max(self._now, deadline)
                done.set()
            self._now = target
            self._cond.notify_all()

    def pending_sleepers(self) -> int:
        """Return the number of threads currently parked in :meth:`sleep`."""
        with self._cond:
            return len(self._sleepers)
