"""Logging conventions for the repro library.

Everything logs under the ``repro`` namespace with component children
(``repro.qos.passive``, ``repro.net`` …), all silent by default (library
etiquette: a ``NullHandler`` on the root of the namespace).  Applications
opt in with ordinary :mod:`logging` configuration::

    logging.getLogger("repro").setLevel(logging.INFO)
    logging.basicConfig()

Conventions: WARNING for fault handling the operator should know about
(failovers, elections, rejected requests); DEBUG for per-request detail.
"""

from __future__ import annotations

import logging

logging.getLogger("repro").addHandler(logging.NullHandler())


def get_logger(component: str) -> logging.Logger:
    """A logger under the library namespace, e.g. ``get_logger("qos.passive")``."""
    return logging.getLogger(f"repro.{component}")
