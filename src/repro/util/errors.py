"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single except clause while
still being able to discriminate (communication vs. marshalling vs. QoS
policy failures).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CommunicationError(ReproError):
    """A message could not be delivered (endpoint down, partition, loss)."""


class TimeoutError_(CommunicationError):
    """A blocking operation did not complete within its deadline.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TimeoutError`; it subclasses :class:`CommunicationError` because
    callers treat timeouts as a delivery failure.
    """


class MarshalError(ReproError):
    """A value could not be marshalled or unmarshalled."""


class BindError(ReproError):
    """A client could not bind to a named server object."""


class InvocationError(ReproError):
    """A remote invocation failed at the application level.

    Carries the remote exception's type name and message so that the client
    side can re-raise something meaningful without shipping code.
    """

    def __init__(self, type_name: str, message: str):
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.message = message


class ServerFailedError(CommunicationError):
    """The target server (or every replica) has crashed."""


class AccessDeniedError(ReproError):
    """The access-control micro-protocol rejected the request."""


class IntegrityError(ReproError):
    """A message signature did not verify."""


class ConfigurationError(ReproError):
    """An invalid micro-protocol configuration was requested."""
