"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single except clause while
still being able to discriminate (communication vs. marshalling vs. QoS
policy failures).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CommunicationError(ReproError):
    """A message could not be delivered (endpoint down, partition, loss)."""


class TimeoutError_(CommunicationError):
    """A blocking operation did not complete within its deadline.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TimeoutError`; it subclasses :class:`CommunicationError` because
    callers treat timeouts as a delivery failure.
    """


class MarshalError(ReproError):
    """A value could not be marshalled or unmarshalled."""


class BindError(ReproError):
    """A client could not bind to a named server object."""


class InvocationError(ReproError):
    """A remote invocation failed at the application level.

    Carries the remote exception's type name and message so that the client
    side can re-raise something meaningful without shipping code.
    """

    def __init__(self, type_name: str, message: str):
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.message = message


class ServerFailedError(CommunicationError):
    """The target server (or every replica) has crashed."""


class FrameTooLargeError(CommunicationError):
    """A transport frame exceeded the maximum frame size.

    Raised client-side before sending an oversized request; a server that
    receives an oversized frame closes the connection instead (the peer sees
    a plain :class:`CommunicationError`).
    """


class DeadlineExceededError(TimeoutError_):
    """A request's deadline budget expired before it could be served.

    Raised client-side when the deadline passes before (re)sending, and
    server-side by the load-shedding micro-protocol when a request arrives
    already doomed.  Registered wire-safe so a server-side shed rehydrates
    to this same type at the client (see :func:`rehydrate_system_error`).
    """


class CircuitOpenError(CommunicationError):
    """The circuit breaker is open: the call was rejected without sending.

    Deliberately *not* retryable — the breaker exists to stop retries from
    hammering a failing server; only its own half-open probes go through.
    """


class AdmissionRejectedError(CommunicationError):
    """The server's admission control shed the request before invoking it.

    Carries an optional ``retry_after`` hint (seconds) telling the client
    when capacity is expected back — RetryBackoff honours it as a floor on
    its next delay instead of hammering an overloaded server.  The hint is
    encoded into the message text (``retry-after=<seconds>``) so it survives
    the platforms' {type, message} system-error marshalling; the wire-safe
    rehydration below parses it back out.

    Excluded from :data:`NON_RETRYABLE_COMMUNICATION` deliberately *not*:
    plain ``is_retryable`` answers False so naive retry loops (Retransmit)
    do not re-hammer a shedding server; RetryBackoff special-cases this type
    and retries only after the hinted delay.
    """

    _HINT_PREFIX = "retry-after="

    def __init__(self, message: str, retry_after: float | None = None):
        if retry_after is None:
            # Rehydration path: recover the hint from the wire message.
            marker = message.rfind(self._HINT_PREFIX)
            if marker >= 0:
                try:
                    retry_after = float(
                        message[marker + len(self._HINT_PREFIX):].split(")")[0]
                    )
                except ValueError:
                    retry_after = None
        elif self._HINT_PREFIX not in message:
            message = f"{message} ({self._HINT_PREFIX}{retry_after:.4f})"
        super().__init__(message)
        #: Seconds until the server expects to have capacity, or None.
        self.retry_after = retry_after


class ShardMovedError(CommunicationError):
    """The invoked replica no longer owns the object's shard.

    Raised by a retired CQoS skeleton after a shard handoff has drained:
    the naming entry already points at the new owner, so the correct client
    reaction is exactly the transient-communication one — drop the cached
    binding, re-resolve the name, retry.  It is therefore retryable and
    registered wire-safe, so a stale client's retry micro-protocols route
    the next attempt to the new owner instead of failing the request.
    """


class AccessDeniedError(ReproError):
    """The access-control micro-protocol rejected the request."""


class IntegrityError(ReproError):
    """A message signature did not verify."""


class ConfigurationError(ReproError):
    """An invalid micro-protocol configuration was requested."""


# -- failure classification ---------------------------------------------------
#
# One shared answer to "is this worth retrying?" so that every retry-shaped
# micro-protocol (Retransmit, RetryBackoff) and the circuit breaker agree.
#
# Retryable: transient delivery failures — message loss, connection reset,
# partition flaps, plain timeouts.  A lost *request* never executed; a lost
# *reply* re-executes, so non-idempotent operations should pair retries with
# the server-side duplicate-suppression cache (PassiveRepServer's SHARED_SEEN).
#
# Not retryable:
# - ServerFailedError — the host is crashed; failover (replication) is the
#   right reaction, retrying a dead host only delays it;
# - DeadlineExceededError — the budget is spent; retrying cannot un-spend it;
# - CircuitOpenError — the breaker rejected the call locally; retrying
#   would defeat the breaker's purpose;
# - AdmissionRejectedError — the server is shedding load; blind retries feed
#   the overload (RetryBackoff alone retries it, after the hinted delay);
# - everything non-communication (marshalling, access control, application
#   exceptions) — retrying deterministic failures reproduces them.

#: CommunicationError subtypes that must NOT be retried.
NON_RETRYABLE_COMMUNICATION = (
    ServerFailedError,
    DeadlineExceededError,
    CircuitOpenError,
    AdmissionRejectedError,
)


def is_retryable(exception: BaseException | None) -> bool:
    """True when ``exception`` is a transient delivery failure worth retrying."""
    return isinstance(exception, CommunicationError) and not isinstance(
        exception, NON_RETRYABLE_COMMUNICATION
    )


def classify_error(exception: BaseException | None) -> str:
    """Coarse failure class: ``"retryable"``, ``"fatal"``, or ``"application"``.

    ``"fatal"`` covers delivery failures that retrying cannot fix (crashed
    host, spent deadline, open breaker); ``"application"`` is everything
    that reached the servant or failed outside the communication layer.
    """
    if is_retryable(exception):
        return "retryable"
    if isinstance(exception, CommunicationError):
        return "fatal"
    return "application"


# -- wire-safe system errors --------------------------------------------------
#
# The three platforms marshal non-IDL server exceptions as a {type, message}
# system-error description and normally re-raise InvocationError(type,
# message) at the client.  Errors registered here instead rehydrate to their
# real class, preserving their classification across the wire.  The registry
# is a deliberate allowlist: rehydrating e.g. ServerFailedError raised
# *inside* a server-side handler chain would be indistinguishable from a
# locally detected crash of the target itself and would mislead failover.

_WIRE_SAFE_ERRORS: dict[str, type] = {
    "DeadlineExceededError": DeadlineExceededError,
    "AdmissionRejectedError": AdmissionRejectedError,
    "ShardMovedError": ShardMovedError,
}


def rehydrate_system_error(type_name: str, message: str) -> Exception:
    """Build the client-side exception for a remote ``{type, message}``.

    Returns an instance of the registered class for wire-safe types, and an
    :class:`InvocationError` (the historical behaviour) otherwise.
    """
    cls = _WIRE_SAFE_ERRORS.get(type_name)
    if cls is not None:
        return cls(message)
    return InvocationError(type_name, message)
