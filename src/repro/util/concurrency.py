"""Concurrency primitives: priority-aware executor, latches, futures.

The paper's Cactus/J runtime was modified in two ways to support the
timeliness micro-protocols (section 3.4):

1. a variant of ``raise()`` that specifies the priority of the thread used to
   execute the handlers, and
2. handlers bound to an event are executed by a thread with the same priority
   as the raising thread unless specified otherwise.

Python threads have no OS-visible priority, so priority is reproduced at the
library level: every thread carries a *logical priority* in a thread-local
(:func:`current_thread_priority`), and :class:`PriorityExecutor` dispatches
queued work highest-priority-first.  Executor workers adopt the priority a
task was submitted with, which gives exactly the two behaviours above.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Iterator
from contextlib import contextmanager

DEFAULT_PRIORITY = 5
MIN_PRIORITY = 1
MAX_PRIORITY = 10

_tls = threading.local()


def current_thread_priority() -> int:
    """Return the calling thread's logical priority (default 5)."""
    return getattr(_tls, "priority", DEFAULT_PRIORITY)


def set_thread_priority(priority: int) -> None:
    """Set the calling thread's logical priority.

    Clamped to [MIN_PRIORITY, MAX_PRIORITY]; higher numbers run first.
    """
    _tls.priority = max(MIN_PRIORITY, min(MAX_PRIORITY, priority))


@contextmanager
def thread_priority(priority: int) -> Iterator[None]:
    """Context manager that temporarily changes the thread's priority."""
    previous = current_thread_priority()
    set_thread_priority(priority)
    try:
        yield
    finally:
        set_thread_priority(previous)


class CountDownLatch:
    """A latch that releases waiters once it has been counted down to zero.

    Used by the Cactus client to block ``cactus_request()`` until a
    result-returner handler releases the waiting client thread.
    """

    def __init__(self, count: int = 1):
        if count < 0:
            raise ValueError("count must be >= 0")
        self._count = count
        self._cond = threading.Condition()

    def count_down(self) -> None:
        with self._cond:
            if self._count > 0:
                self._count -= 1
                if self._count == 0:
                    self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the count reaches zero; return False on timeout."""
        with self._cond:
            if self._count == 0:
                return True
            return self._cond.wait_for(lambda: self._count == 0, timeout)

    @property
    def count(self) -> int:
        with self._cond:
            return self._count


class ResultFuture:
    """A minimal one-shot future: set a value or an exception once, wait many.

    ``concurrent.futures.Future`` would also work, but this variant lets the
    completer check-and-set atomically (needed by acceptance micro-protocols
    where several replica replies race to complete one request).
    """

    _UNSET = object()

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._value: Any = self._UNSET
        self._exception: BaseException | None = None
        self._done = False

    def set_result(self, value: Any) -> bool:
        """Complete with ``value``; return False if already completed."""
        with self._cond:
            if self._done:
                return False
            self._value = value
            self._done = True
            self._cond.notify_all()
            return True

    def set_exception(self, exc: BaseException) -> bool:
        """Complete with an exception; return False if already completed."""
        with self._cond:
            if self._done:
                return False
            self._exception = exc
            self._done = True
            self._cond.notify_all()
            return True

    def done(self) -> bool:
        with self._cond:
            return self._done

    def result(self, timeout: float | None = None) -> Any:
        """Wait for completion and return the value (or raise the exception)."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._done, timeout):
                from repro.util.errors import TimeoutError_

                raise TimeoutError_("future did not complete in time")
            if self._exception is not None:
                raise self._exception
            return self._value


class PriorityExecutor:
    """A thread pool that runs submitted callables highest-priority-first.

    Tasks submitted with equal priority run in FIFO order.  Worker threads
    adopt the priority the task was submitted with (via
    :func:`set_thread_priority`), reproducing the Cactus/J behaviour that
    event handlers run at the raiser's priority.

    The pool is unbounded in queue size and fixed in worker count; workers
    are daemon threads so an un-shutdown pool never blocks interpreter exit.
    """

    def __init__(self, workers: int = 8, name: str = "cactus-pool"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._name = name
        self._cond = threading.Condition()
        # Heap entries: (-priority, seq, fn, args, future, priority)
        self._queue: list[tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        priority: int | None = None,
        **kwargs: Any,
    ) -> ResultFuture:
        """Queue ``fn(*args, **kwargs)``; return a future for its result.

        ``priority`` defaults to the submitting thread's current priority
        (priority preservation across event raises).
        """
        if priority is None:
            priority = current_thread_priority()
        future = ResultFuture()
        task = (fn, args, kwargs, future, priority)
        with self._cond:
            if self._shutdown:
                raise RuntimeError(f"executor {self._name} is shut down")
            heapq.heappush(self._queue, (-priority, next(self._seq), task))
            self._cond.notify()
        return future

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._shutdown:
                    self._cond.wait()
                if self._shutdown and not self._queue:
                    return
                _, _, task = heapq.heappop(self._queue)
            fn, args, kwargs, future, priority = task
            set_thread_priority(priority)
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - ferried to the future
                future.set_exception(exc)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for queued tasks to drain."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        if wait:
            for t in self._threads:
                t.join(timeout=5.0)

    @property
    def pending(self) -> int:
        """Number of tasks queued but not yet started."""
        with self._cond:
            return len(self._queue)
