"""Shared utilities: clocks, identifiers, errors, and concurrency primitives.

These are the lowest-level substrate pieces used by every other subpackage:
the simulated/real clock abstraction, unique-id generation, the exception
hierarchy, and the priority-aware thread pool that backs the Cactus runtime.
"""

from repro.util.clock import Clock, RealClock, VirtualClock
from repro.util.errors import (
    AccessDeniedError,
    BindError,
    CommunicationError,
    ConfigurationError,
    IntegrityError,
    InvocationError,
    MarshalError,
    ReproError,
    ServerFailedError,
    TimeoutError_,
)
from repro.util.ids import IdGenerator, unique_id
from repro.util.concurrency import (
    CountDownLatch,
    PriorityExecutor,
    ResultFuture,
    current_thread_priority,
    set_thread_priority,
    thread_priority,
)

__all__ = [
    "Clock",
    "RealClock",
    "VirtualClock",
    "ReproError",
    "CommunicationError",
    "MarshalError",
    "BindError",
    "InvocationError",
    "ServerFailedError",
    "AccessDeniedError",
    "IntegrityError",
    "ConfigurationError",
    "TimeoutError_",
    "IdGenerator",
    "unique_id",
    "CountDownLatch",
    "ResultFuture",
    "PriorityExecutor",
    "current_thread_priority",
    "set_thread_priority",
    "thread_priority",
]
