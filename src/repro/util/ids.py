"""Unique identifier generation.

Request ids, connection ids and event-occurrence ids all come from here.
Ids are process-unique, monotonically increasing, and cheap; where global
uniqueness matters (request ids crossing hosts in the simulated network) the
id is qualified with a caller-supplied namespace string.
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Thread-safe monotonically increasing integer ids with a namespace.

    >>> gen = IdGenerator("client-1")
    >>> gen.next_int()
    1
    >>> gen.next_id()
    'client-1:2'
    """

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def next_int(self) -> int:
        """Return the next integer id."""
        with self._lock:
            return next(self._counter)

    def next_id(self) -> str:
        """Return the next id qualified with this generator's namespace."""
        return f"{self.namespace}:{self.next_int()}"


_global = IdGenerator("g")


def unique_id(prefix: str = "id") -> str:
    """Return a process-unique string id with the given prefix."""
    return f"{prefix}-{_global.next_int()}"
