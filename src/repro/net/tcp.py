"""Real TCP loopback transport with multiplexed, correlation-id framing.

Gives integration tests an actual kernel network path: every listener is a
real socket on 127.0.0.1 with an ephemeral port.  A process-local name table
maps ``"host/service"`` addresses to ports so the two transports stay
interchangeable.

Wire format v2 (the default, ``multiplex=True``): every frame carries a
``>IQ`` header — payload length plus a 64-bit correlation id — so one TCP
connection carries many concurrent in-flight calls.  The client side uses a
leader/follower demultiplexer: the first caller waiting for a reply reads
the socket and completes other callers' futures by correlation id, so a
single-client workload takes exactly the old one-reader syscall path (no
background thread, no handoff latency) while concurrent callers pipeline.
The server side reads frames on one thread per connection and dispatches
handlers inline when the socket has no further pipelined data, or onto a
small per-connection worker pool when it does — again keeping the serial
fast path allocation-free.

Wire format v1 (``multiplex=False``): ``>I``-length-prefixed frames with one
in-flight request per connection (a per-connection lock held across the
round trip).  Kept as the measured baseline for the throughput benchmarks.

Crash injection closes the host's server sockets and refuses new accepts
until :meth:`TcpNetwork.recover`, at which point the same listeners re-open
on the same logical addresses (new ports, re-resolved through the name
table) — enough fidelity for failover tests.

Execution engines: this module implements the **threaded** engine (the
measured baseline).  ``TcpNetwork(engine="async")`` — or ``CQOS_ENGINE=async``
in the environment — selects the event-loop sibling in :mod:`repro.net.aio`:
same v2 wire bytes, same Connection/Listener contracts, single-loop framing
with adaptive outbound batching instead of leader/follower threads.
"""

from __future__ import annotations

import itertools
import os
import queue
import select
import socket
import struct
import threading
import time

import concurrent.futures

from repro.net.framing import FRAME_HEADER, LEN_HEADER, MAX_FRAME
from repro.net.transport import (
    Connection,
    FrameHandler,
    Host,
    Listener,
    Network,
    ReplyFuture,
    split_address,
)
from repro.util.errors import (
    CommunicationError,
    ConfigurationError,
    FrameTooLargeError,
    ServerFailedError,
    TimeoutError_,
)
from repro.util.log import get_logger

logger = get_logger("net.tcp")

#: Environment default for :class:`TcpNetwork`'s ``engine`` argument.
ENGINE_ENV = "CQOS_ENGINE"
_ENGINES = ("threaded", "async")

# The wire format itself lives in repro.net.framing (shared with the async
# engine); these aliases keep this module's historical names working.
_LEN = LEN_HEADER
_HDR2 = FRAME_HEADER
_MAX_FRAME = MAX_FRAME

#: Per-connection server worker pool size for multiplexed dispatch.
_SERVER_WORKERS = max(4, min(16, 2 * (os.cpu_count() or 1)))

#: Inline handler duration (seconds) beyond which a connection's pipelined
#: requests are dispatched to the worker pool instead of run inline.
_SLOW_HANDLER = 0.0002


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise CommunicationError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Read one v1 length-prefixed frame from ``sock``."""
    (length,) = _LEN.unpack(_read_exact(sock, _LEN.size))
    if length > _MAX_FRAME:
        raise FrameTooLargeError(f"frame too large: {length} bytes (max {_MAX_FRAME})")
    return _read_exact(sock, length)


def write_frame(sock: socket.socket, data: bytes) -> None:
    """Write one v1 length-prefixed frame to ``sock``.

    Refuses frames over the limit *before* any byte hits the wire, so an
    oversized payload fails fast on the sending side instead of being
    rejected (and reset) by the receiver mid-stream.
    """
    if len(data) > _MAX_FRAME:
        raise FrameTooLargeError(f"frame too large: {len(data)} bytes (max {_MAX_FRAME})")
    sock.sendall(_LEN.pack(len(data)) + data)


def read_frame_mux(sock: socket.socket) -> tuple[int, bytes]:
    """Read one v2 frame; returns ``(request_id, payload)``."""
    length, request_id = _HDR2.unpack(_read_exact(sock, _HDR2.size))
    if length > _MAX_FRAME:
        raise FrameTooLargeError(f"frame too large: {length} bytes (max {_MAX_FRAME})")
    return request_id, _read_exact(sock, length)


def write_frame_mux(sock: socket.socket, request_id: int, data) -> None:
    """Write one v2 frame (length + correlation id header, then payload).

    ``data`` may be any bytes-like object (``bytes``, ``bytearray``,
    ``memoryview``) — the zero-copy encoder paths hand buffers straight in.
    The caller is responsible for serializing writes on the socket.
    """
    size = len(data)
    if size > _MAX_FRAME:
        raise FrameTooLargeError(f"frame too large: {size} bytes (max {_MAX_FRAME})")
    header = _HDR2.pack(size, request_id)
    if size <= 0xFFFF and isinstance(data, bytes):
        sock.sendall(header + data)
    else:
        sock.sendall(header)
        sock.sendall(data)


def _reset_connection(sock: socket.socket) -> None:
    """Close ``sock`` with an immediate RST so a blocked peer fails fast."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _has_pending_data(sock: socket.socket) -> bool:
    """True when more request bytes are already buffered on ``sock``.

    Drives the server's hybrid dispatch: an empty buffer means the client is
    waiting for this reply (serial workload — run the handler inline); a
    non-empty buffer means requests are pipelined (dispatch to the pool so
    they execute concurrently)."""
    try:
        readable, _, _ = select.select([sock], [], [], 0)
    except (OSError, ValueError):
        return False
    return bool(readable)


class _MuxServerPool:
    """Small lazily-started worker pool serving one accepted connection."""

    def __init__(self, name: str):
        self._name = name
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._started = 0

    def dispatch(self, task) -> None:
        with self._lock:
            if self._started < _SERVER_WORKERS:
                self._started += 1
                threading.Thread(
                    target=self._worker,
                    daemon=True,
                    name=f"{self._name}-w{self._started}",
                ).start()
        self._queue.put(task)

    def _worker(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                return
            task()

    def shutdown(self) -> None:
        with self._lock:
            started = self._started
            self._started = _SERVER_WORKERS  # refuse new workers
        for _ in range(started):
            self._queue.put(None)


class _TcpListener(Listener):
    def __init__(self, network: "TcpNetwork", host_name: str, service: str, handler: FrameHandler):
        self._network = network
        self._host_name = host_name
        self._service = service
        self._handler = handler
        self._multiplex = network.multiplex
        self._closed = False
        self._lock = threading.Lock()
        self._server_sock: socket.socket | None = None
        self._suspended = False
        self._accepted: set[socket.socket] = set()
        self._open()

    @property
    def address(self) -> str:
        return f"{self._host_name}/{self._service}"

    def _open(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(64)
        port = sock.getsockname()[1]
        with self._lock:
            # Publishing under the listener lock keeps the name table in
            # step with the socket: a concurrent suspend() cannot slip its
            # close+unpublish between our bind and publish and leave the
            # table pointing at a dead port.  A concurrent resume that
            # already re-opened wins; this socket is surplus.
            if self._closed or self._server_sock is not None:
                sock.close()
                return
            self._server_sock = sock
            self._suspended = False
            self._network._publish(self.address, port)
        threading.Thread(
            target=self._accept_loop, args=(sock,), daemon=True, name=f"tcp-accept-{self.address}"
        ).start()

    def _accept_loop(self, server_sock: socket.socket) -> None:
        while True:
            try:
                conn, _ = server_sock.accept()
            except OSError:
                return  # socket closed
            with self._lock:
                # A connection can sit in the kernel backlog across a crash;
                # accepting it after suspend() must not resurrect the host.
                if self._suspended:
                    stale = True
                else:
                    self._accepted.add(conn)
                    stale = False
            if stale:
                _reset_connection(conn)
                continue
            serve = self._serve_mux if self._multiplex else self._serve
            threading.Thread(
                target=serve, args=(conn,), daemon=True, name=f"tcp-serve-{self.address}"
            ).start()

    # -- v1 serving: one request in flight per connection ------------------

    def _serve(self, conn: socket.socket) -> None:
        try:
            with conn:
                try:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:
                    return  # crash injection closed the socket before we ran
                while True:
                    try:
                        request = read_frame(conn)
                    except FrameTooLargeError as exc:
                        # The payload was never read; the stream is now
                        # unframed garbage.  Reset so the (possibly still
                        # sending) peer fails promptly with a connection
                        # error instead of blocking until its timeout.
                        logger.warning("%s: %s; resetting connection", self.address, exc)
                        _reset_connection(conn)
                        return
                    except (CommunicationError, OSError):
                        return
                    with self._lock:
                        suspended = self._suspended
                    if suspended:
                        # Crashed between reading the request and serving it:
                        # a dead host must not execute work.
                        _reset_connection(conn)
                        return
                    try:
                        reply = self._handler(request)
                    except BaseException:  # noqa: BLE001 - keep serving thread honest
                        # Handlers marshal their own errors; one that raises
                        # anyway must not silently strand the blocked client.
                        logger.exception("%s: handler raised; resetting connection", self.address)
                        _reset_connection(conn)
                        return
                    try:
                        write_frame(conn, reply)
                    except FrameTooLargeError as exc:
                        logger.warning("%s: reply %s; resetting connection", self.address, exc)
                        _reset_connection(conn)
                        return
                    except OSError:
                        return
        finally:
            with self._lock:
                self._accepted.discard(conn)

    # -- v2 serving: correlation-id multiplexing ---------------------------

    def _serve_mux(self, conn: socket.socket) -> None:
        pool = _MuxServerPool(f"tcp-mux-{self.address}")
        write_lock = threading.Lock()
        # Concurrency only pays when the handler blocks or computes for a
        # while; for sub-_SLOW_HANDLER handlers the pool handoff would cost
        # more than it buys.  The flag is sticky per connection: the first
        # observed slow inline execution routes all further pipelined
        # requests to the pool.
        handler_is_slow = False
        try:
            with conn:
                try:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:
                    return  # crash injection closed the socket before we ran
                while True:
                    try:
                        request_id, request = read_frame_mux(conn)
                    except FrameTooLargeError as exc:
                        logger.warning("%s: %s; resetting connection", self.address, exc)
                        _reset_connection(conn)
                        return
                    except (CommunicationError, OSError):
                        return
                    with self._lock:
                        suspended = self._suspended
                    if suspended:
                        _reset_connection(conn)
                        return
                    if handler_is_slow and _has_pending_data(conn):
                        # Pipelined requests behind this one and a handler
                        # worth overlapping: run it on the pool so the
                        # reader keeps draining the socket and in-flight
                        # requests execute concurrently.
                        pool.dispatch(
                            lambda rid=request_id, req=request: self._serve_one(
                                conn, write_lock, rid, req
                            )
                        )
                    else:
                        # Fast or serial workload: inline execution, no
                        # handoff (the single-client path stays syscall-
                        # identical to v1).
                        started = time.monotonic()
                        if not self._serve_one(conn, write_lock, request_id, request):
                            return
                        if time.monotonic() - started >= _SLOW_HANDLER:
                            handler_is_slow = True
        finally:
            pool.shutdown()
            with self._lock:
                self._accepted.discard(conn)

    def _serve_one(
        self, conn: socket.socket, write_lock: threading.Lock, request_id: int, request: bytes
    ) -> bool:
        """Execute one request and write its correlated reply.

        Returns False when the connection was reset and serving must stop.
        """
        try:
            reply = self._handler(request)
        except BaseException:  # noqa: BLE001 - keep serving thread honest
            logger.exception("%s: handler raised; resetting connection", self.address)
            _reset_connection(conn)
            return False
        try:
            with write_lock:
                write_frame_mux(conn, request_id, reply)
        except FrameTooLargeError as exc:
            logger.warning("%s: reply %s; resetting connection", self.address, exc)
            _reset_connection(conn)
            return False
        except OSError:
            return False
        return True

    # -- crash / recovery --------------------------------------------------

    def suspend(self) -> None:
        """Crash injection: close the server socket and every live connection."""
        with self._lock:
            self._suspended = True
            if self._server_sock is not None:
                try:
                    self._server_sock.close()
                finally:
                    self._server_sock = None
            accepted = list(self._accepted)
            self._accepted.clear()
            # Unpublish under the same lock as the socket close, mirroring
            # _open's publish, so crash/recover churn can never interleave
            # into a table entry for a closed socket.
            self._network._unpublish(self.address)
        for conn in accepted:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def resume(self) -> None:
        """Recovery: re-open on a fresh port under the same address."""
        with self._lock:
            already_open = self._server_sock is not None
        if not already_open and not self._closed:
            self._open()

    def close(self) -> None:
        self._closed = True
        self.suspend()
        self._network._drop_listener(self)


class _TcpConnection(Connection):
    """v1 client connection: lazy, auto-reconnecting, one call in flight.

    The socket is (re-)established per call attempt if needed, so a server
    that crashed and recovered on a new port is transparently re-resolved.
    Kept as the measured pre-multiplexing baseline (``multiplex=False``).
    """

    def __init__(self, network: "TcpNetwork", address: str):
        self._network = network
        self._address = address
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._closed = False

    def _ensure_socket(self) -> socket.socket:
        if self._sock is None:
            port = self._network._resolve(self._address)
            if port is None:
                raise ServerFailedError(f"no listener at {self._address}")
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        if self._closed:
            raise CommunicationError("connection is closed")
        with self._lock:
            try:
                sock = self._ensure_socket()
                sock.settimeout(timeout)
                write_frame(sock, data)
                return read_frame(sock)
            except socket.timeout as exc:
                self._reset()
                raise TimeoutError_(f"call to {self._address} timed out") from exc
            except (ServerFailedError, TimeoutError_):
                self._reset()
                raise  # already precise; don't flatten the subtype
            except (OSError, CommunicationError) as exc:
                self._reset()
                raise CommunicationError(f"call to {self._address} failed: {exc}") from exc

    def _reset(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._reset()


class _PendingReply:
    """One in-flight request awaiting its correlated reply.

    ``future`` is set only for :meth:`Connection.call_async` submissions:
    settling the slot then also settles the caller's future (the slot stays
    the single source of truth so sync and async waiters share every
    completion path — leader reads, demux reads, resets).
    """

    __slots__ = ("value", "error", "done", "future")

    def __init__(self, future: concurrent.futures.Future | None = None) -> None:
        self.value: bytes | None = None
        self.error: BaseException | None = None
        self.done = False
        self.future = future

    def settle(self, value: bytes | None, error: BaseException | None) -> None:
        """Complete the slot (and its future, if any).  Idempotent."""
        if self.done:
            return
        self.value = value
        self.error = error
        self.done = True
        if self.future is not None:
            if error is not None:
                self.future.set_exception(error)
            else:
                self.future.set_result(value)


class _TcpMuxConnection(Connection):
    """v2 client connection: many concurrent in-flight calls, one socket.

    Concurrency model (leader/follower):

    - a *writer lock* is held only around ``sendall`` — requests from many
      threads interleave frame-atomically on the wire;
    - the first caller awaiting a reply becomes the *leader* and reads the
      socket, completing every arriving reply's pending slot by correlation
      id; other callers (followers) wait on the shared condition;
    - when the leader's own reply arrives it steps down and wakes a
      follower to take over the readership.

    A follower's timeout discards its pending slot and leaves the stream
    intact (its late reply is dropped on arrival); a *leader* timeout resets
    the connection, because the read may have stopped mid-frame.  Crash
    injection surfaces as a read error that fails every pending call, and
    the next call transparently re-resolves through the name table.
    """

    def __init__(self, network: "TcpNetwork", address: str):
        self._network = network
        self._address = address
        self._cond = threading.Condition()
        self._write_lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._pending: dict[int, _PendingReply] = {}
        self._ids = itertools.count(1)
        self._reader_active = False
        self._closed = False
        # Background demultiplexer: started lazily by the first call_async
        # so purely-synchronous workloads keep the historical zero-thread
        # leader/follower path (and its leader-timeout reset semantics).
        self._demux_started = False

    # -- socket management (called with self._cond held) -------------------

    def _ensure_socket(self) -> socket.socket:
        if self._sock is None:
            port = self._network._resolve(self._address)
            if port is None:
                raise ServerFailedError(f"no listener at {self._address}")
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)
            self._sock = sock
        return self._sock

    def _fail_all_locked(self, sock: socket.socket | None, error: BaseException) -> None:
        """Fail every pending call and drop the socket (cond held)."""
        if sock is not None and self._sock is sock:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        for slot in self._pending.values():
            slot.settle(None, error)
        self._pending.clear()
        self._reader_active = False
        self._cond.notify_all()

    # -- Connection interface ----------------------------------------------

    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        if len(data) > _MAX_FRAME:
            raise FrameTooLargeError(
                f"frame too large: {len(data)} bytes (max {_MAX_FRAME})"
            )
        slot = _PendingReply()
        with self._cond:
            if self._closed:
                raise CommunicationError("connection is closed")
            try:
                sock = self._ensure_socket()
            except ServerFailedError:
                raise
            except OSError as exc:
                raise CommunicationError(
                    f"call to {self._address} failed: {exc}"
                ) from exc
            request_id = next(self._ids)
            self._pending[request_id] = slot
        try:
            with self._write_lock:
                write_frame_mux(sock, request_id, data)
        except socket.timeout as exc:
            with self._cond:
                self._fail_all_locked(
                    sock, CommunicationError(f"call to {self._address} failed: {exc}")
                )
            raise TimeoutError_(f"call to {self._address} timed out") from exc
        except OSError as exc:
            error = CommunicationError(f"call to {self._address} failed: {exc}")
            with self._cond:
                self._fail_all_locked(sock, error)
            raise error from exc
        return self._await_reply(sock, request_id, slot, timeout)

    def _await_reply(
        self,
        sock: socket.socket,
        request_id: int,
        slot: _PendingReply,
        timeout: float | None,
    ) -> bytes:
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        while True:
            with self._cond:
                if slot.done:
                    break
                if not self._reader_active:
                    self._reader_active = True
                    lead = True
                else:
                    lead = False
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - _time.monotonic()
                        if remaining <= 0:
                            # Follower timeout: drop only this call; the
                            # stream stays framed and the late reply is
                            # discarded by the leader when it arrives.
                            self._pending.pop(request_id, None)
                            raise TimeoutError_(f"call to {self._address} timed out")
                    self._cond.wait(remaining)
                    continue
            if lead:
                self._lead_reads(sock, request_id, slot, deadline)
        if slot.error is not None:
            raise slot.error
        return slot.value  # type: ignore[return-value]

    def _lead_reads(
        self,
        sock: socket.socket,
        request_id: int,
        slot: _PendingReply,
        deadline: float | None,
    ) -> None:
        """Read frames as the leader until our reply arrives (or error)."""
        import time as _time

        while True:
            try:
                if deadline is not None:
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        raise socket.timeout("deadline expired")
                    sock.settimeout(remaining)
                else:
                    sock.settimeout(None)
                reply_id, payload = read_frame_mux(sock)
            except socket.timeout as exc:
                # Leader timeout: the read may have stopped mid-frame, so
                # the stream can no longer be trusted — reset everything.
                with self._cond:
                    slot.settle(None, TimeoutError_(f"call to {self._address} timed out"))
                    self._fail_all_locked(
                        sock,
                        CommunicationError(f"call to {self._address} timed out"),
                    )
                raise slot.error from exc
            except (OSError, CommunicationError, FrameTooLargeError) as exc:
                error = CommunicationError(f"call to {self._address} failed: {exc}")
                with self._cond:
                    self._fail_all_locked(sock, error)
                return  # our own slot was failed by _fail_all_locked
            with self._cond:
                arrived = self._pending.pop(reply_id, None)
                if arrived is not None:
                    arrived.settle(payload, None)
                if reply_id == request_id:
                    # Step down and promote a waiting follower (if any).
                    self._reader_active = False
                    self._cond.notify_all()
                    return
                if arrived is not None:
                    self._cond.notify_all()

    # -- non-blocking submit (futures API) ---------------------------------

    def call_async(self, data: bytes, timeout: float | None = None) -> ReplyFuture:
        """Register a correlation id, write the frame, return immediately.

        Never raises: submit-time failures (oversized frame, dead endpoint,
        write error) settle the returned future, so a scatter loop records
        them as branch outcomes instead of aborting mid-fan-out.  Replies
        are completed by whichever reader is active — a synchronous caller
        leading reads, or the lazily-started background demultiplexer that
        covers the window when only async calls are in flight.  ``timeout``
        is enforced by the consumer (``result(timeout)``); an abandoned
        call's pending entry is reclaimed via :meth:`ReplyFuture.abandon`.
        """
        if len(data) > _MAX_FRAME:
            return ReplyFuture.failed(
                FrameTooLargeError(
                    f"frame too large: {len(data)} bytes (max {_MAX_FRAME})"
                )
            )
        future: concurrent.futures.Future = concurrent.futures.Future()
        slot = _PendingReply(future)
        with self._cond:
            if self._closed:
                return ReplyFuture.failed(CommunicationError("connection is closed"))
            try:
                sock = self._ensure_socket()
            except ServerFailedError as exc:
                return ReplyFuture.failed(exc)
            except OSError as exc:
                return ReplyFuture.failed(
                    CommunicationError(f"call to {self._address} failed: {exc}")
                )
            request_id = next(self._ids)
            self._pending[request_id] = slot
            if not self._demux_started:
                self._demux_started = True
                threading.Thread(
                    target=self._demux_loop,
                    name=f"tcp-demux-{self._address}",
                    daemon=True,
                ).start()
        reply = ReplyFuture(future, abandon=lambda: self._abandon(request_id))
        try:
            with self._write_lock:
                write_frame_mux(sock, request_id, data)
        except socket.timeout as exc:
            with self._cond:
                slot.settle(None, TimeoutError_(f"call to {self._address} timed out"))
                self._fail_all_locked(
                    sock, CommunicationError(f"call to {self._address} failed: {exc}")
                )
            return reply
        except OSError as exc:
            with self._cond:
                self._fail_all_locked(
                    sock, CommunicationError(f"call to {self._address} failed: {exc}")
                )
            return reply
        with self._cond:
            # Wake the demultiplexer if no reader currently owns the socket.
            if not self._reader_active:
                self._cond.notify_all()
        return reply

    def _abandon(self, request_id: int) -> None:
        """Reclaim one pending entry; a late reply is discarded on arrival."""
        with self._cond:
            self._pending.pop(request_id, None)
            self._cond.notify_all()

    def _demux_loop(self) -> None:
        """Take the readership whenever async calls are in flight unled.

        The demultiplexer polls with :func:`select.select` *between* frames
        and only commits to a blocking frame read once the socket is
        readable, so its idle ticks can never stop mid-frame — unlike a
        leader deadline, a poll timeout leaves the stream intact.  It steps
        down (releasing the readership to synchronous leaders) whenever the
        pending map drains.
        """
        while True:
            with self._cond:
                sock = None
                while sock is None:
                    if self._closed:
                        return
                    if (
                        not self._reader_active
                        and self._pending
                        and self._sock is not None
                    ):
                        self._reader_active = True
                        sock = self._sock
                    else:
                        self._cond.wait(0.5)
            self._demux_reads(sock)

    def _demux_reads(self, sock: socket.socket) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
                if self._sock is not sock:
                    # A reset replaced the socket; leadership was already
                    # released by _fail_all_locked.
                    return
                if not self._pending:
                    self._reader_active = False
                    self._cond.notify_all()
                    return
            try:
                readable, _, _ = select.select([sock], [], [], 0.05)
            except (OSError, ValueError):
                readable = []
                with self._cond:
                    if self._sock is sock:
                        self._fail_all_locked(
                            sock,
                            CommunicationError(f"call to {self._address} failed"),
                        )
                    return
            if not readable:
                continue
            try:
                sock.settimeout(None)
                reply_id, payload = read_frame_mux(sock)
            except (OSError, CommunicationError, FrameTooLargeError) as exc:
                with self._cond:
                    if self._sock is sock:
                        self._fail_all_locked(
                            sock,
                            CommunicationError(
                                f"call to {self._address} failed: {exc}"
                            ),
                        )
                return
            with self._cond:
                arrived = self._pending.pop(reply_id, None)
                if arrived is not None:
                    arrived.settle(payload, None)
                    self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._fail_all_locked(self._sock, CommunicationError("connection is closed"))


class _TcpHost(Host):
    def __init__(self, network: "TcpNetwork", name: str):
        super().__init__(name)
        self._network = network

    def listen(self, service: str, handler: FrameHandler) -> Listener:
        address = f"{self.name}/{service}"
        # Atomic claim closes the check-then-act race: two concurrent
        # listen() calls on one address cannot both pass a resolve() check.
        self._network._claim(address)
        try:
            if self._network.engine == "async":
                from repro.net.aio import AsyncTcpListener

                listener: Listener = AsyncTcpListener(
                    self._network, self.name, service, handler
                )
            else:
                listener = _TcpListener(self._network, self.name, service, handler)
        except BaseException:
            self._network._release(address)
            raise
        self._network._track_listener(self.name, listener)
        return listener

    def connect(self, address: str) -> Connection:
        split_address(address)
        if self._network.engine == "async":
            from repro.net.aio import AsyncMuxConnection

            return AsyncMuxConnection(
                self._network, address, self._network._engine_runtime(self.name)
            )
        if self._network.multiplex:
            return _TcpMuxConnection(self._network, address)
        return _TcpConnection(self._network, address)


class TcpNetwork(Network):
    """A set of logical hosts backed by loopback TCP sockets.

    ``multiplex`` selects the wire format: v2 correlation-id frames with
    concurrent in-flight calls per connection (default), or the v1
    one-in-flight protocol kept as the benchmark baseline.  Both ends of a
    network share the flag, so framing always matches.

    ``engine`` selects the concurrency machinery under the v2 format:
    ``"threaded"`` (this module — leader/follower client demux, thread-per-
    connection server) or ``"async"`` (:mod:`repro.net.aio` — one event loop
    with adaptive outbound batching, servants on a bounded executor).  The
    default comes from ``CQOS_ENGINE`` in the environment, falling back to
    threaded.  The async engine requires the multiplexed wire format.
    """

    def __init__(self, multiplex: bool = True, engine: str | None = None) -> None:
        if engine is None:
            engine = os.environ.get(ENGINE_ENV, "threaded") or "threaded"
            if engine == "async" and not multiplex:
                # The environment variable sets a session default, not a
                # mandate: the serialized v1 wire format has no event-loop
                # implementation, so it keeps the threaded engine.
                engine = "threaded"
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"unknown TCP engine {engine!r}; expected one of {_ENGINES}"
            )
        if engine == "async" and not multiplex:
            raise ConfigurationError(
                "the async engine requires the multiplexed (v2) wire format"
            )
        # The name table is mutated from listener open/suspend paths that run
        # on accept/recovery threads and read from every client call: all
        # access goes through the locked helpers below.
        self.multiplex = multiplex
        self.engine = engine
        # One AsyncEngineRuntime per logical host, created lazily: each
        # host gets its own event loop (as separate processes would), so
        # the client and server ends of a link pipeline in parallel.
        self._aio: dict[str, object] = {}
        self._resolve_table: dict[str, int] = {}
        self._claimed: set[str] = set()
        self._hosts: dict[str, _TcpHost] = {}
        self._listeners: dict[str, list[Listener]] = {}
        self._lock = threading.Lock()

    def _engine_runtime(self, host_name: str):
        """The :class:`~repro.net.aio.AsyncEngineRuntime` for one host."""
        with self._lock:
            runtime = self._aio.get(host_name)
            if runtime is None:
                from repro.net.aio import AsyncEngineRuntime

                runtime = AsyncEngineRuntime(name=f"cqos-aio-{host_name}")
                self._aio[host_name] = runtime
            return runtime

    def batch_stats(self) -> dict | None:
        """Outbound batching counters summed over every host's runtime
        (async engine only; None when no runtime exists)."""
        with self._lock:
            runtimes = list(self._aio.values())
        if not runtimes:
            return None
        totals = {"frames_out": 0, "flushes": 0, "bytes_out": 0}
        for runtime in runtimes:
            stats = runtime.batch_stats()
            for key in totals:
                totals[key] += stats[key]
        totals["frames_per_flush"] = (
            round(totals["frames_out"] / totals["flushes"], 3)
            if totals["flushes"]
            else None
        )
        return totals

    # -- name table (lock-guarded) ----------------------------------------

    def _claim(self, address: str) -> None:
        """Reserve ``address`` for a new listener (atomic duplicate check).

        A claim outlives crash injection — a crashed listener still owns its
        address until closed — so racing or post-crash duplicate listens
        fail instead of colliding at recovery.
        """
        with self._lock:
            if address in self._claimed:
                raise CommunicationError(f"address already in use: {address}")
            self._claimed.add(address)

    def _release(self, address: str) -> None:
        with self._lock:
            self._claimed.discard(address)

    def _publish(self, address: str, port: int) -> None:
        with self._lock:
            self._resolve_table[address] = port

    def _unpublish(self, address: str) -> None:
        with self._lock:
            self._resolve_table.pop(address, None)

    def _resolve(self, address: str) -> int | None:
        with self._lock:
            return self._resolve_table.get(address)

    def host(self, name: str) -> Host:
        with self._lock:
            existing = self._hosts.get(name)
            if existing is None:
                existing = _TcpHost(self, name)
                self._hosts[name] = existing
            return existing

    def _track_listener(self, host_name: str, listener: Listener) -> None:
        with self._lock:
            self._listeners.setdefault(host_name, []).append(listener)

    def _drop_listener(self, listener: Listener) -> None:
        with self._lock:
            for listeners in self._listeners.values():
                if listener in listeners:
                    listeners.remove(listener)
            self._claimed.discard(listener.address)

    def crash(self, host_name: str) -> None:
        with self._lock:
            listeners = list(self._listeners.get(host_name, []))
        for listener in listeners:
            listener.suspend()

    def recover(self, host_name: str) -> None:
        with self._lock:
            listeners = list(self._listeners.get(host_name, []))
        for listener in listeners:
            listener.resume()

    def close(self) -> None:
        with self._lock:
            all_listeners = [l for ls in self._listeners.values() for l in ls]
            self._listeners.clear()
            self._hosts.clear()
            self._claimed.clear()
        for listener in all_listeners:
            listener.close()
        with self._lock:
            runtimes, self._aio = list(self._aio.values()), {}
        for runtime in runtimes:
            runtime.shutdown()
