"""Real TCP loopback transport with length-prefixed frames.

Gives integration tests an actual kernel network path: every listener is a
real socket on 127.0.0.1 with an ephemeral port, served by a thread per
accepted connection.  A process-local name table maps ``"host/service"``
addresses to ports so the two transports stay interchangeable.

Frames are ``>I``-length-prefixed byte strings; each ``call`` writes one
request frame and blocks for one reply frame (a per-connection lock keeps
concurrent callers from interleaving frames).

Crash injection closes the host's server sockets and refuses new accepts
until :meth:`TcpNetwork.recover`, at which point the same listeners re-open
on the same logical addresses (new ports, re-resolved through the name
table) — enough fidelity for failover tests.
"""

from __future__ import annotations

import socket
import struct
import threading

from repro.net.transport import Connection, FrameHandler, Host, Listener, Network, split_address
from repro.util.errors import (
    CommunicationError,
    FrameTooLargeError,
    ServerFailedError,
    TimeoutError_,
)
from repro.util.log import get_logger

logger = get_logger("net.tcp")

_LEN = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise CommunicationError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame from ``sock``."""
    (length,) = _LEN.unpack(_read_exact(sock, _LEN.size))
    if length > _MAX_FRAME:
        raise FrameTooLargeError(f"frame too large: {length} bytes (max {_MAX_FRAME})")
    return _read_exact(sock, length)


def write_frame(sock: socket.socket, data: bytes) -> None:
    """Write one length-prefixed frame to ``sock``.

    Refuses frames over the limit *before* any byte hits the wire, so an
    oversized payload fails fast on the sending side instead of being
    rejected (and reset) by the receiver mid-stream.
    """
    if len(data) > _MAX_FRAME:
        raise FrameTooLargeError(f"frame too large: {len(data)} bytes (max {_MAX_FRAME})")
    sock.sendall(_LEN.pack(len(data)) + data)


def _reset_connection(sock: socket.socket) -> None:
    """Close ``sock`` with an immediate RST so a blocked peer fails fast."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _TcpListener(Listener):
    def __init__(self, network: "TcpNetwork", host_name: str, service: str, handler: FrameHandler):
        self._network = network
        self._host_name = host_name
        self._service = service
        self._handler = handler
        self._closed = False
        self._lock = threading.Lock()
        self._server_sock: socket.socket | None = None
        self._suspended = False
        self._accepted: set[socket.socket] = set()
        self._open()

    @property
    def address(self) -> str:
        return f"{self._host_name}/{self._service}"

    def _open(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(64)
        with self._lock:
            self._server_sock = sock
            self._suspended = False
        port = sock.getsockname()[1]
        self._network._publish(self.address, port)
        threading.Thread(
            target=self._accept_loop, args=(sock,), daemon=True, name=f"tcp-accept-{self.address}"
        ).start()

    def _accept_loop(self, server_sock: socket.socket) -> None:
        while True:
            try:
                conn, _ = server_sock.accept()
            except OSError:
                return  # socket closed
            with self._lock:
                # A connection can sit in the kernel backlog across a crash;
                # accepting it after suspend() must not resurrect the host.
                if self._suspended:
                    stale = True
                else:
                    self._accepted.add(conn)
                    stale = False
            if stale:
                _reset_connection(conn)
                continue
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True, name=f"tcp-serve-{self.address}"
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            with conn:
                try:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:
                    return  # crash injection closed the socket before we ran
                while True:
                    try:
                        request = read_frame(conn)
                    except FrameTooLargeError as exc:
                        # The payload was never read; the stream is now
                        # unframed garbage.  Reset so the (possibly still
                        # sending) peer fails promptly with a connection
                        # error instead of blocking until its timeout.
                        logger.warning("%s: %s; resetting connection", self.address, exc)
                        _reset_connection(conn)
                        return
                    except (CommunicationError, OSError):
                        return
                    with self._lock:
                        suspended = self._suspended
                    if suspended:
                        # Crashed between reading the request and serving it:
                        # a dead host must not execute work.
                        _reset_connection(conn)
                        return
                    try:
                        reply = self._handler(request)
                    except BaseException:  # noqa: BLE001 - keep serving thread honest
                        # Handlers marshal their own errors; one that raises
                        # anyway must not silently strand the blocked client.
                        logger.exception("%s: handler raised; resetting connection", self.address)
                        _reset_connection(conn)
                        return
                    try:
                        write_frame(conn, reply)
                    except FrameTooLargeError as exc:
                        logger.warning("%s: reply %s; resetting connection", self.address, exc)
                        _reset_connection(conn)
                        return
                    except OSError:
                        return
        finally:
            with self._lock:
                self._accepted.discard(conn)

    def suspend(self) -> None:
        """Crash injection: close the server socket and every live connection."""
        with self._lock:
            self._suspended = True
            if self._server_sock is not None:
                try:
                    self._server_sock.close()
                finally:
                    self._server_sock = None
            accepted = list(self._accepted)
            self._accepted.clear()
        for conn in accepted:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._network._unpublish(self.address)

    def resume(self) -> None:
        """Recovery: re-open on a fresh port under the same address."""
        with self._lock:
            already_open = self._server_sock is not None
        if not already_open and not self._closed:
            self._open()

    def close(self) -> None:
        self._closed = True
        self.suspend()
        self._network._drop_listener(self)


class _TcpConnection(Connection):
    """Lazy, auto-reconnecting client connection.

    The socket is (re-)established per call attempt if needed, so a server
    that crashed and recovered on a new port is transparently re-resolved.
    """

    def __init__(self, network: "TcpNetwork", address: str):
        self._network = network
        self._address = address
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._closed = False

    def _ensure_socket(self) -> socket.socket:
        if self._sock is None:
            port = self._network._resolve(self._address)
            if port is None:
                raise ServerFailedError(f"no listener at {self._address}")
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        if self._closed:
            raise CommunicationError("connection is closed")
        with self._lock:
            try:
                sock = self._ensure_socket()
                sock.settimeout(timeout)
                write_frame(sock, data)
                return read_frame(sock)
            except socket.timeout as exc:
                self._reset()
                raise TimeoutError_(f"call to {self._address} timed out") from exc
            except (ServerFailedError, TimeoutError_):
                self._reset()
                raise  # already precise; don't flatten the subtype
            except (OSError, CommunicationError) as exc:
                self._reset()
                raise CommunicationError(f"call to {self._address} failed: {exc}") from exc

    def _reset(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._reset()


class _TcpHost(Host):
    def __init__(self, network: "TcpNetwork", name: str):
        super().__init__(name)
        self._network = network

    def listen(self, service: str, handler: FrameHandler) -> Listener:
        address = f"{self.name}/{service}"
        if self._network._resolve(address) is not None:
            raise CommunicationError(f"address already in use: {address}")
        listener = _TcpListener(self._network, self.name, service, handler)
        self._network._track_listener(self.name, listener)
        return listener

    def connect(self, address: str) -> Connection:
        split_address(address)
        return _TcpConnection(self._network, address)


class TcpNetwork(Network):
    """A set of logical hosts backed by loopback TCP sockets."""

    def __init__(self) -> None:
        # The name table is mutated from listener open/suspend paths that run
        # on accept/recovery threads and read from every client call: all
        # access goes through the locked helpers below.
        self._resolve_table: dict[str, int] = {}
        self._hosts: dict[str, _TcpHost] = {}
        self._listeners: dict[str, list[_TcpListener]] = {}
        self._lock = threading.Lock()

    # -- name table (lock-guarded) ----------------------------------------

    def _publish(self, address: str, port: int) -> None:
        with self._lock:
            self._resolve_table[address] = port

    def _unpublish(self, address: str) -> None:
        with self._lock:
            self._resolve_table.pop(address, None)

    def _resolve(self, address: str) -> int | None:
        with self._lock:
            return self._resolve_table.get(address)

    def host(self, name: str) -> Host:
        with self._lock:
            existing = self._hosts.get(name)
            if existing is None:
                existing = _TcpHost(self, name)
                self._hosts[name] = existing
            return existing

    def _track_listener(self, host_name: str, listener: _TcpListener) -> None:
        with self._lock:
            self._listeners.setdefault(host_name, []).append(listener)

    def _drop_listener(self, listener: _TcpListener) -> None:
        with self._lock:
            for listeners in self._listeners.values():
                if listener in listeners:
                    listeners.remove(listener)

    def crash(self, host_name: str) -> None:
        with self._lock:
            listeners = list(self._listeners.get(host_name, []))
        for listener in listeners:
            listener.suspend()

    def recover(self, host_name: str) -> None:
        with self._lock:
            listeners = list(self._listeners.get(host_name, []))
        for listener in listeners:
            listener.resume()

    def close(self) -> None:
        with self._lock:
            all_listeners = [l for ls in self._listeners.values() for l in ls]
            self._listeners.clear()
            self._hosts.clear()
        for listener in all_listeners:
            listener.close()
