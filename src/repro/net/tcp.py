"""Real TCP loopback transport with length-prefixed frames.

Gives integration tests an actual kernel network path: every listener is a
real socket on 127.0.0.1 with an ephemeral port, served by a thread per
accepted connection.  A process-local name table maps ``"host/service"``
addresses to ports so the two transports stay interchangeable.

Frames are ``>I``-length-prefixed byte strings; each ``call`` writes one
request frame and blocks for one reply frame (a per-connection lock keeps
concurrent callers from interleaving frames).

Crash injection closes the host's server sockets and refuses new accepts
until :meth:`TcpNetwork.recover`, at which point the same listeners re-open
on the same logical addresses (new ports, re-resolved through the name
table) — enough fidelity for failover tests.
"""

from __future__ import annotations

import socket
import struct
import threading

from repro.net.transport import Connection, FrameHandler, Host, Listener, Network, split_address
from repro.util.errors import CommunicationError, ServerFailedError, TimeoutError_

_LEN = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise CommunicationError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame from ``sock``."""
    (length,) = _LEN.unpack(_read_exact(sock, _LEN.size))
    if length > _MAX_FRAME:
        raise CommunicationError(f"frame too large: {length} bytes")
    return _read_exact(sock, length)


def write_frame(sock: socket.socket, data: bytes) -> None:
    """Write one length-prefixed frame to ``sock``."""
    sock.sendall(_LEN.pack(len(data)) + data)


class _TcpListener(Listener):
    def __init__(self, network: "TcpNetwork", host_name: str, service: str, handler: FrameHandler):
        self._network = network
        self._host_name = host_name
        self._service = service
        self._handler = handler
        self._closed = False
        self._lock = threading.Lock()
        self._server_sock: socket.socket | None = None
        self._accepted: set[socket.socket] = set()
        self._open()

    @property
    def address(self) -> str:
        return f"{self._host_name}/{self._service}"

    def _open(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(64)
        with self._lock:
            self._server_sock = sock
        port = sock.getsockname()[1]
        self._network._resolve_table[self.address] = port
        threading.Thread(
            target=self._accept_loop, args=(sock,), daemon=True, name=f"tcp-accept-{self.address}"
        ).start()

    def _accept_loop(self, server_sock: socket.socket) -> None:
        while True:
            try:
                conn, _ = server_sock.accept()
            except OSError:
                return  # socket closed
            with self._lock:
                self._accepted.add(conn)
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True, name=f"tcp-serve-{self.address}"
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while True:
                    try:
                        request = read_frame(conn)
                    except (CommunicationError, OSError):
                        return
                    reply = self._handler(request)
                    try:
                        write_frame(conn, reply)
                    except OSError:
                        return
        finally:
            with self._lock:
                self._accepted.discard(conn)

    def suspend(self) -> None:
        """Crash injection: close the server socket and every live connection."""
        with self._lock:
            if self._server_sock is not None:
                try:
                    self._server_sock.close()
                finally:
                    self._server_sock = None
            accepted = list(self._accepted)
            self._accepted.clear()
        for conn in accepted:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._network._resolve_table.pop(self.address, None)

    def resume(self) -> None:
        """Recovery: re-open on a fresh port under the same address."""
        with self._lock:
            already_open = self._server_sock is not None
        if not already_open and not self._closed:
            self._open()

    def close(self) -> None:
        self._closed = True
        self.suspend()
        self._network._drop_listener(self)


class _TcpConnection(Connection):
    """Lazy, auto-reconnecting client connection.

    The socket is (re-)established per call attempt if needed, so a server
    that crashed and recovered on a new port is transparently re-resolved.
    """

    def __init__(self, network: "TcpNetwork", address: str):
        self._network = network
        self._address = address
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._closed = False

    def _ensure_socket(self) -> socket.socket:
        if self._sock is None:
            port = self._network._resolve_table.get(self._address)
            if port is None:
                raise ServerFailedError(f"no listener at {self._address}")
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        if self._closed:
            raise CommunicationError("connection is closed")
        with self._lock:
            try:
                sock = self._ensure_socket()
                sock.settimeout(timeout)
                write_frame(sock, data)
                return read_frame(sock)
            except socket.timeout as exc:
                self._reset()
                raise TimeoutError_(f"call to {self._address} timed out") from exc
            except (ServerFailedError, TimeoutError_):
                self._reset()
                raise  # already precise; don't flatten the subtype
            except (OSError, CommunicationError) as exc:
                self._reset()
                raise CommunicationError(f"call to {self._address} failed: {exc}") from exc

    def _reset(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._reset()


class _TcpHost(Host):
    def __init__(self, network: "TcpNetwork", name: str):
        super().__init__(name)
        self._network = network

    def listen(self, service: str, handler: FrameHandler) -> Listener:
        address = f"{self.name}/{service}"
        if address in self._network._resolve_table:
            raise CommunicationError(f"address already in use: {address}")
        listener = _TcpListener(self._network, self.name, service, handler)
        self._network._track_listener(self.name, listener)
        return listener

    def connect(self, address: str) -> Connection:
        split_address(address)
        return _TcpConnection(self._network, address)


class TcpNetwork(Network):
    """A set of logical hosts backed by loopback TCP sockets."""

    def __init__(self) -> None:
        self._resolve_table: dict[str, int] = {}
        self._hosts: dict[str, _TcpHost] = {}
        self._listeners: dict[str, list[_TcpListener]] = {}
        self._lock = threading.Lock()

    def host(self, name: str) -> Host:
        with self._lock:
            existing = self._hosts.get(name)
            if existing is None:
                existing = _TcpHost(self, name)
                self._hosts[name] = existing
            return existing

    def _track_listener(self, host_name: str, listener: _TcpListener) -> None:
        with self._lock:
            self._listeners.setdefault(host_name, []).append(listener)

    def _drop_listener(self, listener: _TcpListener) -> None:
        with self._lock:
            for listeners in self._listeners.values():
                if listener in listeners:
                    listeners.remove(listener)

    def crash(self, host_name: str) -> None:
        with self._lock:
            listeners = list(self._listeners.get(host_name, []))
        for listener in listeners:
            listener.suspend()

    def recover(self, host_name: str) -> None:
        with self._lock:
            listeners = list(self._listeners.get(host_name, []))
        for listener in listeners:
            listener.resume()

    def close(self) -> None:
        with self._lock:
            all_listeners = [l for ls in self._listeners.values() for l in ls]
            self._listeners.clear()
            self._hosts.clear()
        for listener in all_listeners:
            listener.close()
