"""Bounded, LRU-evicting connection pool shared by the middleware clients.

Every substrate client (the ORB, the RMI runtime, the HTTP client) used to
keep its own ``dict[str, Connection]`` behind its own lock.  With
multiplexed transports a cached connection is a genuinely shared resource —
one socket carries many concurrent in-flight calls — so pooling policy
(bounds, eviction, crash invalidation) belongs in one place.

The pool is crash-aware by delegation: callers invalidate an address with
:meth:`drop` when a call on it fails at the communication level, and the
next :meth:`get` opens a fresh connection that re-resolves through the
transport's name table (picking up a recovered server's new port).

Eviction closes the least-recently-used connection once ``max_size`` is
exceeded.  With a multiplexed transport, closing a connection fails its
in-flight calls, so ``max_size`` defaults high enough that eviction only
triggers in fan-out-heavy topologies (hundreds of distinct endpoints).
"""

from __future__ import annotations

import threading

from repro.net.transport import Connection, Host


class ConnectionPool:
    """LRU cache of :class:`Connection` objects keyed by address."""

    def __init__(self, host: Host, max_size: int = 128):
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self._host = host
        self._max_size = max_size
        self._lock = threading.Lock()
        # dict preserves insertion order; re-inserting on access keeps the
        # least-recently-used entry first.
        self._connections: dict[str, Connection] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, address: str) -> Connection:
        """Return the pooled connection for ``address``, opening if needed."""
        evicted: Connection | None = None
        with self._lock:
            connection = self._connections.pop(address, None)
            if connection is not None:
                self._hits += 1
            else:
                self._misses += 1
                connection = self._host.connect(address)
                if len(self._connections) >= self._max_size:
                    oldest, evicted = next(iter(self._connections.items()))
                    del self._connections[oldest]
                    self._evictions += 1
            self._connections[address] = connection  # most-recently-used last
        if evicted is not None:
            evicted.close()
        return connection

    def drop(self, address: str, connection: Connection | None = None) -> None:
        """Invalidate ``address`` (e.g. after a peer crash); idempotent.

        When ``connection`` is given, the pooled entry is evicted only if it
        *is* that connection.  This closes an ABA race under concurrent
        checkout: a caller whose call failed on an old connection must not
        evict the fresh replacement another caller just opened against the
        recovered server.
        """
        stale: Connection | None = None
        with self._lock:
            pooled = self._connections.get(address)
            if pooled is not None and (connection is None or pooled is connection):
                del self._connections[address]
                stale = pooled
        if stale is not None:
            stale.close()
        elif connection is not None:
            # Not pooled (already evicted or replaced): still close the
            # failed connection the caller is holding.
            connection.close()

    def close(self) -> None:
        """Close every pooled connection.  The pool stays usable."""
        with self._lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._connections)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._connections),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
