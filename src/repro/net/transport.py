"""Abstract transport interfaces shared by the in-memory and TCP networks.

The middleware substrates (:mod:`repro.orb`, :mod:`repro.rmi`) are written
against these interfaces only, which is what lets every test and benchmark
choose deterministic in-memory delivery or real loopback TCP without the
upper layers noticing — the same property the paper relies on when it claims
CQoS is portable across anything with a request/reply paradigm.

Addresses are strings of the form ``"host/service"``.
"""

from __future__ import annotations

import concurrent.futures
import threading
from abc import ABC, abstractmethod
from typing import Callable

from repro.util.errors import TimeoutError_

# A request handler consumes a request frame and produces a reply frame.
FrameHandler = Callable[[bytes], bytes]


def blocking_handler(func):
    """Mark a frame handler as potentially blocking.

    The asyncio engine (:mod:`repro.net.aio`) never promotes a marked
    handler to inline-on-the-event-loop execution: it always runs on the
    servant executor.  Middleware endpoints carry this mark because their
    servants may block arbitrarily (request.wait, replica forwarding) — a
    block on the loop thread would stall every connection of the network.

    Apply at class-definition time (above a ``_handle_frame`` method) or to
    a plain function; bound methods forward attribute lookup to the
    underlying function, so the mark survives ``self._handle_frame``.  The
    threaded engine ignores the mark entirely.
    """
    func.cqos_blocking = True
    return func


class ReplyFuture:
    """The non-blocking half of one request/reply exchange.

    Wraps a :class:`concurrent.futures.Future` carrying the raw reply frame
    (or the delivery error) plus an optional lazy *transform chain* — the
    decode steps the substrates (GIOP/JRMP/HTTP) attach via :meth:`then`.
    Transforms run on the **consumer's** thread at :meth:`result` time, never
    on a transport reader or event-loop thread, and their outcome is cached
    so decode and its side effects (connection-pool drops) happen once.

    :meth:`add_done_callback` fires when the *wire* exchange settles (reply
    frame arrived or delivery failed) — before any transform runs — which is
    what scatter-gather needs to order completions without paying decode on
    the signalling thread.
    """

    __slots__ = ("_future", "_steps", "_abandon_hook", "_lock", "_resolved",
                 "_value", "_error")

    def __init__(self, future=None, *, abandon=None):
        self._future = future if future is not None else concurrent.futures.Future()
        self._steps: tuple = ()
        self._abandon_hook = abandon
        self._lock = threading.Lock()
        self._resolved = False
        self._value = None
        self._error: BaseException | None = None

    # -- producers ---------------------------------------------------------

    @classmethod
    def resolved(cls, value) -> "ReplyFuture":
        """A future already completed with ``value``."""
        future = concurrent.futures.Future()
        future.set_result(value)
        return cls(future)

    @classmethod
    def failed(cls, error: BaseException) -> "ReplyFuture":
        """A future already failed with ``error``."""
        future = concurrent.futures.Future()
        future.set_exception(error)
        return cls(future)

    # -- consumers ---------------------------------------------------------

    def done(self) -> bool:
        """True once the underlying exchange settled (reply or error)."""
        return self._future.done()

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` when the exchange settles (immediately if done).

        The callback runs on whichever thread settles the future (a
        transport reader or event-loop thread): it must be cheap and must
        not block — push to a queue and consume elsewhere.
        """
        self._future.add_done_callback(lambda _f: fn(self))

    def result(self, timeout: float | None = None):
        """Block for the reply, apply the transform chain, return the value.

        Raises :class:`~repro.util.errors.TimeoutError_` if the exchange has
        not settled within ``timeout`` (the transforms are *not* consulted —
        the call may still complete later); afterwards re-raisable /
        re-callable with the cached outcome.
        """
        with self._lock:
            if not self._resolved:
                try:
                    value, error = self._future.result(timeout), None
                except concurrent.futures.TimeoutError:
                    raise TimeoutError_("no reply within deadline") from None
                except concurrent.futures.CancelledError:
                    value, error = None, TimeoutError_("exchange abandoned")
                except BaseException as exc:  # noqa: BLE001 - fed to on_error
                    value, error = None, exc
                for on_value, on_error in self._steps:
                    if error is None:
                        if on_value is None:
                            continue
                        try:
                            value = on_value(value)
                        except BaseException as exc:  # noqa: BLE001
                            value, error = None, exc
                    elif on_error is not None:
                        try:
                            value, error = on_error(error), None
                        except BaseException as exc:  # noqa: BLE001
                            value, error = None, exc
                self._value, self._error, self._resolved = value, error, True
            if self._error is not None:
                raise self._error
            return self._value

    def then(self, on_value=None, on_error=None) -> "ReplyFuture":
        """Append a lazy transform step; returns ``self`` for chaining.

        ``on_value(raw)`` maps a successful reply (e.g. decode); ``on_error
        (exc)`` observes a failure and either returns a recovery value or
        raises the (mapped) error.  Steps run in order at :meth:`result`.
        """
        self._steps = self._steps + ((on_value, on_error),)
        return self

    def abandon(self) -> None:
        """Give up on the reply: release transport-side waiter state.

        Idempotent and safe after completion.  The request was already sent
        — abandoning does not un-execute it; it only guarantees the local
        correlation-id entry is reclaimed (no waiter leak) and that a reply
        arriving later is discarded.
        """
        hook, self._abandon_hook = self._abandon_hook, None
        if hook is not None:
            try:
                hook()
            except Exception:  # noqa: BLE001 - abandon must never raise
                pass

    def chain_abandon(self, fn) -> None:
        """Also run ``fn`` when this future is abandoned.

        Layers above the transport (the invocation kernel) hang their own
        cleanup — e.g. releasing a routing-view lease for a branch whose
        reply will never arrive — off the same abandon signal.
        """
        prev = self._abandon_hook

        def hook() -> None:
            if prev is not None:
                prev()
            fn()

        self._abandon_hook = hook


class Connection(ABC):
    """A client-side handle for blocking request/reply exchanges."""

    @abstractmethod
    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        """Send ``data``, block for the reply frame, and return it.

        Connections are safe for concurrent callers: many threads may have
        calls in flight on one connection at once, and each receives its own
        correlated reply (multiplexed transports pipeline them; serialized
        ones queue internally).

        Raises :class:`~repro.util.errors.CommunicationError` when the peer
        is crashed, partitioned away, or the message is lost, and
        :class:`~repro.util.errors.TimeoutError_` on deadline expiry.
        """

    def call_async(self, data: bytes, timeout: float | None = None) -> ReplyFuture:
        """Send ``data`` without blocking; the reply settles the future.

        Default implementation: one daemon thread per call wrapping the
        blocking :meth:`call` — semantically identical to the historical
        thread-per-replica fan-out, so decorating transports (chaos) keep
        their per-call fault model without knowing about futures.  The
        multiplexed transports override this with a native non-blocking
        submit (one registered correlation id, no thread per call).
        """
        future = concurrent.futures.Future()

        def run() -> None:
            try:
                result = self.call(data, timeout=timeout)
            except BaseException as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)
            else:
                future.set_result(result)

        thread = threading.Thread(target=run, name="cqos-call-async", daemon=True)
        thread.start()
        return ReplyFuture(future)

    @abstractmethod
    def close(self) -> None:
        """Release the connection.  Idempotent."""


class Listener(ABC):
    """A server-side registration of a service on a host."""

    @property
    @abstractmethod
    def address(self) -> str:
        """The full ``"host/service"`` address this listener serves."""

    @abstractmethod
    def close(self) -> None:
        """Stop serving.  Idempotent."""


class Host(ABC):
    """A logical node: the unit of crash, recovery, and partition injection."""

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def listen(self, service: str, handler: FrameHandler) -> Listener:
        """Serve ``handler`` at ``"<host>/<service>"``."""

    @abstractmethod
    def connect(self, address: str) -> Connection:
        """Open a connection from this host to ``address``."""


class Network(ABC):
    """A collection of hosts plus fault-injection controls."""

    @abstractmethod
    def host(self, name: str) -> Host:
        """Return (creating if necessary) the host named ``name``."""

    @abstractmethod
    def crash(self, host_name: str) -> None:
        """Crash a host: its services stop answering until recovery."""

    @abstractmethod
    def recover(self, host_name: str) -> None:
        """Recover a crashed host: existing listeners resume answering."""

    @abstractmethod
    def close(self) -> None:
        """Tear down every host and listener."""


def split_address(address: str) -> tuple[str, str]:
    """Split ``"host/service"`` into its two components."""
    host, sep, service = address.partition("/")
    if not sep or not host or not service:
        raise ValueError(f"malformed address {address!r}; expected 'host/service'")
    return host, service
