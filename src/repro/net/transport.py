"""Abstract transport interfaces shared by the in-memory and TCP networks.

The middleware substrates (:mod:`repro.orb`, :mod:`repro.rmi`) are written
against these interfaces only, which is what lets every test and benchmark
choose deterministic in-memory delivery or real loopback TCP without the
upper layers noticing — the same property the paper relies on when it claims
CQoS is portable across anything with a request/reply paradigm.

Addresses are strings of the form ``"host/service"``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

# A request handler consumes a request frame and produces a reply frame.
FrameHandler = Callable[[bytes], bytes]


def blocking_handler(func):
    """Mark a frame handler as potentially blocking.

    The asyncio engine (:mod:`repro.net.aio`) never promotes a marked
    handler to inline-on-the-event-loop execution: it always runs on the
    servant executor.  Middleware endpoints carry this mark because their
    servants may block arbitrarily (request.wait, replica forwarding) — a
    block on the loop thread would stall every connection of the network.

    Apply at class-definition time (above a ``_handle_frame`` method) or to
    a plain function; bound methods forward attribute lookup to the
    underlying function, so the mark survives ``self._handle_frame``.  The
    threaded engine ignores the mark entirely.
    """
    func.cqos_blocking = True
    return func


class Connection(ABC):
    """A client-side handle for blocking request/reply exchanges."""

    @abstractmethod
    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        """Send ``data``, block for the reply frame, and return it.

        Connections are safe for concurrent callers: many threads may have
        calls in flight on one connection at once, and each receives its own
        correlated reply (multiplexed transports pipeline them; serialized
        ones queue internally).

        Raises :class:`~repro.util.errors.CommunicationError` when the peer
        is crashed, partitioned away, or the message is lost, and
        :class:`~repro.util.errors.TimeoutError_` on deadline expiry.
        """

    @abstractmethod
    def close(self) -> None:
        """Release the connection.  Idempotent."""


class Listener(ABC):
    """A server-side registration of a service on a host."""

    @property
    @abstractmethod
    def address(self) -> str:
        """The full ``"host/service"`` address this listener serves."""

    @abstractmethod
    def close(self) -> None:
        """Stop serving.  Idempotent."""


class Host(ABC):
    """A logical node: the unit of crash, recovery, and partition injection."""

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def listen(self, service: str, handler: FrameHandler) -> Listener:
        """Serve ``handler`` at ``"<host>/<service>"``."""

    @abstractmethod
    def connect(self, address: str) -> Connection:
        """Open a connection from this host to ``address``."""


class Network(ABC):
    """A collection of hosts plus fault-injection controls."""

    @abstractmethod
    def host(self, name: str) -> Host:
        """Return (creating if necessary) the host named ``name``."""

    @abstractmethod
    def crash(self, host_name: str) -> None:
        """Crash a host: its services stop answering until recovery."""

    @abstractmethod
    def recover(self, host_name: str) -> None:
        """Recover a crashed host: existing listeners resume answering."""

    @abstractmethod
    def close(self) -> None:
        """Tear down every host and listener."""


def split_address(address: str) -> tuple[str, str]:
    """Split ``"host/service"`` into its two components."""
    host, sep, service = address.partition("/")
    if not sep or not host or not service:
        raise ValueError(f"malformed address {address!r}; expected 'host/service'")
    return host, service
