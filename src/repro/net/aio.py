"""Asyncio-native execution engine for the TCP transport.

The sibling of the threaded engine in :mod:`repro.net.tcp`, selected with
``TcpNetwork(engine="async")`` (or ``CQOS_ENGINE=async``): same v2
correlation-id wire format, same :class:`~repro.net.transport.Connection` /
:class:`~repro.net.transport.Listener` contracts, different concurrency
machinery underneath.

One background event loop per network (:class:`AsyncEngineRuntime`) frames
every connection of that network:

- **client side** (:class:`AsyncMuxConnection`): callers stay on their own
  threads and block on a per-call future; the submission hops onto the loop
  as one plain callback — no coroutine or task on the hot path — which
  registers the correlation id and hands the frame to the batcher.  A
  caller timeout abandons only its own correlation id: the stream stays
  framed and the late reply is dropped, strictly better than the threaded
  leader-timeout reset.
- **server side** (:class:`AsyncTcpListener`): a single ``asyncio`` server
  demultiplexes every accepted connection on the loop; completed requests
  are handed to servants through the runtime's bounded thread-pool executor
  so blocking servants keep working.  Handlers that prove non-blocking
  (sub-``_SLOW_HANDLER`` for a streak of calls) are promoted to run inline
  on the loop — zero handoff, the echo fast path — and demoted permanently
  the first time they run slow.  Handlers marked with
  :func:`~repro.net.transport.blocking_handler` (all middleware endpoints:
  servants may block arbitrarily) are never promoted;
  ``CQOS_ASYNC_INLINE=0`` disables promotion globally.
- **adaptive batch flushing** (:class:`FrameBatcher`, both directions):
  small outbound frames on one connection are coalesced into a single
  ``send`` — flushed when a size threshold is hit or when the loop goes
  idle (one ``call_soon`` hop collects everything queued in the same loop
  iteration) — amortizing one syscall and one reader wakeup across many
  correlation ids.  An optional linger (``CQOS_BATCH_LINGER``, seconds)
  additionally holds a lone frame briefly once the connection has shown
  concurrent traffic; it is **off by default** because measurements show
  closed-loop request/reply traffic convoys behind the timer (each wave's
  first frame waits out the linger) while loop-idle coalescing already
  batches same-wave frames.  Batching is pure concatenation of v2 frames,
  so the bytes on the wire are bit-identical to the threaded engine's.

Crash injection and recovery mirror the threaded listener exactly: suspend
unpublishes the address atomically with dropping the server, aborts every
accepted connection, and refuses to execute requests read before the crash;
resume re-opens on a fresh port under the same logical address.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import itertools
import os
import select
import threading
import time
import weakref

from repro.net.framing import FrameDecoder, FRAME_HEADER, check_frame_size
from repro.net.transport import Connection, FrameHandler, Listener, ReplyFuture
from repro.util.errors import (
    CommunicationError,
    FrameTooLargeError,
    ServerFailedError,
    TimeoutError_,
)
from repro.util.log import get_logger

logger = get_logger("net.aio")

#: Outbound-batch linger (seconds) once a connection has shown concurrency.
#: Off by default: loop-idle coalescing already batches same-wave frames,
#: and a timer convoys closed-loop traffic.  Opt in for open-loop senders.
BATCH_LINGER_ENV = "CQOS_BATCH_LINGER"
#: Flush immediately once this many pending outbound bytes accumulate.
BATCH_BYTES_ENV = "CQOS_BATCH_BYTES"
#: Set to ``0`` to keep every handler on the executor (no inline promotion).
ASYNC_INLINE_ENV = "CQOS_ASYNC_INLINE"

_DEFAULT_LINGER = 0.0
_DEFAULT_BATCH_BYTES = 64 * 1024

#: Servant executor size: generous, because nested calls (replica
#: forwarding, control pings) occupy a worker while they wait on another.
_ASYNC_WORKERS = max(16, 4 * (os.cpu_count() or 1))

#: Handler duration (seconds) separating "inline on the loop" from
#: "offload to the executor" — same constant as the threaded engine.
_SLOW_HANDLER = 0.0002

#: Consecutive fast executor runs before a handler is promoted to inline.
_PROMOTE_AFTER = 16


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


def _inline_enabled() -> bool:
    return os.environ.get(ASYNC_INLINE_ENV, "1") != "0"


class AsyncEngineRuntime:
    """One event loop + one bounded servant executor, shared per network.

    The loop thread owns every socket of the network; servant execution
    happens on the executor (or inline for promoted handlers).  Batch
    counters are incremented only from the loop thread, so reads from other
    threads are lock-free snapshots.
    """

    def __init__(self, name: str = "cqos-aio"):
        self.loop = asyncio.new_event_loop()
        self.executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=_ASYNC_WORKERS, thread_name_prefix=f"{name}-servant"
        )
        # Cumulative across every batcher of this runtime (client + server).
        self.frames_out = 0
        self.flushes = 0
        self.bytes_out = 0
        self._stats_sources: weakref.WeakSet = weakref.WeakSet()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"{name}-loop"
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_forever()
        finally:
            try:
                self.loop.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass

    def call_soon(self, callback, *args) -> bool:
        """Schedule on the loop from any thread; False once shut down."""
        try:
            self.loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:
            return False
        return True

    def submit(self, coro) -> concurrent.futures.Future:
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def register_stats_source(self, source) -> None:
        """Track an object with its own batching counters (weakly held).

        Client connections write from caller threads and keep their
        counters locally; :meth:`batch_stats` folds them in.
        """
        self._stats_sources.add(source)

    def batch_stats(self) -> dict:
        """Cumulative outbound batching counters (frames vs send syscalls)."""
        frames, flushes, out = self.frames_out, self.flushes, self.bytes_out
        for source in tuple(self._stats_sources):
            frames += source._frames_out
            flushes += source._flushes
            out += source._bytes_out
        return {
            "frames_out": frames,
            "flushes": flushes,
            "bytes_out": out,
            "frames_per_flush": round(frames / flushes, 3) if flushes else None,
        }

    def shutdown(self) -> None:
        if not self.loop.is_closed():
            if self.call_soon(self._stop_on_loop):
                self._thread.join(timeout=5.0)
        self.executor.shutdown(wait=False, cancel_futures=True)

    def _stop_on_loop(self) -> None:
        for task in asyncio.all_tasks(self.loop):
            task.cancel()
        # One more iteration so cancellations deliver before the loop stops.
        self.loop.call_soon(self.loop.stop)


class FrameBatcher:
    """Adaptive outbound frame coalescing on one asyncio transport.

    Loop-affine: every method runs on the runtime's loop thread.  Frames
    are appended as (header, payload) parts and flushed as one
    ``transport.write`` — one send syscall when the transport buffer is
    drained — on the first of:

    - **size**: pending bytes reach ``max_bytes``;
    - **loop idle**: a ``call_soon`` scheduled at first append runs after
      every callback that was already ready this iteration, collecting all
      frames produced by the same wave of completions/submissions;
    - **linger** (opt-in, ``linger > 0``): when only one small frame is
      pending at the idle flush but the *previous* batch carried several
      (the connection is visibly concurrent), the flush waits ``linger``
      seconds to let stragglers coalesce — released early as soon as the
      wave re-forms (pending frames reach the previous batch size).
      Serial traffic (previous batch of one) never waits.  Off by default:
      closed-loop request/reply traffic convoys behind the timer, and
      loop-idle coalescing already batches same-wave frames.
    """

    __slots__ = (
        "_loop",
        "_transport",
        "_runtime",
        "_linger",
        "_max_bytes",
        "_parts",
        "_pending_bytes",
        "_pending_frames",
        "_last_batch_frames",
        "_handle",
        "_lingering",
    )

    def __init__(
        self,
        loop,
        transport,
        runtime: AsyncEngineRuntime,
        linger: float | None = None,
        max_bytes: int | None = None,
    ):
        self._loop = loop
        self._transport = transport
        self._runtime = runtime
        self._linger = (
            _env_float(BATCH_LINGER_ENV, _DEFAULT_LINGER) if linger is None else linger
        )
        self._max_bytes = (
            int(_env_float(BATCH_BYTES_ENV, _DEFAULT_BATCH_BYTES))
            if max_bytes is None
            else max_bytes
        )
        self._parts: list = []
        self._pending_bytes = 0
        self._pending_frames = 0
        self._last_batch_frames = 0
        self._handle = None
        self._lingering = False

    def send(self, request_id: int, payload) -> None:
        """Queue one v2 frame; raises FrameTooLargeError before buffering."""
        size = len(payload)
        check_frame_size(size)
        self._parts.append(FRAME_HEADER.pack(size, request_id))
        self._parts.append(payload)
        self._pending_bytes += FRAME_HEADER.size + size
        self._pending_frames += 1
        if self._pending_bytes >= self._max_bytes:
            self._flush()
        elif self._lingering and self._pending_frames >= self._last_batch_frames:
            # The wave that justified lingering has re-formed: flush now
            # instead of waiting out the timer (a closed-loop workload would
            # otherwise convoy behind every wave's first frame).
            self._flush()
        elif self._handle is None:
            self._lingering = False
            self._handle = self._loop.call_soon(self._idle_flush)

    def _idle_flush(self) -> None:
        self._handle = None
        if (
            self._linger > 0
            and not self._lingering
            and self._pending_frames == 1
            and self._last_batch_frames > 1
        ):
            # Concurrent traffic but a lone frame right now: wait briefly
            # for the rest of the wave instead of paying a syscall per frame.
            self._lingering = True
            self._handle = self._loop.call_later(self._linger, self._flush)
            return
        self._flush()

    def _flush(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._lingering = False
        if not self._parts:
            return
        data = b"".join(self._parts)
        self._parts.clear()
        self._last_batch_frames = self._pending_frames
        runtime = self._runtime
        runtime.frames_out += self._pending_frames
        runtime.flushes += 1
        runtime.bytes_out += len(data)
        self._pending_bytes = 0
        self._pending_frames = 0
        self._transport.write(data)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._parts.clear()
        self._pending_bytes = 0
        self._pending_frames = 0


# -- client side ---------------------------------------------------------------


class _MuxClientProtocol(asyncio.Protocol):
    """Loop-side reader: completes pending calls by correlation id."""

    def __init__(self, connection: "AsyncMuxConnection"):
        self._connection = connection
        self._decoder = FrameDecoder()

    def data_received(self, data) -> None:
        try:
            frames = self._decoder.feed(data)
        except FrameTooLargeError as exc:
            self._connection._on_protocol_error(exc)
            return
        self._connection._complete_frames(frames)

    def connection_lost(self, exc) -> None:
        self._connection._on_connection_lost(exc)


class AsyncMuxConnection(Connection):
    """v2 client connection: loop-side receive, caller-side coalesced send.

    ``call`` appends ``(correlation id, frame, future)`` to a submission
    deque and then — once the socket exists — the **submitting thread
    itself** drains the deque under a writer lock and sends every queued
    frame as one coalesced ``send`` (the leader-writer fast path: no loop
    hop, no self-pipe syscall on the hot path, and concurrent callers fold
    into the leader's batch).  The event loop owns only the receive side,
    connect/reconnect, and failure sweeps.  Reconnection is lazy and
    re-resolves the address through the network name table, so a
    crashed-and-recovered server (new port) is picked up transparently —
    same contract as the threaded :class:`~repro.net.tcp._TcpMuxConnection`.
    """

    def __init__(self, network, address: str, runtime: AsyncEngineRuntime):
        self._network = network
        self._address = address
        self._runtime = runtime
        self._loop = runtime.loop
        self._ids = itertools.count(1)
        self._closed = False
        # Submission queue: callers append here (GIL-atomic); whoever holds
        # the writer lock drains it.  Before the socket exists, entries wait
        # for the loop-side connect to flush them.
        self._submissions: collections.deque = collections.deque()
        self._wake_pending = False
        self._write_lock = threading.Lock()
        self._sock = None  # raw non-blocking socket; set by the loop on connect
        # Outbound batching counters, updated under the writer lock.
        self._frames_out = 0
        self._flushes = 0
        self._bytes_out = 0
        runtime.register_stats_source(self)
        # Loop-affine state below (touched only from loop callbacks).
        self._pending: dict[int, concurrent.futures.Future] = {}
        self._transport = None
        self._connecting = False

    # -- Connection interface ----------------------------------------------

    def _submit(self, data: bytes) -> tuple[int, concurrent.futures.Future]:
        """Queue one frame for the leader-writer drain; no reply wait.

        Shared by :meth:`call` and :meth:`call_async` — a scatter loop that
        submits N frames back-to-back lands them in one deque drain, so the
        whole fan-out leaves in a single coalesced ``send`` syscall.
        """
        if self._closed:
            raise CommunicationError("connection is closed")
        check_frame_size(len(data))
        if not isinstance(data, (bytes, bytearray)):
            data = bytes(data)
        future: concurrent.futures.Future = concurrent.futures.Future()
        request_id = next(self._ids)
        self._submissions.append((request_id, data, future))
        if self._sock is not None:
            self._write_now()
        else:
            # Not connected yet (or lost): one loop wakeup per burst kicks
            # the (re)connect, which flushes the queue once the socket is up.
            # A True flag always means a kick is scheduled but not yet
            # started (the kick resets it first), so every entry is reached.
            if not self._wake_pending:
                self._wake_pending = True
                if not self._runtime.call_soon(self._kick_connect):
                    self._submissions.clear()
                    raise CommunicationError("connection is closed")
        return request_id, future

    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        request_id, future = self._submit(data)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            # Abandon only this correlation id; the stream stays framed and
            # the late reply is discarded on arrival.
            self._runtime.call_soon(self._abandon, request_id)
            raise TimeoutError_(f"call to {self._address} timed out") from None
        except concurrent.futures.CancelledError:
            raise CommunicationError("connection is closed") from None

    def call_async(self, data: bytes, timeout: float | None = None) -> ReplyFuture:
        """Non-blocking submit; never raises (failures settle the future).

        Abandoning hops to the loop thread (where ``_pending`` is affine)
        exactly as a timed-out synchronous call does.
        """
        try:
            request_id, future = self._submit(data)
        except CommunicationError as exc:  # includes FrameTooLargeError
            return ReplyFuture.failed(exc)
        return ReplyFuture(
            future,
            abandon=lambda: self._runtime.call_soon(self._abandon, request_id),
        )

    def close(self) -> None:
        self._closed = True
        self._runtime.call_soon(self._close_on_loop)

    def batch_stats(self) -> dict:
        """This connection's outbound batching counters (lock-free snapshot)."""
        return {
            "frames_out": self._frames_out,
            "flushes": self._flushes,
            "bytes_out": self._bytes_out,
        }

    # -- caller-side write path --------------------------------------------

    def _write_now(self) -> None:
        # Re-check after every release: an appender that lost the lock race
        # relies on the holder (or us, here) observing its entry.
        lock = self._write_lock
        while self._submissions:
            if not lock.acquire(blocking=False):
                return
            try:
                self._write_locked()
            finally:
                lock.release()

    def _write_locked(self) -> None:
        submissions = self._submissions
        drained: list[tuple[int, bytes, concurrent.futures.Future]] = []
        while True:
            try:
                drained.append(submissions.popleft())
            except IndexError:
                break
        if not drained:
            return
        sock = self._sock
        if sock is None or self._closed:
            # Lost (or closed) between the caller's check and here: fail
            # fast, exactly as if the frames were in flight at the loss.
            error = CommunicationError(
                "connection is closed"
                if self._closed
                else f"call to {self._address} failed: connection lost"
            )
            for _, _, future in drained:
                _fail(future, error)
            return
        parts: list[bytes] = []
        for request_id, data, future in drained:
            # Register before sending: the reply cannot arrive first.
            self._pending[request_id] = future
            parts.append(FRAME_HEADER.pack(len(data), request_id))
            parts.append(data)
        payload = parts[0] if len(parts) == 1 else b"".join(parts)
        try:
            _sendall_nonblocking(sock, payload)
        except OSError:
            # Socket died mid-send; the transport's connection_lost fails
            # every registered future (ours included).  Nothing more to do.
            return
        self._frames_out += len(drained)
        self._flushes += 1
        self._bytes_out += len(payload)

    # -- loop-affine internals ---------------------------------------------

    def _kick_connect(self) -> None:
        self._wake_pending = False
        if self._closed:
            self._fail_queued(CommunicationError("connection is closed"))
            return
        if self._sock is not None:
            # Connect raced us to completion; flush from the loop.
            self._write_now()
            return
        if self._submissions and not self._connecting:
            self._connecting = True
            self._loop.create_task(self._connect())

    async def _connect(self) -> None:
        try:
            port = self._network._resolve(self._address)
            if port is None:
                raise ServerFailedError(f"no listener at {self._address}")
            transport, _ = await self._loop.create_connection(
                lambda: _MuxClientProtocol(self), "127.0.0.1", port
            )
        except BaseException as exc:  # noqa: BLE001 - every caller must hear
            self._connecting = False
            if isinstance(exc, CommunicationError):
                error: CommunicationError = exc
            else:
                error = CommunicationError(f"call to {self._address} failed: {exc}")
            self._fail_queued(error)
            return
        self._connecting = False
        if self._closed:
            transport.close()
            self._fail_queued(CommunicationError("connection is closed"))
            return
        self._transport = transport
        # Publish the raw socket last: once callers see it they write
        # directly, bypassing the loop.  asyncio hands out a TransportSocket
        # proxy that forbids I/O methods, so unwrap the real socket.  The
        # kernel buffer is empty here, so flushing the queued burst from the
        # loop cannot stall it.
        sock = transport.get_extra_info("socket")
        self._sock = getattr(sock, "_sock", sock)
        self._write_now()

    def _fail_queued(self, error: BaseException) -> None:
        submissions = self._submissions
        while True:
            try:
                _, _, future = submissions.popleft()
            except IndexError:
                return
            _fail(future, error)

    def _complete_frames(self, frames: list[tuple[int, bytes]]) -> None:
        pending = self._pending
        for request_id, payload in frames:
            future = pending.pop(request_id, None)
            if future is not None:
                _complete(future, payload)

    def _abandon(self, request_id: int) -> None:
        self._pending.pop(request_id, None)

    def _on_protocol_error(self, error: BaseException) -> None:
        logger.warning("%s: %s; dropping connection", self._address, error)
        if self._transport is not None:
            self._transport.abort()

    def _on_connection_lost(self, exc) -> None:
        self._sock = None  # callers fall back to the connect path
        self._transport = None
        error = CommunicationError(
            f"call to {self._address} failed: "
            + (str(exc) if exc else "peer closed the connection")
        )
        # A caller can hold the writer lock mid-send right now; taking the
        # lock orders this sweep after it, so its registered futures are in
        # ``_pending`` (callers register before sending) and none is missed.
        with self._write_lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            _fail(future, error)
        self._fail_queued(error)

    def _close_on_loop(self) -> None:
        self._sock = None
        if self._transport is not None:
            self._transport.close()
        error = CommunicationError("connection is closed")
        with self._write_lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            _fail(future, error)
        self._fail_queued(error)


def _sendall_nonblocking(sock, data) -> None:
    """``sendall`` for a non-blocking socket, from a non-loop thread.

    The asyncio transport put the socket in non-blocking mode; a full
    kernel buffer raises ``BlockingIOError`` instead of blocking, so wait
    for writability and resume.  Raises ``OSError`` when the socket dies.
    """
    view = memoryview(data)
    while view.nbytes:
        try:
            sent = sock.send(view)
        except BlockingIOError:
            select.select([], [sock], [], 0.1)
            continue
        view = view[sent:]


def _complete(future: concurrent.futures.Future, value) -> None:
    if not future.done():
        future.set_result(value)


def _fail(future: concurrent.futures.Future, error: BaseException) -> None:
    if not future.done():
        future.set_exception(error)


# -- server side ---------------------------------------------------------------


class _MuxServerProtocol(asyncio.Protocol):
    """One accepted connection: loop-side demux, executor-side servants."""

    def __init__(self, listener: "AsyncTcpListener"):
        self._listener = listener
        self._runtime = listener._runtime
        self._loop = listener._loop
        self._decoder = FrameDecoder()
        self._transport = None
        self._batcher: FrameBatcher | None = None
        self._alive = False
        # Executor workers park finished replies here; one threadsafe wake
        # drains the whole burst on the loop (same coalescing trick as the
        # client's submission queue — deque appends are GIL-atomic).
        self._replies: collections.deque = collections.deque()
        self._reply_wake = False

    def connection_made(self, transport) -> None:
        listener = self._listener
        with listener._lock:
            # A connection can sit in the kernel backlog across a crash;
            # accepting it after suspend() must not resurrect the host.
            if listener._suspended:
                accepted = False
            else:
                listener._protocols.add(self)
                accepted = True
        if not accepted:
            transport.abort()
            return
        self._transport = transport
        self._batcher = FrameBatcher(self._loop, transport, self._runtime)
        self._alive = True

    def connection_lost(self, exc) -> None:
        self._alive = False
        if self._batcher is not None:
            self._batcher.close()
        with self._listener._lock:
            self._listener._protocols.discard(self)

    def abort(self) -> None:
        """Reset the connection (loop thread)."""
        self._alive = False
        if self._transport is not None:
            self._transport.abort()

    def data_received(self, data) -> None:
        if not self._alive:
            return
        try:
            frames = self._decoder.feed(data)
        except FrameTooLargeError as exc:
            logger.warning(
                "%s: %s; resetting connection", self._listener.address, exc
            )
            self.abort()
            return
        if not frames:
            return
        listener = self._listener
        if listener._suspended:
            # Crashed between reading the request and serving it: a dead
            # host must not execute work.
            self.abort()
            return
        if listener._inline_ok:
            for request_id, request in frames:
                if not self._serve_inline(request_id, request):
                    return
        else:
            for request_id, request in frames:
                self._runtime.executor.submit(self._serve_offloaded, request_id, request)

    def _serve_inline(self, request_id: int, request: bytes) -> bool:
        started = time.perf_counter()
        try:
            reply = self._listener._handler(request)
        except BaseException:  # noqa: BLE001 - keep the loop honest
            logger.exception(
                "%s: handler raised; resetting connection", self._listener.address
            )
            self.abort()
            return False
        self._listener._record_inline(time.perf_counter() - started)
        return self._send_reply(request_id, reply)

    def _serve_offloaded(self, request_id: int, request: bytes) -> None:
        # Executor thread: re-check the crash flag (a request read before
        # suspend() must not execute), run the servant, hop back to the loop.
        listener = self._listener
        if listener._suspended or not self._alive:
            self._runtime.call_soon(self.abort)
            return
        started = time.perf_counter()
        try:
            reply = listener._handler(request)
        except BaseException:  # noqa: BLE001 - keep the worker honest
            logger.exception(
                "%s: handler raised; resetting connection", listener.address
            )
            self._runtime.call_soon(self.abort)
            return
        listener._record_offloaded(time.perf_counter() - started)
        self._replies.append((request_id, reply))
        if not self._reply_wake:
            # Flag-then-schedule: a True flag always means a drain is
            # scheduled but not yet started, so concurrent workers fold
            # into one self-pipe write instead of one per reply.
            self._reply_wake = True
            self._runtime.call_soon(self._drain_replies)

    def _drain_replies(self) -> None:
        # Loop thread.  Reset the flag *before* draining so a worker that
        # appends after the drain started schedules a fresh wake.
        self._reply_wake = False
        replies = self._replies
        while replies:
            try:
                request_id, reply = replies.popleft()
            except IndexError:
                break
            if not self._send_reply(request_id, reply):
                replies.clear()
                return

    def _send_reply(self, request_id: int, reply) -> bool:
        if not self._alive:
            return False
        if self._listener._suspended:
            self.abort()
            return False
        try:
            self._batcher.send(request_id, reply)
        except FrameTooLargeError as exc:
            logger.warning(
                "%s: reply %s; resetting connection", self._listener.address, exc
            )
            self.abort()
            return False
        return True


class AsyncTcpListener(Listener):
    """Event-loop sibling of the threaded ``_TcpListener`` (v2 frames only).

    Dispatch policy per handler: start every request on the bounded
    executor; after :data:`_PROMOTE_AFTER` consecutive sub-``_SLOW_HANDLER``
    servant executions, promote to inline-on-the-loop (no handoff); demote
    permanently the first time an execution runs slow.  Handlers marked
    with :func:`~repro.net.transport.blocking_handler` are never promoted —
    a servant that blocks on the loop would stall every connection of the
    network (and deadlock if its completion needs the loop).
    """

    def __init__(self, network, host_name: str, service: str, handler: FrameHandler):
        self._network = network
        self._host_name = host_name
        self._service = service
        self._handler = handler
        self._runtime: AsyncEngineRuntime = network._engine_runtime(host_name)
        self._loop = self._runtime.loop
        self._lock = threading.Lock()
        self._closed = False
        self._suspended = False
        self._server: asyncio.AbstractServer | None = None
        self._protocols: set[_MuxServerProtocol] = set()
        # Promotion state: benign races (flags only ever tighten).
        self._never_inline = bool(
            getattr(handler, "cqos_blocking", False)
        ) or not _inline_enabled()
        self._inline_ok = False
        self._fast_streak = 0
        self._open()

    @property
    def address(self) -> str:
        return f"{self._host_name}/{self._service}"

    def _open(self) -> None:
        self._runtime.submit(self._open_on_loop()).result(10.0)

    async def _open_on_loop(self) -> None:
        server = await self._loop.create_server(
            lambda: _MuxServerProtocol(self), "127.0.0.1", 0, backlog=64
        )
        port = server.sockets[0].getsockname()[1]
        with self._lock:
            # Publishing under the listener lock keeps the name table in
            # step with the server socket, mirroring the threaded engine: a
            # concurrent suspend cannot leave the table pointing at a dead
            # port, and a concurrent resume that already re-opened wins.
            if self._closed or self._server is not None:
                server.close()
                return
            self._server = server
            self._suspended = False
            self._network._publish(self.address, port)

    # -- dispatch-policy bookkeeping ---------------------------------------

    def _record_offloaded(self, duration: float) -> None:
        if self._never_inline:
            return
        if duration >= _SLOW_HANDLER:
            self._never_inline = True
            self._inline_ok = False
            return
        self._fast_streak += 1
        if self._fast_streak >= _PROMOTE_AFTER:
            self._inline_ok = True

    def _record_inline(self, duration: float) -> None:
        if duration >= _SLOW_HANDLER:
            self._never_inline = True
            self._inline_ok = False
            self._fast_streak = 0

    # -- crash / recovery --------------------------------------------------

    def suspend(self) -> None:
        """Crash injection: unpublish and reset every live connection."""
        with self._lock:
            self._suspended = True
            server, self._server = self._server, None
            protocols = list(self._protocols)
            self._protocols.clear()
            # Unpublish under the same lock as dropping the server socket,
            # mirroring _open_on_loop's publish.
            self._network._unpublish(self.address)

        def teardown() -> None:
            if server is not None:
                server.close()
            for protocol in protocols:
                protocol.abort()

        self._runtime.call_soon(teardown)

    def resume(self) -> None:
        """Recovery: re-open on a fresh port under the same address."""
        with self._lock:
            already_open = self._server is not None
        if not already_open and not self._closed:
            self._open()

    def close(self) -> None:
        self._closed = True
        self.suspend()
        self._network._drop_listener(self)


def _make_async_network():
    """Deferred import so ``repro.net.aio`` has no import-time tcp dependency."""
    from repro.net.tcp import TcpNetwork

    return TcpNetwork(multiplex=True, engine="async")


class AsyncTcpNetwork:
    """Convenience factory: ``AsyncTcpNetwork()`` ≡ ``TcpNetwork(engine="async")``.

    Implemented as a factory (``__new__`` returns the configured
    :class:`~repro.net.tcp.TcpNetwork`) so both spellings produce the same
    runtime type and the name table, chaos wrapper, and pool interplay are
    literally shared code.
    """

    def __new__(cls):
        return _make_async_network()
