"""Chaos-capable transport: deterministic fault injection over any network.

:class:`ChaosNetwork` is a decorator around any :class:`~repro.net.transport.Network`
— the in-memory transport *or* real loopback TCP — that applies a seedable
:class:`FaultPlan` to every message.  This brings :class:`~repro.net.tcp.TcpNetwork`
to fault-injection parity with :class:`~repro.net.memory.InMemoryNetwork`
(which natively supports only its own ``set_loss``/``partition``) and gives
tests a single injection API regardless of the wire underneath::

    plan = FaultPlan(seed=42, loss=0.1, latency=0.005, jitter=0.01)
    net = ChaosNetwork(TcpNetwork(), plan)
    net.host("server").listen("svc", handler)     # transparent pass-through
    conn = net.host("client").connect("server/svc")
    conn.call(b"...")                             # may be lost / delayed / ...

Fault model (each knob independent, applied per message — one ``call`` is a
request message and a reply message):

- **loss** — the message vanishes; the caller sees
  :class:`~repro.util.errors.CommunicationError` (a lost *request* never
  executed; a lost *reply* did execute — exactly the at-most-once ambiguity
  retry protocols must cope with);
- **latency/jitter** — per-message delay ``latency + U(0, jitter)``;
- **duplicate** — the request is delivered twice (the duplicate's reply is
  discarded), exercising server-side duplicate suppression;
- **reorder** — the message is additionally delayed by ``reorder_delay`` so
  concurrent messages can overtake it (under blocking request/reply,
  reordering is only observable across connections);
- **corrupt** — one byte of the payload is flipped, exercising unmarshalling
  error paths and integrity micro-protocols;
- **reset** — the exchange is aborted *after* the server executed, modelling
  a connection reset between execution and reply delivery;
- **partition** — hosts in different groups cannot exchange messages;
- **schedule** — ``(at_seconds, "crash"|"recover", host)`` events applied on
  the wall clock relative to :meth:`ChaosNetwork.start` (lazily the first
  message), delegated to the inner network's crash injection.

Determinism: every decision is drawn from a per-connection PRNG stream
seeded with ``f"{seed}|{source}->{address}|{n}"`` (``n`` = creation index of
that connection on that link).  Seeds fed to :class:`random.Random` as
strings hash via SHA-512, so streams are stable across processes and
``PYTHONHASHSEED``.  Two runs that create connections in the same order and
issue the same calls per connection draw identical fault sequences —
the property the replay tests pin down.

``exempt_hosts`` lets tests keep bootstrap traffic (naming service, RMI
registry) clean while application links burn: messages to or from an exempt
host skip loss/delay/corruption (but still honour partitions and crashes).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace

from repro.net.transport import Connection, FrameHandler, Host, Listener, Network, split_address
from repro.util.errors import CommunicationError


@dataclass(frozen=True)
class FaultPlan:
    """A seedable description of what goes wrong on the wire.

    All probabilities are per *message* (two messages per call) and
    independent.  The plan is immutable; :meth:`ChaosNetwork.set_plan`
    swaps plans atomically mid-run.
    """

    seed: int = 0
    #: Probability a message is lost (surfaces as CommunicationError).
    loss: float = 0.0
    #: Fixed one-way per-message delay in seconds.
    latency: float = 0.0
    #: Extra uniform random delay in [0, jitter] per message.
    jitter: float = 0.0
    #: Probability a request is delivered twice.
    duplicate: float = 0.0
    #: Probability a message is held back an extra ``reorder_delay`` seconds.
    reorder: float = 0.0
    reorder_delay: float = 0.0
    #: Probability one payload byte is flipped.
    corrupt: float = 0.0
    #: Probability the exchange is reset after execution (reply lost).
    reset: float = 0.0
    #: ``(at_seconds, "crash"|"recover", host_name)`` wall-clock events.
    schedule: tuple[tuple[float, str, str], ...] = ()
    #: Hosts whose traffic skips loss/delay/corruption (bootstrap services).
    exempt_hosts: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder", "corrupt", "reset"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {value}")
        for name in ("latency", "jitter"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        for at, action, _host in self.schedule:
            if action not in ("crash", "recover"):
                raise ValueError(f"unknown scheduled action {action!r}")
            if at < 0:
                raise ValueError(f"scheduled event time must be >= 0, got {at}")


@dataclass
class ChaosStats:
    """Counters over everything the chaos layer did (thread-safe snapshot)."""

    messages: int = 0
    delivered: int = 0
    lost: int = 0
    duplicated: int = 0
    corrupted: int = 0
    resets: int = 0
    reordered: int = 0
    partition_blocks: int = 0
    exempted: int = 0
    crashes: int = 0
    recoveries: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class _Fate:
    """The drawn fault decisions for one request/reply exchange."""

    request_lost: bool
    request_delay: float
    request_duplicated: bool
    request_corrupt: bool
    #: Byte position to flip, as a fraction of the payload length (the
    #: length is unknown at draw time; a fraction keeps the draw count fixed).
    request_corrupt_pos: float
    reply_lost: bool
    reply_delay: float
    reply_corrupt: bool
    reply_corrupt_pos: float
    reset: bool


class _ChaosListener(Listener):
    def __init__(self, inner: Listener):
        self._inner = inner

    @property
    def address(self) -> str:
        return self._inner.address

    def close(self) -> None:
        self._inner.close()


class _ChaosConnection(Connection):
    def __init__(self, network: "ChaosNetwork", source_host: str, address: str, inner: Connection):
        self._network = network
        self._source = source_host
        self._address = address
        self._destination, _ = split_address(address)
        self._inner = inner
        self._rng = network._connection_rng(source_host, address)
        self._closed = False

    # One lock-held draw per call keeps the stream contiguous even if the
    # application shares a connection between threads.
    def _draw_fate(self, plan: FaultPlan) -> _Fate:
        rng = self._rng
        # Always consume the same number of draws per message so the stream
        # stays aligned between plans that enable different knobs.
        request_lost = rng.random() < plan.loss
        request_dup = rng.random() < plan.duplicate
        request_corrupt = rng.random() < plan.corrupt
        request_corrupt_pos = rng.random()
        request_reorder = rng.random() < plan.reorder
        request_jitter = rng.random() * plan.jitter
        reply_lost = rng.random() < plan.loss
        reply_corrupt = rng.random() < plan.corrupt
        reply_corrupt_pos = rng.random()
        reply_reorder = rng.random() < plan.reorder
        reply_jitter = rng.random() * plan.jitter
        reset = rng.random() < plan.reset
        request_delay = plan.latency + request_jitter
        reply_delay = plan.latency + reply_jitter
        if request_reorder:
            request_delay += plan.reorder_delay
        if reply_reorder:
            reply_delay += plan.reorder_delay
        if request_reorder or reply_reorder:
            self._network._count("reordered")
        return _Fate(
            request_lost=request_lost,
            request_delay=request_delay,
            request_duplicated=request_dup,
            request_corrupt=request_corrupt,
            request_corrupt_pos=request_corrupt_pos,
            reply_lost=reply_lost,
            reply_delay=reply_delay,
            reply_corrupt=reply_corrupt,
            reply_corrupt_pos=reply_corrupt_pos,
            reset=reset,
        )

    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        if self._closed:
            raise CommunicationError("connection is closed")
        network = self._network
        network._apply_due_events()
        network._check_partition(self._source, self._destination)
        plan = network.plan
        if network._is_exempt(plan, self._source, self._destination):
            network._count("exempted")
            return self._inner.call(data, timeout=timeout)
        with network._rng_lock:
            fate = self._draw_fate(plan)
        network._count("messages", 2)
        if fate.request_delay > 0:
            time.sleep(fate.request_delay)
        if fate.request_lost:
            network._count("lost")
            raise CommunicationError(
                f"chaos: request {self._source}->{self._address} lost"
            )
        payload = (
            _flip_byte(data, fate.request_corrupt_pos) if fate.request_corrupt else data
        )
        if fate.request_corrupt:
            network._count("corrupted")
        reply = self._inner.call(payload, timeout=timeout)
        if fate.request_duplicated:
            network._count("duplicated")
            try:
                self._inner.call(payload, timeout=timeout)
            except CommunicationError:
                pass  # the duplicate's fate is irrelevant to the caller
        if fate.reply_delay > 0:
            time.sleep(fate.reply_delay)
        if fate.reset:
            network._count("resets")
            raise CommunicationError(
                f"chaos: connection {self._source}->{self._address} reset after execution"
            )
        if fate.reply_lost:
            network._count("lost")
            raise CommunicationError(
                f"chaos: reply {self._address}->{self._source} lost"
            )
        if fate.reply_corrupt:
            network._count("corrupted")
            reply = _flip_byte(reply, fate.reply_corrupt_pos)
        network._count("delivered", 2)
        return reply

    def close(self) -> None:
        self._closed = True
        self._inner.close()


class _ChaosHost(Host):
    def __init__(self, network: "ChaosNetwork", inner: Host):
        super().__init__(inner.name)
        self._network = network
        self._inner = inner

    def listen(self, service: str, handler: FrameHandler) -> Listener:
        return _ChaosListener(self._inner.listen(service, handler))

    def connect(self, address: str) -> Connection:
        split_address(address)
        return _ChaosConnection(
            self._network, self.name, address, self._inner.connect(address)
        )


def _flip_byte(data: bytes, pos_fraction: float) -> bytes:
    """Flip the byte at ``pos_fraction`` of the way through ``data``."""
    if not data:
        return data
    corrupted = bytearray(data)
    index = min(int(pos_fraction * len(corrupted)), len(corrupted) - 1)
    corrupted[index] ^= 0xFF
    return bytes(corrupted)


class ChaosNetwork(Network):
    """Decorate ``inner`` with the faults described by ``plan``.

    Exposes the :class:`~repro.net.memory.InMemoryNetwork` injection surface
    (``set_loss``, ``partition``, ``heal``) so fixtures written against the
    in-memory network run unchanged over chaos-wrapped TCP.
    """

    def __init__(self, inner: Network, plan: FaultPlan | None = None):
        self.inner = inner
        self._plan = plan or FaultPlan()
        self._lock = threading.Lock()
        self._rng_lock = threading.Lock()
        self._hosts: dict[str, _ChaosHost] = {}
        self._link_counts: dict[tuple[str, str], int] = {}
        self._partition_of: dict[str, int] = {}
        self._stats = ChaosStats()
        self._started_at: float | None = None
        self._pending_events: list[tuple[float, str, str]] = []

    # -- plan management ---------------------------------------------------

    @property
    def plan(self) -> FaultPlan:
        with self._lock:
            return self._plan

    def set_plan(self, plan: FaultPlan) -> None:
        """Swap the active fault plan (existing RNG streams continue)."""
        with self._lock:
            self._plan = plan
            self._pending_events = sorted(plan.schedule)
            self._started_at = None  # re-anchor the schedule at next message

    def start(self) -> None:
        """Anchor the scheduled crash/recover events at *now*.

        Called lazily on the first message if never called explicitly.
        """
        with self._lock:
            self._started_at = time.monotonic()
            self._pending_events = sorted(self._plan.schedule)

    # -- InMemoryNetwork-parity injection API ------------------------------

    def set_loss(self, probability: float, seed: int | None = None) -> None:
        """Parity with :meth:`InMemoryNetwork.set_loss` (reseeds streams)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        with self._lock:
            self._plan = replace(
                self._plan,
                loss=probability,
                seed=self._plan.seed if seed is None else seed,
            )
            if seed is not None:
                # A fresh seed restarts every stream, as the in-memory
                # network restarts its single PRNG.
                self._link_counts.clear()

    def partition(self, groups: list[list[str]]) -> None:
        """Split hosts into isolated groups; unlisted hosts join group 0."""
        with self._lock:
            self._partition_of = {}
            for index, group in enumerate(groups):
                for host_name in group:
                    self._partition_of[host_name] = index

    def heal(self) -> None:
        with self._lock:
            self._partition_of = {}

    # -- Network interface -------------------------------------------------

    def host(self, name: str) -> Host:
        with self._lock:
            existing = self._hosts.get(name)
            if existing is None:
                existing = _ChaosHost(self, self.inner.host(name))
                self._hosts[name] = existing
            return existing

    def crash(self, host_name: str) -> None:
        self._count("crashes")
        self.inner.crash(host_name)

    def recover(self, host_name: str) -> None:
        self._count("recoveries")
        self.inner.recover(host_name)

    def close(self) -> None:
        with self._lock:
            self._hosts.clear()
        self.inner.close()

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Snapshot of everything the chaos layer injected so far."""
        with self._lock:
            return self._stats.as_dict()

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = ChaosStats()

    # -- internals ---------------------------------------------------------

    def _connection_rng(self, source: str, address: str) -> random.Random:
        """A fresh deterministic stream for one connection on one link."""
        with self._lock:
            key = (source, address)
            index = self._link_counts.get(key, 0)
            self._link_counts[key] = index + 1
            seed = self._plan.seed
        return random.Random(f"{seed}|{source}->{address}|{index}")

    def _is_exempt(self, plan: FaultPlan, source: str, destination: str) -> bool:
        return source in plan.exempt_hosts or destination in plan.exempt_hosts

    def _check_partition(self, source: str, destination: str) -> None:
        with self._lock:
            if not self._partition_of:
                return
            src_group = self._partition_of.get(source, 0)
            dst_group = self._partition_of.get(destination, 0)
            blocked = src_group != dst_group
            if blocked:
                self._stats.partition_blocks += 1
        if blocked:
            raise CommunicationError(
                f"chaos: {source} and {destination} are in different partitions"
            )

    def _apply_due_events(self) -> None:
        due: list[tuple[float, str, str]] = []
        with self._lock:
            if not self._pending_events and not self._plan.schedule:
                return
            if self._started_at is None:
                self._started_at = time.monotonic()
                self._pending_events = sorted(self._plan.schedule)
            elapsed = time.monotonic() - self._started_at
            while self._pending_events and self._pending_events[0][0] <= elapsed:
                due.append(self._pending_events.pop(0))
        for _at, action, host_name in due:
            if action == "crash":
                self.crash(host_name)
            else:
                self.recover(host_name)

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self._stats, name, getattr(self._stats, name) + amount)
