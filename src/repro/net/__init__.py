"""Message transport substrate: the stand-in for the paper's Linux cluster.

The paper evaluated CQoS on a cluster of Pentium III machines on a 1 Gbit
LAN.  Here, "hosts" are logical nodes inside one process and the wire is one
of two interchangeable transports:

- :class:`~repro.net.memory.InMemoryNetwork` — deterministic queues with
  configurable per-message latency/jitter, probabilistic loss, partitions,
  and host crash/recovery injection.  Used by tests (zero latency) and by
  the benchmarks (LAN-like latency) so the paper's message-count-dominated
  cost shape survives.
- :class:`~repro.net.tcp.TcpNetwork` — real TCP sockets on the loopback
  interface with correlation-id-multiplexed frames (many concurrent
  in-flight calls per connection), for integration tests that want an
  actual kernel network path.

:class:`~repro.net.chaos.ChaosNetwork` decorates either transport with a
seedable :class:`~repro.net.chaos.FaultPlan` (loss, latency/jitter,
duplication, reorder, corruption, resets, partitions, scheduled
crash/recover), giving both wires one deterministic fault-injection API.

Both expose the same shape: ``network.host(name)`` returns a
:class:`~repro.net.transport.Host`; hosts ``listen(service, handler)`` and
``connect("host/service")``; connections make blocking ``call(bytes)->bytes``
request/reply exchanges, the only primitive the middleware layers need.
"""

from repro.net.transport import Connection, Host, Listener, Network, blocking_handler
from repro.net.memory import InMemoryNetwork
from repro.net.pool import ConnectionPool
from repro.net.tcp import TcpNetwork
from repro.net.aio import AsyncTcpNetwork
from repro.net.chaos import ChaosNetwork, ChaosStats, FaultPlan

__all__ = [
    "Network",
    "Host",
    "Listener",
    "Connection",
    "ConnectionPool",
    "InMemoryNetwork",
    "TcpNetwork",
    "AsyncTcpNetwork",
    "ChaosNetwork",
    "ChaosStats",
    "FaultPlan",
    "blocking_handler",
]
