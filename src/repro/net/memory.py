"""Deterministic in-memory network with fault and latency injection.

Each ``call`` models a request message and a reply message.  Per-message
latency (plus optional uniform jitter) is charged via the network's clock —
a :class:`~repro.util.clock.RealClock` for benchmarks (real sleeps, so the
paper's message-count-dominated configurations really do cost more) or a
:class:`~repro.util.clock.VirtualClock` for tests that want to control time.

Fault injection:

- ``crash(host)`` / ``recover(host)`` — a crashed host's services raise
  :class:`ServerFailedError` for callers and its outbound calls fail too;
- ``partition(groups)`` / ``heal()`` — hosts in different groups cannot
  exchange messages (:class:`CommunicationError`);
- ``set_loss(probability, seed)`` — each message is independently lost with
  the given probability (seeded PRNG for reproducibility); a lost message
  surfaces as a :class:`CommunicationError`, the behaviour of a connection
  reset, which is what the retransmission micro-protocol reacts to.

Handlers execute on the calling thread after the request latency has been
charged — the thread-per-request server model, matching how both middleware
substrates dispatch.
"""

from __future__ import annotations

import random
import threading

import concurrent.futures

from repro.net.transport import (
    Connection,
    FrameHandler,
    Host,
    Listener,
    Network,
    ReplyFuture,
    split_address,
)
from repro.util.clock import Clock, RealClock
from repro.util.errors import CommunicationError, ServerFailedError


class _MemoryListener(Listener):
    def __init__(self, network: "InMemoryNetwork", address: str):
        self._network = network
        self._address = address
        self._closed = False

    @property
    def address(self) -> str:
        return self._address

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._network._unregister(self._address)


class _MemoryConnection(Connection):
    """Concurrent in-flight calls by default (the multiplexed-TCP parity
    semantics); with ``serialize_connections`` a per-connection lock holds
    for the whole round trip, modelling the pre-multiplexing one-in-flight
    transport for apples-to-apples benchmark baselines."""

    def __init__(self, network: "InMemoryNetwork", source_host: str, address: str):
        self._network = network
        self._source = source_host
        self._address = address
        self._closed = False
        self._serial_lock = (
            threading.Lock() if network.serialize_connections else None
        )

    def call(self, data: bytes, timeout: float | None = None) -> bytes:
        if self._closed:
            raise CommunicationError("connection is closed")
        if self._serial_lock is not None:
            with self._serial_lock:
                return self._network._deliver(self._source, self._address, data)
        return self._network._deliver(self._source, self._address, data)

    def call_async(self, data: bytes, timeout: float | None = None) -> ReplyFuture:
        """Non-blocking submit over the handler-on-caller-thread model.

        The in-memory network executes the server handler synchronously on
        whatever thread delivers the request, so one dispatch thread per
        in-flight call *is* this transport's native concurrency unit (it is
        what the listener side of real TCP does too).  Threads are never
        pooled here: a bounded pool could deadlock when a handler blocks on
        nested async calls (replica forwarding chains), and the unbounded
        case is exactly a thread per call anyway.
        """
        if self._closed:
            return ReplyFuture.failed(CommunicationError("connection is closed"))
        future = concurrent.futures.Future()

        def run() -> None:
            try:
                reply = self.call(data, timeout=timeout)
            except BaseException as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)
            else:
                future.set_result(reply)

        threading.Thread(
            target=run, name=f"mem-async-{self._address}", daemon=True
        ).start()
        return ReplyFuture(future)

    def close(self) -> None:
        self._closed = True


class _MemoryHost(Host):
    def __init__(self, network: "InMemoryNetwork", name: str):
        super().__init__(name)
        self._network = network

    def listen(self, service: str, handler: FrameHandler) -> Listener:
        address = f"{self.name}/{service}"
        self._network._register(address, handler)
        return _MemoryListener(self._network, address)

    def connect(self, address: str) -> Connection:
        split_address(address)  # validate early
        return _MemoryConnection(self._network, self.name, address)


class InMemoryNetwork(Network):
    """See module docstring.

    ``latency`` is the one-way per-message delay in seconds; a ``call``
    charges it twice (request + reply).  ``jitter`` adds a uniform random
    extra delay in ``[0, jitter]`` per message.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        latency: float = 0.0,
        jitter: float = 0.0,
        seed: int = 0,
        spin: bool = False,
        serialize_connections: bool = False,
    ):
        """``spin=True`` charges latency by busy-waiting on the wall clock
        instead of sleeping — microsecond-accurate, which the benchmarks
        need (``time.sleep`` oversleeps by tens of microseconds with high
        variance at LAN-latency scales).  Only meaningful with a real clock.

        ``serialize_connections=True`` restores the pre-multiplexing
        one-in-flight-per-connection semantics (benchmark baseline).
        """
        self.clock = clock or RealClock()
        self.latency = latency
        self.jitter = jitter
        self.spin = spin
        self.serialize_connections = serialize_connections
        self._lock = threading.Lock()
        self._handlers: dict[str, FrameHandler] = {}
        self._hosts: dict[str, _MemoryHost] = {}
        self._crashed: set[str] = set()
        self._partition_of: dict[str, int] = {}
        self._loss_probability = 0.0
        self._rng = random.Random(seed)
        self._message_count = 0

    # -- Host management -------------------------------------------------

    def host(self, name: str) -> Host:
        with self._lock:
            existing = self._hosts.get(name)
            if existing is None:
                existing = _MemoryHost(self, name)
                self._hosts[name] = existing
            return existing

    def _register(self, address: str, handler: FrameHandler) -> None:
        with self._lock:
            if address in self._handlers:
                raise CommunicationError(f"address already in use: {address}")
            self._handlers[address] = handler

    def _unregister(self, address: str) -> None:
        with self._lock:
            self._handlers.pop(address, None)

    # -- Fault injection -------------------------------------------------

    def crash(self, host_name: str) -> None:
        with self._lock:
            self._crashed.add(host_name)

    def recover(self, host_name: str) -> None:
        with self._lock:
            self._crashed.discard(host_name)

    def is_crashed(self, host_name: str) -> bool:
        with self._lock:
            return host_name in self._crashed

    def partition(self, groups: list[list[str]]) -> None:
        """Split hosts into isolated groups; unlisted hosts join group 0."""
        with self._lock:
            self._partition_of = {}
            for index, group in enumerate(groups):
                for host_name in group:
                    self._partition_of[host_name] = index

    def heal(self) -> None:
        with self._lock:
            self._partition_of = {}

    def set_loss(self, probability: float, seed: int | None = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        with self._lock:
            self._loss_probability = probability
            if seed is not None:
                self._rng = random.Random(seed)

    @property
    def message_count(self) -> int:
        """Total messages carried (requests + replies); a cost probe for tests."""
        with self._lock:
            return self._message_count

    def close(self) -> None:
        with self._lock:
            self._handlers.clear()
            self._hosts.clear()

    # -- Delivery --------------------------------------------------------

    def _check_reachable(self, source: str, destination: str) -> None:
        if source in self._crashed:
            raise ServerFailedError(f"source host {source} is crashed")
        if destination in self._crashed:
            raise ServerFailedError(f"host {destination} is crashed")
        if self._partition_of:
            src_group = self._partition_of.get(source, 0)
            dst_group = self._partition_of.get(destination, 0)
            if src_group != dst_group:
                raise CommunicationError(
                    f"{source} and {destination} are in different partitions"
                )

    def _charge_message(self, source: str, destination: str) -> None:
        """Account for one message: reachability, loss, latency."""
        with self._lock:
            self._message_count += 1
            self._check_reachable(source, destination)
            lost = (
                self._loss_probability > 0.0
                and self._rng.random() < self._loss_probability
            )
            delay = self.latency
            if self.jitter > 0.0:
                delay += self._rng.uniform(0.0, self.jitter)
        if delay > 0.0:
            if self.spin:
                import time

                deadline = time.perf_counter() + delay
                while time.perf_counter() < deadline:
                    pass
            else:
                self.clock.sleep(delay)
        if lost:
            raise CommunicationError(f"message {source}->{destination} lost")

    def _deliver(self, source: str, address: str, data: bytes) -> bytes:
        destination, _ = split_address(address)
        self._charge_message(source, destination)
        with self._lock:
            handler = self._handlers.get(address)
            # Re-check after the latency sleep: the host may have crashed
            # while the request was in flight.
            self._check_reachable(source, destination)
        if handler is None:
            raise CommunicationError(f"no listener at {address}")
        reply = handler(data)
        self._charge_message(destination, source)
        return reply
