"""The v2 wire format, engine-neutral: one place that defines the bytes.

Both execution engines — the threaded leader/follower demultiplexer in
:mod:`repro.net.tcp` and the event-loop engine in :mod:`repro.net.aio` —
speak the same correlation-id frame format: a ``>IQ`` header (payload
length, 64-bit request id) followed by the payload.  This module holds the
format itself plus the two pieces both engines and the test suite need:

- :func:`encode_frame` — one frame as bytes (header + payload), exactly the
  byte sequence the threaded :func:`repro.net.tcp.write_frame_mux` puts on
  a socket.  Batching is pure concatenation of such frames, so a batched
  stream is byte-identical to an unbatched one — the invariant the
  differential framing tests pin down.
- :class:`FrameDecoder` — an incremental, chunk-agnostic parser: feed it
  arbitrary byte slices (whatever ``recv``/``data_received`` delivered) and
  it yields complete ``(request_id, payload)`` frames.  Any re-chunking of
  the same byte stream decodes to the same frame sequence, which is what
  makes sender-side coalescing invisible to the receiver.

Keeping this free of sockets and event loops lets property tests exercise
the batching/chunking algebra exhaustively without opening a connection.
"""

from __future__ import annotations

import struct

from repro.util.errors import FrameTooLargeError

#: v1 frame header: payload length only (one in-flight call per connection).
LEN_HEADER = struct.Struct(">I")
#: v2 frame header: payload length + correlation (request) id.
FRAME_HEADER = struct.Struct(">IQ")
#: Refuse frames above this size on both the sending and receiving side.
MAX_FRAME = 64 * 1024 * 1024

_HDR_SIZE = FRAME_HEADER.size


def check_frame_size(size: int) -> None:
    """Raise :class:`FrameTooLargeError` for payloads over :data:`MAX_FRAME`."""
    if size > MAX_FRAME:
        raise FrameTooLargeError(f"frame too large: {size} bytes (max {MAX_FRAME})")


def encode_frame(request_id: int, payload) -> bytes:
    """Encode one v2 frame (``>IQ`` header + payload) as standalone bytes.

    ``payload`` may be any bytes-like object.  The result is bit-identical
    to what the threaded engine's ``write_frame_mux`` sends for the same
    ``(request_id, payload)``.
    """
    size = len(payload)
    check_frame_size(size)
    return FRAME_HEADER.pack(size, request_id) + bytes(payload)


class FrameDecoder:
    """Incremental v2 frame parser, agnostic to chunk boundaries.

    ``feed(data)`` consumes one received chunk and returns the list of
    complete ``(request_id, payload)`` frames it finished; partial frames
    (a header or payload straddling the chunk boundary) are buffered until
    the next feed.  Raises :class:`FrameTooLargeError` as soon as an
    oversized length header is seen — before buffering its payload — so a
    hostile or corrupt stream fails fast.
    """

    __slots__ = ("_buf", "_need", "_request_id")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._need: int | None = None  # payload bytes still expected
        self._request_id = 0

    def feed(self, data) -> list[tuple[int, bytes]]:
        if self._buf:
            self._buf += data
            buf = self._buf
            held = True
        else:
            # Fast path: nothing buffered, parse straight out of the chunk
            # (no copy of the whole payload into the holdover buffer).
            buf = data
            held = False
        frames: list[tuple[int, bytes]] = []
        pos = 0
        size = len(buf)
        while True:
            if self._need is None:
                if size - pos < _HDR_SIZE:
                    break
                length, self._request_id = FRAME_HEADER.unpack_from(buf, pos)
                check_frame_size(length)
                pos += _HDR_SIZE
                self._need = length
            if size - pos < self._need:
                break
            frames.append((self._request_id, bytes(buf[pos : pos + self._need])))
            pos += self._need
            self._need = None
        if held:
            if pos:
                del buf[:pos]
        elif pos < size:
            self._buf += buf[pos:] if pos else buf
        return frames

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buf)
