"""repro — CQoS: Configurable Quality of Service for distributed objects.

A from-scratch Python reproduction of *"Providing QoS Customization in
Distributed Object Systems"* (He, Rajagopalan, Hiltunen, Schlichting —
Middleware 2001): the CQoS architecture, the Cactus micro-protocol
framework it is built on, and the two middleware substrates (a CORBA-like
ORB and a Java-RMI-like platform) it is evaluated against.

Quickstart::

    from repro import CqosDeployment, InMemoryNetwork
    from repro.apps.bank import BankAccount, bank_compiled, bank_interface

    net = InMemoryNetwork()
    dep = CqosDeployment(net, platform="corba", compiled=bank_compiled())
    dep.add_replicas("acct", BankAccount, bank_interface(), replicas=3,
                     server_micro_protocols=["TotalOrder"])
    stub = dep.client_stub("acct", bank_interface(),
                           client_micro_protocols=["ActiveRep", "MajorityVote"])
    stub.set_balance(100.0)
    assert stub.get_balance() == 100.0

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    CactusClient,
    CactusServer,
    CqosDeployment,
    CqosSkeleton,
    CqosStub,
    Reply,
    Request,
    make_cqos_stub_class,
)
from repro.cactus import CompositeProtocol, MicroProtocol
from repro.idl import compile_idl
from repro.net import InMemoryNetwork, TcpNetwork

__version__ = "1.0.0"

__all__ = [
    "CqosDeployment",
    "CqosStub",
    "CqosSkeleton",
    "CactusClient",
    "CactusServer",
    "Request",
    "Reply",
    "make_cqos_stub_class",
    "CompositeProtocol",
    "MicroProtocol",
    "compile_idl",
    "InMemoryNetwork",
    "TcpNetwork",
    "__version__",
]
