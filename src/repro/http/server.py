"""HTTP object server: servants behind paths.

Objects mount at ``/objects/<object-id>``; an operation invocation is
``POST /objects/<object-id>/<operation>`` with a jser-encoded argument list
as the body.  Replies: 200 with a jser body for normal returns, 400-series
with a jser-encoded exception value for application exceptions (so IDL
exceptions round-trip), 500 with a ``{type, message}`` body otherwise.

Two servant flavours mirror the other platforms:

- typed (interface metadata drives dispatch and result checking);
- generic (anything with ``invoke(method, arguments, context)`` — the CQoS
  skeleton path).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.http.message import (
    HttpRequest,
    HttpResponse,
    format_response,
    parse_request,
    piggyback_headers,
)
from repro.idl.compiler import CompiledIdl, IdlRemoteException, InterfaceDef
from repro.net.transport import Network, blocking_handler
from repro.orb.stubs import StaticSkeleton
from repro.serialization.jser import jser_dumps
from repro.util.errors import BindError

SERVICE = "http"


class _Mount:
    def __init__(self, servant, skeleton: StaticSkeleton | None):
        self.servant = servant
        self.skeleton = skeleton  # None => generic servant

    @property
    def is_generic(self) -> bool:
        return self.skeleton is None


class HttpObjectServer:
    """One HTTP endpoint serving many mounted objects."""

    def __init__(self, network: Network, host_name: str, compiled: CompiledIdl):
        self._network = network
        self.host_name = host_name
        self.compiled = compiled
        self._host = network.host(host_name)
        self._listener = None
        self._mounts: dict[str, _Mount] = {}
        self._lock = threading.Lock()

    @property
    def endpoint_address(self) -> str:
        return f"{self.host_name}/{SERVICE}"

    def start(self) -> "HttpObjectServer":
        if self._listener is None:
            self._listener = self._host.listen(SERVICE, self._handle_frame)
        return self

    def shutdown(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        with self._lock:
            self._mounts.clear()

    # -- mounting -----------------------------------------------------------

    def mount(self, object_id: str, servant: Any, interface: InterfaceDef) -> str:
        """Mount a typed servant; returns its URL path."""
        skeleton = StaticSkeleton(servant, interface, self.compiled)
        return self._mount(object_id, _Mount(servant, skeleton))

    def mount_generic(self, object_id: str, servant: Any) -> str:
        """Mount a generic servant (``invoke(method, arguments, context)``)."""
        if not callable(getattr(servant, "invoke", None)):
            raise BindError("generic mounts must provide invoke(method, arguments, context)")
        return self._mount(object_id, _Mount(servant, None))

    def _mount(self, object_id: str, mount: _Mount) -> str:
        with self._lock:
            if object_id in self._mounts:
                raise BindError(f"object id {object_id!r} already mounted")
            self._mounts[object_id] = mount
        return f"/objects/{object_id}"

    def unmount(self, object_id: str) -> None:
        with self._lock:
            self._mounts.pop(object_id, None)

    # -- serving -------------------------------------------------------------

    # Servant dispatch can block (request.wait, replica forwarding): the
    # async engine must keep it off the event loop.
    @blocking_handler
    def _handle_frame(self, frame: bytes) -> bytes:
        try:
            request = parse_request(frame)
            response = self._dispatch(request)
        except IdlRemoteException as exc:
            response = HttpResponse(status=400, body=jser_dumps(exc))
            response.headers["x-cqos-kind"] = "application-exception"
        except BaseException as exc:  # noqa: BLE001 - mapped to 500
            response = HttpResponse(
                status=500,
                body=jser_dumps({"type": type(exc).__name__, "message": str(exc)}),
            )
        return format_response(response)

    def _dispatch(self, request: HttpRequest) -> HttpResponse:
        from repro.serialization.jser import jser_loads

        if request.method != "POST":
            return HttpResponse(status=400, body=jser_dumps({"type": "BadMethod", "message": request.method}))
        parts = request.path.strip("/").split("/")
        if len(parts) != 3 or parts[0] != "objects":
            return HttpResponse(status=404, body=jser_dumps({"type": "NotFound", "message": request.path}))
        _, object_id, operation = parts
        with self._lock:
            mount = self._mounts.get(object_id)
        if mount is None:
            return HttpResponse(status=404, body=jser_dumps({"type": "NotFound", "message": object_id}))
        arguments = list(jser_loads(request.body)) if request.body else []
        context = request.piggyback()
        if mount.is_generic:
            value = mount.servant.invoke(operation, arguments, context)
        else:
            value = mount.skeleton.dispatch(operation, arguments)
        return HttpResponse(status=200, body=jser_dumps(value))
